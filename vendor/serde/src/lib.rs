//! Offline subset of the `serde` API.
//!
//! The build container has no registry access, so this vendored stub
//! replaces serde's serializer/visitor architecture with a simple
//! value-tree model: [`Serialize`] renders a type into a [`Value`] and
//! [`Deserialize`] reconstructs it from one. `serde_json` (also vendored)
//! converts between [`Value`] and JSON text. The `derive` feature
//! re-exports `serde_derive`'s `Serialize`/`Deserialize` macros, which
//! support plain named-field structs — the only shape this workspace
//! derives on.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing data value (the stub's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer (used when a parsed number is negative).
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Ordered key/value map (field order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrow the elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Render `self` as a [`Value`] tree.
pub trait Serialize {
    /// Convert to the serde value model.
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from the serde value model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetch and deserialize a named field from map entries (derive helper).
pub fn field<T: Deserialize>(map: &[(String, Value)], key: &str) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => Err(DeError::custom(format!("missing field `{key}`"))),
    }
}

// ---- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) if *n <= i64::MAX as u64 => *n as i64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(DeError::custom(format!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

// ---- composite impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_seq()
            .ok_or_else(|| DeError::custom("expected sequence for array"))?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_seq()
                    .ok_or_else(|| DeError::custom("expected sequence for tuple"))?;
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {want}, got {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_composites() {
        let v: Vec<(u32, u32)> = vec![(1, 2), (3, 4)];
        let val = v.to_value();
        let back: Vec<(u32, u32)> = Deserialize::from_value(&val).unwrap();
        assert_eq!(v, back);

        let arr = [1.5f64, 2.5, 3.5];
        let back: [f64; 3] = Deserialize::from_value(&arr.to_value()).unwrap();
        assert_eq!(arr, back);

        let opt: Option<u32> = None;
        assert_eq!(opt.to_value(), Value::Null);
        let some: Option<u32> = Deserialize::from_value(&Value::U64(9)).unwrap();
        assert_eq!(some, Some(9));
    }

    #[test]
    fn missing_field_errors() {
        let map = vec![("a".to_string(), Value::U64(1))];
        assert!(field::<u32>(&map, "a").is_ok());
        assert!(field::<u32>(&map, "b").is_err());
    }
}
