//! Offline subset of the `proptest` API.
//!
//! Supports the surface this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` inner attribute, integer/float
//! range strategies, tuples of strategies, `proptest::bool::ANY`, and the
//! `prop_assert*` macros. Inputs are sampled from a ChaCha8 stream seeded
//! by the test name, so runs are deterministic per test. No shrinking: a
//! failing case panics with the sampled values left to the assertion
//! message.

/// Strategy trait and implementations for common input shapes.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};

    /// A source of random test inputs.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.0.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.0.next_u64() & 1 == 1
        }
    }
}

/// Test-runner configuration and RNG.
pub mod test_runner {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of sampled cases per property.
        pub cases: u32,
        /// Accepted for API compatibility; this stub never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_shrink_iters: 1024,
            }
        }
    }

    /// Deterministic RNG handed to strategies (ChaCha8 keyed by test name).
    #[derive(Debug, Clone)]
    pub struct TestRng(pub ChaCha8Rng);

    impl TestRng {
        /// Seed from a test name (FNV-1a hash) so each property gets a
        /// stable but distinct stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(ChaCha8Rng::seed_from_u64(h))
        }
    }
}

/// The usual imports: `proptest!`, strategies, config, assertions.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that samples `cases` inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( config = $config:expr; ) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let ($($pat,)+) = (
                    $($crate::strategy::Strategy::sample(&$strat, &mut __rng),)+
                );
                $body
            }
        }
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
}

/// Assert a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u64)> {
        (1u32..10, 0u64..100)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds((a, b) in pair(), c in 0.5f64..1.5, flag in crate::bool::ANY) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b < 100);
            prop_assert!((0.5..1.5).contains(&c));
            let _: bool = flag;
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..4) {
            prop_assert!(x < 4);
        }
    }
}
