//! Offline ChaCha8-based RNG implementing the vendored `rand` traits.
//!
//! The keystream is a faithful ChaCha permutation with 8 rounds, keyed by
//! SplitMix64 expansion of the 64-bit seed (upstream `rand_chacha` uses a
//! different seed expansion, so streams are deterministic but not
//! bit-compatible with upstream).

use rand::{RngCore, SeedableRng};

/// ChaCha stream cipher with 8 rounds, used as a deterministic RNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter state words (ChaCha layout).
    state: [u32; 16],
    /// Buffered keystream block.
    block: [u32; 16],
    /// Next unread word index in `block` (16 = exhausted).
    cursor: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut w, 0, 4, 8, 12);
            quarter_round(&mut w, 1, 5, 9, 13);
            quarter_round(&mut w, 2, 6, 10, 14);
            quarter_round(&mut w, 3, 7, 11, 15);
            quarter_round(&mut w, 0, 5, 10, 15);
            quarter_round(&mut w, 1, 6, 11, 12);
            quarter_round(&mut w, 2, 7, 8, 13);
            quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (b, (&wi, &si)) in self.block.iter_mut().zip(w.iter().zip(self.state.iter())) {
            *b = wi.wrapping_add(si);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the 256-bit key.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for i in 0..4 {
            let k = next();
            state[4 + 2 * i] = k as u32;
            state[5 + 2 * i] = (k >> 32) as u32;
        }
        // counter = 0 (words 12–13), stream id = 0 (words 14–15).
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(12345);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(12345);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(12346);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn roughly_uniform_small_range() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
