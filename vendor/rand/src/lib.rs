//! Offline drop-in subset of the `rand 0.8` API.
//!
//! The build container has no registry access, so this vendored stub
//! provides exactly the surface the workspace uses: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen_range`, `gen_bool`),
//! and [`seq::SliceRandom`] (`shuffle`, `choose`). Algorithms follow the
//! same general shape as the upstream crate (Lemire-style bounded
//! sampling, Fisher–Yates shuffling) but the output streams are **not**
//! bit-compatible with upstream `rand`; all in-repo pinned values were
//! derived against this implementation.

/// A source of random `u32`/`u64` values.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed (stream-expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Uniform draw in `0..span` via widening-multiply with rejection.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(span as u128);
        let lo = m as u64;
        if lo >= span.wrapping_neg() % span || span.is_power_of_two() {
            return (m >> 64) as u64;
        }
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive integer range).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 random bits → uniform f64 in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Sequence-related random operations (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension trait for slices: shuffling and random choice.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the bounded sampler sees well-mixed bits.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..5);
            assert!(y < 5);
            let z: u32 = rng.gen_range(1..=6);
            assert!((1..=6).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Counter(42);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_from_empty_is_none() {
        let mut rng = Counter(3);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([9u32].choose(&mut rng), Some(&9));
    }
}
