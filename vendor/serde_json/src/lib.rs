//! Offline JSON text layer over the vendored serde stub: emitter
//! (`to_string`, `to_string_pretty`) and recursive-descent parser
//! (`from_str`). Non-finite floats serialize as `null`, matching upstream
//! `serde_json`'s behavior for `f64::NAN`/infinities.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching upstream `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&value).map_err(Error::new)
}

// ---- emitter ---------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{}` on f64 prints the shortest round-trip form but drops
                // the decimal point for integral values; keep it so the
                // token stays a float.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!(
                "invalid keyword at offset {}",
                self.pos
            )))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected , or }} at {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected , or ] at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let v = Value::Map(vec![
            ("name".to_string(), Value::Str("a \"b\"\n".to_string())),
            (
                "xs".to_string(),
                Value::Seq(vec![Value::U64(1), Value::I64(-2), Value::F64(1.5)]),
            ),
            ("flag".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integral_floats_keep_decimal_point() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        let nan = to_string(&f64::NAN).unwrap();
        assert_eq!(nan, "null");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{\"a\":}").is_err());
    }
}
