//! Offline subset of the `criterion` API.
//!
//! Provides the types and macros the workspace's bench targets use
//! (`Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `Bencher`,
//! `criterion_group!`, `criterion_main!`). Measurement is deliberately
//! lightweight: each benchmark body runs a small fixed number of timed
//! iterations and the median is printed, so the binaries are valid under
//! both `cargo bench` and `cargo test` without statistical machinery.

use std::fmt::Display;
use std::time::Instant;

/// Iterations per benchmark (tiny on purpose; see module docs).
const ITERS: u32 = 3;

/// Runs a single benchmark body.
pub struct Bencher {
    elapsed_ns: Vec<u128>,
}

impl Bencher {
    /// Time `f` over a fixed number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..ITERS {
            let t0 = Instant::now();
            let out = f();
            self.elapsed_ns.push(t0.elapsed().as_nanos());
            drop(out);
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a [`BenchmarkId`] (accepts strings and ids).
pub trait IntoBenchmarkId {
    /// Convert to a concrete id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Throughput annotation (recorded but not used in reporting).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_benchmark_id().id, f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        run_one(&format!("{}/{}", self.name, id.id), f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut b = Bencher {
        elapsed_ns: Vec::new(),
    };
    f(&mut b);
    b.elapsed_ns.sort_unstable();
    let median = b
        .elapsed_ns
        .get(b.elapsed_ns.len() / 2)
        .copied()
        .unwrap_or(0);
    println!("bench {label}: median {median} ns/iter ({ITERS} iters)");
}

/// Collect benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs this group's benchmark functions in order.
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.throughput(Throughput::Elements(4));
        g.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| x * x)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
