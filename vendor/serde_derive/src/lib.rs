//! Offline `Serialize`/`Deserialize` derive macros for the vendored serde
//! stub. Hand-rolled token parsing (no `syn`/`quote` available offline);
//! supports exactly the shape this workspace derives on: non-generic
//! structs with named fields. Anything else panics at compile time with a
//! clear message rather than emitting wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_struct(input);
    let entries: String = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})),"))
        .collect();
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 serde::Value::Map(vec![{entries}])\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl failed to parse")
}

/// Derive `serde::Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_struct(input);
    let inits: String = fields
        .iter()
        .map(|f| format!("{f}: serde::field(map, \"{f}\")?,"))
        .collect();
    format!(
        "impl serde::Deserialize for {name} {{\n\
             fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                 let map = v.as_map().ok_or_else(|| \
                     serde::DeError::custom(\"expected map for {name}\"))?;\n\
                 Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl failed to parse")
}

/// Extract (struct name, named field list) from a derive input stream.
fn parse_struct(input: TokenStream) -> (String, Vec<String>) {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        match tt {
            // Skip attributes (`#` followed by a bracket group).
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                let name = match iter.next() {
                    Some(TokenTree::Ident(n)) => n.to_string(),
                    other => panic!("serde_derive: expected struct name, got {other:?}"),
                };
                for tt2 in iter.by_ref() {
                    match tt2 {
                        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                            return (name, parse_fields(g.stream()));
                        }
                        TokenTree::Punct(p) if p.as_char() == '<' => {
                            panic!("serde_derive: generic structs are not supported")
                        }
                        TokenTree::Punct(p) if p.as_char() == ';' => {
                            panic!("serde_derive: tuple/unit structs are not supported")
                        }
                        _ => {}
                    }
                }
                panic!("serde_derive: struct {name} has no brace-delimited fields");
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                panic!("serde_derive: enums are not supported; write a manual impl")
            }
            _ => {}
        }
    }
    panic!("serde_derive: no struct found in derive input");
}

/// Collect field names from the token stream inside a struct's braces.
fn parse_fields(ts: TokenStream) -> Vec<String> {
    let mut out = Vec::new();
    let mut iter = ts.into_iter().peekable();
    loop {
        // Skip field attributes and doc comments.
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        // Skip visibility (`pub`, `pub(crate)`, ...).
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(
                iter.peek(),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
            ) {
                iter.next();
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => out.push(id.to_string()),
            None => break,
            other => panic!("serde_derive: expected field name, got {other:?}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        // Consume the type up to the next top-level comma. Commas nested in
        // parens/brackets live inside Groups; only `<...>` needs depth
        // tracking because angle brackets are bare puncts.
        let mut angle_depth = 0i32;
        loop {
            match iter.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth -= 1;
                    } else if c == ',' && angle_depth == 0 {
                        iter.next();
                        break;
                    }
                    iter.next();
                }
                Some(_) => {
                    iter.next();
                }
            }
        }
    }
    out
}
