#![warn(missing_docs)]
//! # irnet — DOWN/UP routing for irregular wormhole-routed networks
//!
//! A production-quality reproduction of *"An Efficient Deadlock-Free
//! Tree-Based Routing Algorithm for Irregular Wormhole-Routed Networks
//! Based on the Turn Model"* (Sun, Yang, Chung, Huang — ICPP 2004).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`topology`] — irregular networks, coordinated trees, communication
//!   graphs.
//! * [`turns`] — turn tables, channel dependency graphs, deadlock-freedom
//!   verification, turn-constrained shortest-path routing tables.
//! * [`downup`] — the paper's DOWN/UP routing (Phases 1–3).
//! * [`baselines`] — L-turn and up\*/down\* comparators.
//! * [`sim`] — a cycle-accurate wormhole flit simulator.
//! * [`metrics`] — the paper's evaluation metrics and sweep machinery.
//! * [`verify`] — static analysis: machine-checkable deadlock-freedom
//!   certificates and the `IRNET-*` routing lint battery.
//! * [`analyze`] — the static routability analyzer: a feasibility oracle
//!   with constructive witnesses / minimized obstructions, and whole-table
//!   property audits (reachability, stretch, minimality, livelock).
//! * [`flow`] — the flow-level fast path: analytic channel decomposition,
//!   signature clustering, representative neighborhood sims, and
//!   delay-distribution generalization (`irnet sweep --backend flow`).
//! * [`obs`] — observability: flight-recorder event tracing, interval
//!   samplers, and watchdog deadlock forensics.
//! * [`telemetry`] — the unified metrics layer: counters, gauges,
//!   histograms, and a hierarchical span tree behind one lock-light
//!   registry, with JSON snapshots, Prometheus exposition, and a
//!   structured progress/heartbeat emitter (`--telemetry`, `irnet stats`).
//!
//! ## Quickstart
//!
//! ```
//! use irnet::prelude::*;
//!
//! // A random 32-switch, 4-port irregular network.
//! let topo = gen::random_irregular(gen::IrregularParams::paper(32, 4), 1).unwrap();
//!
//! // Construct the DOWN/UP routing (coordinated tree M1, release pass on).
//! let routing = DownUp::new().construct(&topo).unwrap();
//!
//! // It is deadlock-free and fully connected — machine-checked.
//! let report = verify_routing(routing.comm_graph(), routing.turn_table());
//! assert!(report.is_ok());
//!
//! // Simulate uniform traffic at 5% load.
//! let cfg = SimConfig { packet_len: 32, injection_rate: 0.05,
//!                       warmup_cycles: 500, measure_cycles: 2_000,
//!                       ..SimConfig::default() };
//! let stats = Simulator::new(routing.comm_graph(), routing.routing_tables(), cfg, 7).run();
//! assert!(stats.accepted_traffic() > 0.0);
//! ```

pub use irnet_analyze as analyze;
pub use irnet_baselines as baselines;
pub use irnet_core as downup;
pub use irnet_flow as flow;
pub use irnet_metrics as metrics;
pub use irnet_obs as obs;
pub use irnet_sim as sim;
pub use irnet_telemetry as telemetry;
pub use irnet_topology as topology;
pub use irnet_turns as turns;
pub use irnet_verify as verify;

/// The most common imports in one place.
pub mod prelude {
    pub use irnet_analyze::{
        analyze_faulted, analyze_topology, audit, AnalysisReport, AuditReport, Feasibility,
        Obstruction, Witness,
    };
    pub use irnet_baselines::{lturn, updown, BaselineRouting};
    pub use irnet_core::{
        plan_epochs, plan_epochs_timeline, plan_epochs_timeline_with, plan_epochs_with,
        repair_epoch, DownUp, DownUpRouting, EpochRepair, ReconfigEpoch, RepairSpans,
        RepairStrategy,
    };
    pub use irnet_flow::{
        predict, predict_instance, FlowConfig, FlowCurve, FlowPoint, FlowPredictor,
    };
    pub use irnet_metrics::paper::PaperMetrics;
    pub use irnet_metrics::sweep;
    pub use irnet_metrics::{Algo, Instance};
    pub use irnet_obs::{deadlock_incident, FlightRecorder, Incident, IntervalSampler};
    pub use irnet_sim::{
        ArrivalProcess, EngineCore, FaultEpoch, InjectionSampling, Recorder, RouteChoice,
        SimConfig, SimEvent, SimStats, Simulator, TrafficPattern,
    };
    pub use irnet_telemetry::{Progress, ProgressMode, Snapshot, Telemetry};
    pub use irnet_topology::analysis;
    pub use irnet_topology::{
        chaos_plan, chaos_plan_filtered, gen, ChaosParams, CommGraph, CoordinatedTree,
        DampingPolicy, Direction, Element, ElementDamping, FaultEvent, FaultKind, FaultPlan,
        FlapSchedule, PreorderPolicy, RecoveryTimeline, TimelineStep, Topology,
    };
    pub use irnet_turns::{
        adaptivity, verify_routing, AdaptivityStats, ChannelDepGraph, RoutingTables, TurnTable,
        VerifyReport,
    };
    pub use irnet_verify::{
        certify, certify_transition, lint, recheck, Certificate, EpochCertificates, Finding,
        LintCode, LintReport, Severity, Verdict,
    };
}
