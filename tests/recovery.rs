//! Link-recovery integration tests: the shipped 128-switch
//! fault-then-recovery scenario is pinned bit-exactly under both repair
//! strategies, degrade-then-recover-all restores the pristine routing
//! tables bit-identically, flap damping provably collapses raw flap
//! transitions into a bounded number of admitted epochs, and every
//! up-swap conserves flits exactly.

use irnet::prelude::*;
use irnet::sim::SimEvent;
use proptest::prelude::*;

/// The 128-switch, 4-port seed fixture used by the repo's golden tests.
fn paper_topology() -> Topology {
    gen::random_irregular(gen::IrregularParams::paper(128, 4), 1).unwrap()
}

/// The shipped recovery scenario: the link between switches 7 and 80 dies
/// at cycle 3011 (mid-measurement, carrying a worm) and comes back at 4511.
fn recovery_scenario() -> FaultPlan {
    FaultPlan::scripted([FaultEvent::recovering(
        3011,
        FaultKind::Link { a: 7, b: 80 },
        4511,
    )])
}

/// The shipped flap scenario: the same link, but it keeps bouncing — four
/// repeats, 600 cycles apart, after the initial 300-cycle outage.
fn flap_scenario() -> FaultPlan {
    FaultPlan::scripted([
        FaultEvent::recovering(3011, FaultKind::Link { a: 7, b: 80 }, 3311).with_flap(600, 4),
    ])
}

fn faults_cfg() -> SimConfig {
    SimConfig {
        packet_len: 32,
        injection_rate: 0.3,
        warmup_cycles: 1_000,
        measure_cycles: 6_000,
        ..SimConfig::default()
    }
}

/// Plans the damped timeline of `plan`, repairs it epoch by epoch with
/// `strategy`, certifies every transition in both directions, and runs the
/// simulation through all the swaps.
fn run_timeline(
    topo: &Topology,
    plan: &FaultPlan,
    policy: DampingPolicy,
    strategy: RepairStrategy,
    core: EngineCore,
) -> SimStats {
    let builder = DownUp::new().seed(1);
    let routing = builder.construct(topo).unwrap();
    let cg = routing.comm_graph();
    let timeline = RecoveryTimeline::compute(topo, plan, policy).unwrap();
    let epochs = plan_epochs_timeline_with(
        topo,
        cg,
        routing.turn_table(),
        routing.routing_tables(),
        &timeline,
        builder,
        strategy,
    )
    .unwrap();
    for e in &epochs {
        let mut dead = vec![false; cg.num_channels() as usize];
        for &c in &e.epoch.dead_channels {
            dead[c as usize] = true;
        }
        let certs = certify_transition(cg, &e.epoch.old_table, &e.epoch.new_table, &dead);
        assert!(
            certs.is_deadlock_free(),
            "epoch at cycle {} failed certification",
            e.epoch.cycle
        );
    }
    let cfg = SimConfig {
        engine_core: core,
        ..faults_cfg()
    };
    let mut sim = Simulator::new(cg, routing.routing_tables(), cfg, 7);
    for e in &epochs {
        sim.schedule_reconfig(FaultEpoch {
            cycle: e.epoch.cycle,
            dead_channels: e.epoch.dead_channels.clone(),
            dead_nodes: e.epoch.dead_nodes.clone(),
            revived_channels: e.epoch.revived_channels.clone(),
            revived_nodes: e.epoch.revived_nodes.clone(),
            tables: &e.epoch.tables,
        });
    }
    // Damped re-admissions can land past the configured run (the flap
    // scenario's final up-swap does); extend the horizon so every
    // scheduled epoch is applied and its conservation check exercised.
    let last_epoch = epochs.iter().map(|e| e.epoch.cycle).max().unwrap_or(0);
    let horizon = cfg.total_cycles().max(last_epoch.saturating_add(1_000));
    let mut stalled = false;
    while sim.now() < horizon {
        sim.tick();
        if sim.stalled() {
            stalled = true;
            break;
        }
    }
    sim.finish_with(stalled)
}

/// Pinned counters (delivered, dropped flits, dropped packets) for the
/// shipped recovery scenario. Re-pin from the output if an intentional
/// engine change moves them — but both strategies and both cores must
/// always agree, and the run must beat the permanent-fault golden
/// (2_227 delivered over a longer outage window is the `tests/faults.rs`
/// reference without a recovery).
const GOLDEN_RECOVERY: (u64, u64, u64) = (2_155, 10, 1);

#[test]
fn golden_recovery_scenario_is_pinned_under_both_strategies() {
    let topo = paper_topology();
    let plan = recovery_scenario();
    let mut runs = Vec::new();
    for strategy in [RepairStrategy::Full, RepairStrategy::Incremental] {
        let stats = run_timeline(
            &topo,
            &plan,
            DampingPolicy::none(),
            strategy,
            EngineCore::ActiveSet,
        );
        assert!(
            !stats.deadlocked,
            "stalled at cycle {}",
            stats.last_progress
        );
        // One down-swap, one up-swap.
        assert_eq!(stats.reconfig_epochs, 2);
        assert_eq!(
            (
                stats.packets_delivered,
                stats.dropped_flits,
                stats.dropped_packets
            ),
            GOLDEN_RECOVERY,
            "strategy {strategy:?}"
        );
        // Exact conservation across both barriers: revived channels come
        // back empty, so no flit materializes or vanishes at the up-swap.
        assert!(stats.flits_conserved(), "strategy {strategy:?}");
        runs.push(stats);
    }
    assert_eq!(runs[0], runs[1]);
}

#[test]
fn both_cores_agree_on_the_recovery_scenario() {
    let topo = paper_topology();
    let plan = recovery_scenario();
    let active = run_timeline(
        &topo,
        &plan,
        DampingPolicy::none(),
        RepairStrategy::Full,
        EngineCore::ActiveSet,
    );
    let dense = run_timeline(
        &topo,
        &plan,
        DampingPolicy::none(),
        RepairStrategy::Full,
        EngineCore::DenseReference,
    );
    assert_eq!(active, dense);
}

#[test]
fn shipped_recovery_scenario_file_matches_the_golden_plan() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/link_recovery_128.json"
    );
    let raw = std::fs::read_to_string(path).unwrap();
    let plan = FaultPlan::from_json(&raw).unwrap();
    assert_eq!(plan.schema_version(), 2);
    assert!(plan.has_recovery());
    assert_eq!(plan, recovery_scenario());
}

#[test]
fn shipped_flap_scenario_file_matches_the_golden_plan() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/flapping_link_128.json"
    );
    let raw = std::fs::read_to_string(path).unwrap();
    let plan = FaultPlan::from_json(&raw).unwrap();
    assert_eq!(plan.schema_version(), 2);
    assert_eq!(plan, flap_scenario());
}

/// Flap damping on the shipped flap scenario: ten raw transitions (five
/// downs, five ups) collapse to exactly two admitted epochs — the first
/// down and one final, exponentially held-down re-admission — so the
/// network patches its tables twice instead of ten times.
#[test]
fn flap_damping_collapses_the_shipped_flap_scenario() {
    let topo = paper_topology();
    let plan = flap_scenario();
    let timeline = RecoveryTimeline::compute(&topo, &plan, DampingPolicy::hold(500)).unwrap();
    assert_eq!(timeline.raw_transitions, 10);
    assert_eq!(timeline.steps.len(), 2);
    assert_eq!(timeline.suppressed_ups(), 4);
    assert!(timeline.steps.len() < timeline.raw_transitions as usize);
    // The surviving up-step carries the compounded hold-down: the base
    // 500-cycle hold doubled per repeat flap, capped at 8x.
    assert_eq!(timeline.steps[0].cycle, 3_011);
    assert_eq!(timeline.steps[1].cycle, 9_711);
    let d = &timeline.damping[0];
    assert_eq!((d.downs, d.ups), (5, 5));
    assert_eq!((d.admitted_downs, d.admitted_ups), (1, 1));
    assert_eq!(d.max_hold_applied, 4_000);
    // Undamped, every bounce becomes its own epoch pair.
    let raw = RecoveryTimeline::compute(&topo, &plan, DampingPolicy::none()).unwrap();
    assert_eq!(raw.steps.len(), 10);
    assert_eq!(raw.suppressed_ups(), 0);
    // And the damped scenario still simulates clean end to end.
    let stats = run_timeline(
        &topo,
        &plan,
        DampingPolicy::hold(500),
        RepairStrategy::Incremental,
        EngineCore::ActiveSet,
    );
    assert!(!stats.deadlocked);
    assert_eq!(stats.reconfig_epochs, 2);
    assert!(stats.flits_conserved());
}

/// A recorder that tallies epoch swaps and their revived counts — the
/// recovery swap must be visible to observers without perturbing the run.
#[derive(Default)]
struct SwapCounter {
    swaps: u64,
    revived_channels: u64,
}

impl Recorder for SwapCounter {
    fn record(&mut self, event: &SimEvent) {
        if let SimEvent::EpochSwap {
            revived_channels, ..
        } = event
        {
            self.swaps += 1;
            self.revived_channels += u64::from(*revived_channels);
        }
    }
}

/// The recovery scenario with a recorder attached: both the down-swap and
/// the up-swap are recorded (the latter with its revived channels), and
/// the statistics stay bit-identical to the unobserved run.
#[test]
fn recovery_swaps_are_recorded_without_perturbation() {
    let topo = paper_topology();
    let builder = DownUp::new().seed(1);
    let routing = builder.construct(&topo).unwrap();
    let cg = routing.comm_graph();
    let plan = recovery_scenario();
    let timeline = RecoveryTimeline::compute(&topo, &plan, DampingPolicy::none()).unwrap();
    let epochs = plan_epochs_timeline_with(
        &topo,
        cg,
        routing.turn_table(),
        routing.routing_tables(),
        &timeline,
        builder,
        RepairStrategy::Full,
    )
    .unwrap();
    let run = |observe: bool| {
        let mut counter = SwapCounter::default();
        let mut sim = Simulator::new(cg, routing.routing_tables(), faults_cfg(), 7);
        for e in &epochs {
            sim.schedule_reconfig(FaultEpoch {
                cycle: e.epoch.cycle,
                dead_channels: e.epoch.dead_channels.clone(),
                dead_nodes: e.epoch.dead_nodes.clone(),
                revived_channels: e.epoch.revived_channels.clone(),
                revived_nodes: e.epoch.revived_nodes.clone(),
                tables: &e.epoch.tables,
            });
        }
        if observe {
            sim.attach_recorder(&mut counter);
        }
        let stalled = sim.run_in_place();
        (sim.finish_with(stalled), counter)
    };
    let (plain, _) = run(false);
    let (observed, counts) = run(true);
    assert_eq!(plain, observed, "the recorder perturbed the run");
    assert_eq!(counts.swaps, 2);
    // One link revived: both of its directed channels come back.
    assert_eq!(counts.revived_channels, 2);
}

/// Picks a link whose loss keeps `topo` connected, if any.
fn non_bridge_link(topo: &Topology) -> Option<(u32, u32)> {
    (0..topo.num_links()).find_map(|l| {
        let (a, b) = topo.link(l);
        let probe = FaultPlan::scripted([FaultEvent::down(1, FaultKind::Link { a, b })]);
        topo.degrade(&probe).is_ok().then_some((a, b))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Restore round-trip: degrade, then recover everything. The final
    /// epoch has no dead elements, and its turn table and routing tables
    /// are bit-identical to the pristine construction — under either
    /// repair strategy. Recovery is lossless in the routing function.
    #[test]
    fn degrade_then_recover_all_restores_pristine_tables(
        (n, ports, seed) in (12u32..40, 3u32..8, 0u64..10_000),
    ) {
        let topo = gen::random_irregular(gen::IrregularParams::paper(n, ports), seed).unwrap();
        let Some((a, b)) = non_bridge_link(&topo) else {
            // Pure tree: every link is a bridge, nothing can fail and recover.
            return;
        };
        let plan = FaultPlan::scripted([FaultEvent::recovering(
            500,
            FaultKind::Link { a, b },
            1_500,
        )]);
        let builder = DownUp::new().seed(seed);
        let routing = builder.construct(&topo).unwrap();
        let cg = routing.comm_graph();
        let timeline = RecoveryTimeline::compute(&topo, &plan, DampingPolicy::none()).unwrap();
        prop_assert_eq!(timeline.steps.len(), 2);
        for strategy in [RepairStrategy::Full, RepairStrategy::Incremental] {
            let epochs = plan_epochs_timeline_with(
                &topo,
                cg,
                routing.turn_table(),
                routing.routing_tables(),
                &timeline,
                builder,
                strategy,
            ).unwrap();
            prop_assert_eq!(epochs.len(), 2);
            let last = &epochs[1].epoch;
            prop_assert!(last.dead_channels.is_empty());
            prop_assert!(last.dead_nodes.is_empty());
            prop_assert_eq!(last.revived_channels.len(), 2);
            // Bit-identical to the pristine construction: same turn
            // table, same routing tables, hence the same routes.
            prop_assert_eq!(&last.new_table, routing.turn_table());
            prop_assert_eq!(&last.tables, routing.routing_tables());
        }
    }
}
