//! Observability integration tests: attaching a flight recorder and an
//! interval sampler is provably non-perturbing (the run's `SimStats` stay
//! bit-identical, on both scheduling cores, across random topologies), the
//! JSONL export of a tiny deterministic run is pinned byte-exactly, and
//! the shipped link-failure scenario — applied *without* repair — drives
//! the watchdog into a forensic incident with a non-empty waits-for graph.

use irnet::obs::{deadlock_incident, FlightRecorder, IntervalSampler};
use irnet::prelude::*;
use irnet::sim::SimEvent;
use proptest::prelude::*;

/// Runs `cfg` on the DOWN/UP routing of `topo`, optionally with a flight
/// recorder and a 64-cycle interval sampler attached, reproducing the
/// engine's own run loop (step, sample, watchdog check).
fn run_observed(
    routing: &DownUpRouting,
    cfg: SimConfig,
    seed: u64,
    observe: bool,
) -> (SimStats, u64) {
    let mut recorder = FlightRecorder::new(4_096);
    let mut sampler = IntervalSampler::new(64);
    let mut sim = Simulator::new(routing.comm_graph(), routing.routing_tables(), cfg, seed);
    if observe {
        sim.attach_recorder(&mut recorder);
    }
    let total = cfg.total_cycles();
    let mut stalled = false;
    while sim.now() < total {
        sim.tick();
        if observe {
            sampler.maybe_sample(&sim);
        }
        if sim.stalled() {
            stalled = true;
            break;
        }
    }
    let stats = sim.finish_with(stalled);
    (stats, recorder.total_recorded())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Observation must not perturb: with and without recorder + sampler,
    /// the statistics of the same run are bit-identical — on both cores.
    #[test]
    fn observers_leave_stats_bit_identical(
        n in 10u32..28,
        ports in 3u32..6,
        seed in 0u64..500,
        rate_milli in 1u32..80,
    ) {
        let topo = gen::random_irregular(gen::IrregularParams::paper(n, ports), seed).unwrap();
        let routing = DownUp::new().construct(&topo).unwrap();
        for core in [EngineCore::ActiveSet, EngineCore::DenseReference] {
            let cfg = SimConfig {
                packet_len: 8,
                injection_rate: f64::from(rate_milli) / 1_000.0,
                warmup_cycles: 100,
                measure_cycles: 1_200,
                engine_core: core,
                ..SimConfig::default()
            };
            let (plain, zero) = run_observed(&routing, cfg, seed ^ 0x5eed, false);
            let (observed, events) = run_observed(&routing, cfg, seed ^ 0x5eed, true);
            prop_assert_eq!(zero, 0);
            prop_assert_eq!(&plain, &observed, "core {:?} perturbed by observers", core);
            if plain.packets_delivered > 0 {
                prop_assert!(events > 0, "delivered packets but recorded no events");
            }
        }
    }
}

/// A recorder that only tallies event kinds — immune to ring eviction, so
/// it can assert on events from early in a long run.
#[derive(Default)]
struct KindCounter {
    epoch_swaps: u64,
    drops: u64,
    ejects: u64,
}

impl Recorder for KindCounter {
    fn record(&mut self, event: &SimEvent) {
        match event {
            SimEvent::EpochSwap { .. } => self.epoch_swaps += 1,
            SimEvent::Drop { .. } => self.drops += 1,
            SimEvent::Eject { .. } => self.ejects += 1,
            _ => {}
        }
    }
}

/// The fault golden run of `tests/faults.rs`, re-run here with a recorder
/// attached: the recording must capture the epoch swap and the cut worm
/// without moving a single counter on either core.
#[test]
fn recorder_is_non_perturbing_through_the_golden_fault_scenario() {
    let topo = gen::random_irregular(gen::IrregularParams::paper(128, 4), 1).unwrap();
    let builder = DownUp::new().seed(1);
    let routing = builder.construct(&topo).unwrap();
    let plan = FaultPlan::scripted([FaultEvent::down(3011, FaultKind::Link { a: 7, b: 80 })]);
    let cg = routing.comm_graph();
    let epochs = plan_epochs(&topo, cg, routing.turn_table(), &plan, builder).unwrap();
    for core in [EngineCore::ActiveSet, EngineCore::DenseReference] {
        let cfg = SimConfig {
            packet_len: 32,
            injection_rate: 0.3,
            warmup_cycles: 1_000,
            measure_cycles: 6_000,
            engine_core: core,
            ..SimConfig::default()
        };
        let run = |observe: bool| {
            let mut recorder = KindCounter::default();
            let mut sim = Simulator::new(cg, routing.routing_tables(), cfg, 7);
            for e in &epochs {
                sim.schedule_reconfig(FaultEpoch {
                    cycle: e.cycle,
                    dead_channels: e.dead_channels.clone(),
                    dead_nodes: e.dead_nodes.clone(),
                    revived_channels: e.revived_channels.clone(),
                    revived_nodes: e.revived_nodes.clone(),
                    tables: &e.tables,
                });
            }
            if observe {
                sim.attach_recorder(&mut recorder);
            }
            let stalled = sim.run_in_place();
            let stats = sim.finish_with(stalled);
            (stats, recorder)
        };
        let (plain, _) = run(false);
        let (observed, counts) = run(true);
        assert_eq!(plain, observed, "core {core:?} perturbed by the recorder");
        assert_eq!(
            counts.epoch_swaps, 1,
            "the reconfiguration epoch was not recorded"
        );
        // Stats counters cover the measurement window only, while the
        // recorder sees the whole run (warm-up included) — so events
        // bound the counters from above.
        assert!(
            counts.drops >= observed.dropped_packets && observed.dropped_packets > 0,
            "the cut worm must emit a drop event ({} events, {} dropped)",
            counts.drops,
            observed.dropped_packets
        );
        assert!(
            counts.ejects >= observed.packets_delivered,
            "every measured delivery must emit an eject event"
        );
    }
}

/// A tiny fully deterministic run whose JSONL export is pinned
/// byte-exactly. Two packets are enqueued by hand at zero offered load, so
/// every recorded event is forced by the routing alone. Re-derive with
/// `PRINT_OBS_GOLDEN=1 cargo test --test observability golden -- --nocapture`.
#[test]
fn golden_jsonl_export_is_pinned() {
    let topo = gen::random_irregular(gen::IrregularParams::paper(8, 4), 3).unwrap();
    let routing = DownUp::new().construct(&topo).unwrap();
    let cfg = SimConfig {
        packet_len: 3,
        injection_rate: 0.0,
        warmup_cycles: 0,
        measure_cycles: 400,
        ..SimConfig::default()
    };
    let mut recorder = FlightRecorder::new(64);
    let mut sim = Simulator::new(routing.comm_graph(), routing.routing_tables(), cfg, 1);
    sim.attach_recorder(&mut recorder);
    sim.enqueue_packet(0, 5);
    sim.enqueue_packet(3, 1);
    assert!(
        sim.drain(400),
        "two packets must drain on a healthy network"
    );
    drop(sim);
    let jsonl = recorder.export_jsonl();
    if std::env::var("PRINT_OBS_GOLDEN").is_ok() {
        println!("--- golden JSONL ---\n{jsonl}--- end ---");
    }
    let expected = "\
{\"cycle\":0,\"event\":\"inject\",\"pkt\":0,\"src\":0,\"dst\":5,\"len\":3}
{\"cycle\":0,\"event\":\"inject\",\"pkt\":1,\"src\":3,\"dst\":1,\"len\":3}
{\"cycle\":1,\"event\":\"vc_alloc\",\"pkt\":0,\"channel\":4,\"vc\":0}
{\"cycle\":1,\"event\":\"vc_alloc\",\"pkt\":1,\"channel\":8,\"vc\":0}
{\"cycle\":2,\"event\":\"header_advance\",\"pkt\":0,\"channel\":4,\"vc\":0}
{\"cycle\":2,\"event\":\"header_advance\",\"pkt\":1,\"channel\":8,\"vc\":0}
{\"cycle\":3,\"event\":\"vc_alloc\",\"pkt\":1,\"channel\":7,\"vc\":0}
{\"cycle\":4,\"event\":\"header_advance\",\"pkt\":1,\"channel\":7,\"vc\":0}
{\"cycle\":6,\"event\":\"eject\",\"pkt\":0,\"node\":5,\"latency\":6}
{\"cycle\":8,\"event\":\"eject\",\"pkt\":1,\"node\":1,\"latency\":8}
";
    assert_eq!(jsonl, expected);
}

/// The acceptance scenario: the shipped 128-switch link failure applied
/// WITHOUT table repair wedges worms on the dead channels; once drainable
/// traffic leaves, the watchdog fires and the incident report must carry
/// at least one blocked-worm chain (worm → held channels → wanted
/// channels) in its waits-for graph.
#[test]
fn unrepaired_link_failure_produces_a_waits_for_incident() {
    let topo = gen::random_irregular(gen::IrregularParams::paper(128, 4), 1).unwrap();
    let builder = DownUp::new().seed(1);
    let routing = builder.construct(&topo).unwrap();
    let plan = FaultPlan::scripted([FaultEvent::down(3011, FaultKind::Link { a: 7, b: 80 })]);
    let cg = routing.comm_graph();
    let epochs = plan_epochs(&topo, cg, routing.turn_table(), &plan, builder).unwrap();
    let cfg = SimConfig {
        packet_len: 32,
        injection_rate: 0.3,
        warmup_cycles: 1_000,
        measure_cycles: 4_000,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(cg, routing.routing_tables(), cfg, 7);
    for e in &epochs {
        sim.schedule_reconfig(FaultEpoch {
            cycle: e.cycle,
            dead_channels: e.dead_channels.clone(),
            dead_nodes: e.dead_nodes.clone(),
            revived_channels: e.revived_channels.clone(),
            revived_nodes: e.revived_nodes.clone(),
            // The original, unrepaired tables: routes through the dead
            // link stay in force, so the worms on them wedge for good.
            tables: routing.routing_tables(),
        });
    }
    let last_fault = epochs.iter().map(|e| e.cycle).max().unwrap();
    let horizon = cfg.total_cycles().saturating_add(200_000);
    let mut stalled = false;
    let mut injecting = true;
    while sim.now() < horizon {
        sim.tick();
        if injecting && sim.now() > last_fault {
            // Stop offering new traffic: everything that can drain does,
            // leaving only the wedged worms — a deterministic stall.
            sim.set_injection_rate(0.0);
            injecting = false;
        }
        if sim.stalled() {
            stalled = true;
            break;
        }
    }
    assert!(stalled, "the unrepaired fault must trip the watchdog");
    let incident = deadlock_incident(&sim);
    assert!(
        !incident.worms.is_empty(),
        "a fired watchdog with live packets must expose blocked worms"
    );
    assert!(
        incident
            .worms
            .iter()
            .any(|w| !w.holds.is_empty() && !w.wants.is_empty()),
        "at least one worm must form a chain: held channels -> wanted channel"
    );
    assert!(
        !incident.edges.is_empty(),
        "the waits-for graph must contain at least one edge"
    );
    // DOWN/UP's tables are cycle-free even unrepaired: the stall is an
    // acyclic wait on dead resources, and the certifier proves it.
    assert!(!incident.is_circular_wait());
    assert!(incident.witness().is_none());
    // Every wedged worm is waiting on something dead or held, never on the
    // local ejection port — ejection drains unconditionally.
    let json = incident.to_json();
    assert!(json.contains("\"kind\": \"deadlock_incident\""));
    assert!(json.contains("\"blocked_worms\""));
    // (Full JSON-schema validation of the report lives in the irnet-obs
    // unit tests, which re-parse it through the vendored serde stub.)
}
