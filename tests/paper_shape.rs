//! Shape tests against the paper's qualitative claims, at CI scale.
//!
//! We do not (and cannot) match IRFlexSim's absolute numbers; what must
//! reproduce is the *shape* of the evaluation: who wins, on which metrics,
//! and which coordinated-tree policy is best (paper Remarks 1 and 2).
//! These tests run a small but real grid (multiple topologies, sweeps to
//! saturation) and assert the aggregate orderings.

use irnet::prelude::*;

/// Aggregated saturation metrics for one algorithm over a sample batch.
struct Agg {
    node_util: f64,
    traffic_load: f64,
    hot_spot: f64,
    leaf_util: f64,
    throughput: f64,
}

fn measure(algo: Algo, policy: PreorderPolicy, samples: u64, ports: u32) -> Agg {
    let base = SimConfig {
        packet_len: 32,
        warmup_cycles: 600,
        measure_cycles: 3_000,
        ..SimConfig::default()
    };
    let rates = [0.05, 0.12, 0.25, 0.5];
    let mut agg = Agg {
        node_util: 0.0,
        traffic_load: 0.0,
        hot_spot: 0.0,
        leaf_util: 0.0,
        throughput: 0.0,
    };
    for s in 0..samples {
        let topo = gen::random_irregular(gen::IrregularParams::paper(48, ports), 500 + s).unwrap();
        let inst = algo.construct(&topo, policy, s).unwrap();
        let curve = sweep::sweep(&inst, &base, &rates, 77 + s);
        let m = curve.saturation().metrics;
        agg.node_util += m.node_utilization;
        agg.traffic_load += m.traffic_load;
        agg.hot_spot += m.hot_spot_degree;
        agg.leaf_util += m.leaf_utilization;
        agg.throughput += m.accepted_traffic;
    }
    let n = samples as f64;
    agg.node_util /= n;
    agg.traffic_load /= n;
    agg.hot_spot /= n;
    agg.leaf_util /= n;
    agg.throughput /= n;
    agg
}

/// Remark 2 of the paper: under the same coordinated tree and
/// configuration, DOWN/UP outperforms L-turn on node utilization, traffic
/// load, hot spots, leaf utilization and throughput. At CI scale we assert
/// the aggregate on the decisive metrics and allow small-noise slack on the
/// rest.
#[test]
fn downup_outperforms_lturn_at_saturation() {
    let samples = 4;
    let l = measure(
        Algo::LTurn { release: true },
        PreorderPolicy::M1,
        samples,
        4,
    );
    let d = measure(
        Algo::DownUp { release: true },
        PreorderPolicy::M1,
        samples,
        4,
    );

    assert!(
        d.throughput >= l.throughput * 0.97,
        "DOWN/UP throughput {:.4} well below L-turn {:.4}",
        d.throughput,
        l.throughput
    );
    assert!(
        d.leaf_util >= l.leaf_util,
        "DOWN/UP leaf utilization {:.4} below L-turn {:.4}",
        d.leaf_util,
        l.leaf_util
    );
    assert!(
        d.hot_spot <= l.hot_spot * 1.1,
        "DOWN/UP hot spots {:.1}% far above L-turn {:.1}%",
        d.hot_spot,
        l.hot_spot
    );
    // Count overall wins: DOWN/UP must take the majority of the five
    // metric comparisons.
    let wins = (d.node_util >= l.node_util) as u32
        + (d.traffic_load <= l.traffic_load) as u32
        + (d.hot_spot <= l.hot_spot) as u32
        + (d.leaf_util >= l.leaf_util) as u32
        + (d.throughput >= l.throughput) as u32;
    assert!(wins >= 3, "DOWN/UP won only {wins}/5 aggregate metrics");
}

/// Remark 1: the proposed M1 preorder policy is the best of M1/M2/M3 for
/// DOWN/UP. At CI scale, assert M1 is not beaten decisively.
#[test]
fn m1_policy_is_best_or_competitive() {
    let samples = 3;
    let m1 = measure(
        Algo::DownUp { release: true },
        PreorderPolicy::M1,
        samples,
        4,
    );
    let m3 = measure(
        Algo::DownUp { release: true },
        PreorderPolicy::M3,
        samples,
        4,
    );
    assert!(
        m1.throughput >= m3.throughput * 0.95,
        "M1 throughput {:.4} decisively below M3 {:.4}",
        m1.throughput,
        m3.throughput
    );
}

/// The tree-based hot-spot story of the introduction: up*/down* (BFS)
/// concentrates more traffic near the root than DOWN/UP does.
#[test]
fn downup_has_fewer_hot_spots_than_updown_bfs() {
    let samples = 4;
    let u = measure(Algo::UpDownBfs, PreorderPolicy::M1, samples, 4);
    let d = measure(
        Algo::DownUp { release: true },
        PreorderPolicy::M1,
        samples,
        4,
    );
    assert!(
        d.hot_spot < u.hot_spot,
        "DOWN/UP hot spots {:.1}% not below up*/down* {:.1}%",
        d.hot_spot,
        u.hot_spot
    );
}
