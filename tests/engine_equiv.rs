//! Differential tests for the simulator's scheduling cores: the
//! occupancy-driven active-set core (the default) must produce bit-exact
//! `SimStats` against the dense reference scan on arbitrary random
//! topologies, loads, VC counts and arrival samplers — not just the
//! seeds the unit tests pin.

use irnet::prelude::*;
use proptest::prelude::*;

/// Strategy: parameters for a small random connected irregular network.
fn net_params() -> impl Strategy<Value = (u32, u32, u64)> {
    // (switches, ports, seed).
    (6u32..24, 3u32..8, 0u64..10_000)
}

fn build(n: u32, ports: u32, seed: u64) -> Topology {
    gen::random_irregular(gen::IrregularParams::paper(n, ports), seed).unwrap()
}

fn run_core(inst: &Instance, base: SimConfig, core: EngineCore, seed: u64) -> SimStats {
    let cfg = SimConfig {
        engine_core: core,
        ..base
    };
    Simulator::new(&inst.cg, &inst.tables, cfg, seed).run()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random topology, random load, random VC count: both cores agree on
    /// every counter, including the latency histogram.
    #[test]
    fn cores_agree_on_random_networks(
        (n, ports, seed) in net_params(),
        rate in 0.001f64..0.9,
        vcs in 1u32..4,
    ) {
        let topo = build(n, ports, seed);
        let inst = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, seed).unwrap();
        let cfg = SimConfig {
            packet_len: 8,
            injection_rate: rate,
            virtual_channels: vcs,
            warmup_cycles: 200,
            measure_cycles: 1_200,
            deadlock_threshold: 4_000,
            ..SimConfig::default()
        };
        let dense = run_core(&inst, cfg, EngineCore::DenseReference, seed);
        let active = run_core(&inst, cfg, EngineCore::ActiveSet, seed);
        prop_assert_eq!(dense, active, "n={} ports={} rate={}", n, ports, rate);
    }

    /// The geometric arrival sampler is a different RNG stream but must
    /// still be core-independent, and misrouting must not break the
    /// equivalence either.
    #[test]
    fn cores_agree_under_geometric_sampling_and_misrouting(
        (n, ports, seed) in net_params(),
        rate in 0.001f64..0.5,
        patience in 2u32..12,
    ) {
        let topo = build(n, ports, seed);
        let inst = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, seed).unwrap();
        let cfg = SimConfig {
            packet_len: 8,
            injection_rate: rate,
            injection_sampling: InjectionSampling::Geometric,
            misroute_patience: Some(patience),
            warmup_cycles: 100,
            measure_cycles: 1_000,
            deadlock_threshold: 4_000,
            ..SimConfig::default()
        };
        let dense = run_core(&inst, cfg, EngineCore::DenseReference, seed);
        let active = run_core(&inst, cfg, EngineCore::ActiveSet, seed);
        prop_assert_eq!(dense, active, "n={} ports={} rate={}", n, ports, rate);
    }
}

/// Manual trace-style stepping (enqueue + drain) must also be
/// core-independent — it exercises `enqueue_packet`, `set_injection_rate`
/// and the drain loop rather than `run()`.
#[test]
fn cores_agree_on_manual_stepping() {
    let topo = build(14, 4, 77);
    let inst = Algo::DownUp { release: true }
        .construct(&topo, PreorderPolicy::M1, 77)
        .unwrap();
    let drive = |core: EngineCore| {
        let cfg = SimConfig {
            packet_len: 4,
            injection_rate: 0.1,
            warmup_cycles: 0,
            measure_cycles: 4_000,
            engine_core: core,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&inst.cg, &inst.tables, cfg, 5);
        for s in 0..14u32 {
            sim.enqueue_packet(s, (s + 5) % 14);
        }
        for _ in 0..800 {
            sim.tick();
        }
        sim.set_injection_rate(0.0);
        assert!(sim.drain(50_000), "network failed to drain");
        sim.finish()
    };
    let dense = drive(EngineCore::DenseReference);
    let active = drive(EngineCore::ActiveSet);
    assert_eq!(dense, active);
}
