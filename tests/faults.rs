//! Fault-injection integration tests: every connectivity-preserving fault
//! plan must be repairable with a certified deadlock-free routing, and the
//! scripted link-failure scenario shipped in `scenarios/` is pinned
//! bit-exactly on the 128-switch seed fixture for both scheduling cores.

use irnet::prelude::*;
use proptest::prelude::*;

/// The 128-switch, 4-port seed fixture used by the repo's golden tests.
fn paper_topology() -> Topology {
    gen::random_irregular(gen::IrregularParams::paper(128, 4), 1).unwrap()
}

/// The shipped scenario: the link between switches 7 and 80 dies at cycle
/// 3011, mid-measurement, while it is carrying a worm.
fn scripted_scenario() -> FaultPlan {
    FaultPlan::scripted([FaultEvent::down(3011, FaultKind::Link { a: 7, b: 80 })])
}

fn faults_cfg() -> SimConfig {
    SimConfig {
        packet_len: 32,
        injection_rate: 0.3,
        warmup_cycles: 1_000,
        measure_cycles: 6_000,
        ..SimConfig::default()
    }
}

/// Runs the shipped scenario end to end (repair, certify, simulate) on the
/// requested scheduling core and returns the run's statistics.
fn run_scenario(core: EngineCore) -> SimStats {
    let topo = paper_topology();
    let builder = DownUp::new().seed(1);
    let routing = builder.construct(&topo).unwrap();
    let plan = scripted_scenario();
    let cg = routing.comm_graph();
    let epochs = plan_epochs(&topo, cg, routing.turn_table(), &plan, builder).unwrap();
    // Every epoch of the shipped scenario certifies, including the
    // old∪new transition union.
    for e in &epochs {
        let mut dead = vec![false; cg.num_channels() as usize];
        for &c in &e.dead_channels {
            dead[c as usize] = true;
        }
        let certs = certify_transition(cg, &e.old_table, &e.new_table, &dead);
        assert!(certs.is_deadlock_free(), "epoch at cycle {}", e.cycle);
    }
    let cfg = SimConfig {
        engine_core: core,
        ..faults_cfg()
    };
    let mut sim = Simulator::new(cg, routing.routing_tables(), cfg, 7);
    for e in &epochs {
        sim.schedule_reconfig(FaultEpoch {
            cycle: e.cycle,
            dead_channels: e.dead_channels.clone(),
            dead_nodes: e.dead_nodes.clone(),
            revived_channels: e.revived_channels.clone(),
            revived_nodes: e.revived_nodes.clone(),
            tables: &e.tables,
        });
    }
    sim.run()
}

/// Pinned counters for the shipped scenario. If an intentional engine
/// change moves these, re-pin from the new output — but both cores must
/// always agree, the run must survive the fault, and the cut worm must be
/// visibly accounted.
const GOLDEN: (u64, u64, u64) = (2_227, 10, 1);

#[test]
fn golden_scripted_link_failure_on_the_paper_fixture() {
    let active = run_scenario(EngineCore::ActiveSet);
    assert!(
        !active.deadlocked,
        "stalled at cycle {}",
        active.last_progress
    );
    assert_eq!(active.reconfig_epochs, 1);
    assert_eq!(
        (
            active.packets_delivered,
            active.dropped_flits,
            active.dropped_packets
        ),
        GOLDEN
    );
}

#[test]
fn both_cores_agree_on_the_golden_scenario() {
    let active = run_scenario(EngineCore::ActiveSet);
    let dense = run_scenario(EngineCore::DenseReference);
    assert_eq!(active, dense);
}

#[test]
fn delivery_recovers_after_the_epoch_barrier() {
    let topo = paper_topology();
    let routing = DownUp::new().seed(1).construct(&topo).unwrap();
    let baseline = Simulator::new(
        routing.comm_graph(),
        routing.routing_tables(),
        faults_cfg(),
        7,
    )
    .run();
    let faulted = run_scenario(EngineCore::ActiveSet);
    assert!(faulted.dropped_flits > 0, "the fault must cut a live worm");
    // Losing one link costs the cut worm and a brief barrier, not the
    // network: delivery stays within a few percent of the fault-free run.
    assert!(
        faulted.packets_delivered as f64 >= 0.9 * baseline.packets_delivered as f64,
        "delivered {} of baseline {}",
        faulted.packets_delivered,
        baseline.packets_delivered
    );
}

#[test]
fn shipped_scenario_file_matches_the_golden_plan() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/link_failure_128.json"
    );
    let raw = std::fs::read_to_string(path).unwrap();
    assert_eq!(FaultPlan::from_json(&raw).unwrap(), scripted_scenario());
}

/// Strategy: parameters for a small random connected irregular network.
fn net_params() -> impl Strategy<Value = (u32, u32, u64)> {
    // (switches, ports, seed).
    (12u32..40, 3u32..8, 0u64..10_000)
}

/// One raw fault candidate: (selector, activation cycle, switch-vs-link).
fn candidate() -> impl Strategy<Value = (u32, u32, bool)> {
    (0u32..u32::MAX, 1u32..5_000, proptest::bool::ANY)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Greedily keep every candidate fault that leaves the surviving graph
    /// connected; the resulting plan must always repair, and every epoch's
    /// rebuilt routing must certify deadlock-free on the degraded network.
    #[test]
    fn connectivity_preserving_plans_repair_and_certify(
        (n, ports, seed) in net_params(),
        count in 1usize..6,
        cands in (candidate(), candidate(), candidate(), candidate(), candidate()),
    ) {
        let candidates = [cands.0, cands.1, cands.2, cands.3, cands.4];
        let topo = gen::random_irregular(gen::IrregularParams::paper(n, ports), seed).unwrap();
        let mut kept: Vec<FaultEvent> = Vec::new();
        for &(raw, cycle, is_switch) in &candidates[..count] {
            let kind = if is_switch {
                FaultKind::Switch { node: raw % n }
            } else {
                let (a, b) = topo.link(raw % topo.num_links());
                FaultKind::Link { a, b }
            };
            let mut trial = kept.clone();
            trial.push(FaultEvent::down(cycle, kind));
            if topo.degrade(&FaultPlan::scripted(trial.clone())).is_ok() {
                kept = trial;
            }
        }
        if kept.is_empty() {
            // Every candidate alone would partition the graph; no plan to
            // test for this draw.
            continue;
        }
        let plan = FaultPlan::scripted(kept);
        let builder = DownUp::new().seed(seed);
        let routing = builder.construct(&topo).unwrap();
        let cg = routing.comm_graph();
        let epochs = plan_epochs(&topo, cg, routing.turn_table(), &plan, builder)
            .expect("a connectivity-preserving plan must be repairable");
        // Duplicate faults at distinct cycles collapse to no-op timeline
        // steps, so an activation cycle need not produce an epoch — but at
        // least the first fault always does.
        prop_assert!(!epochs.is_empty());
        prop_assert!(epochs.len() <= plan.activation_cycles().len());
        for e in &epochs {
            let mut dead = vec![false; cg.num_channels() as usize];
            for &c in &e.dead_channels {
                dead[c as usize] = true;
            }
            let certs = certify_transition(cg, &e.old_table, &e.new_table, &dead);
            prop_assert!(
                certs.degraded.is_deadlock_free(),
                "repaired epoch at cycle {} is not deadlock-free",
                e.cycle
            );
        }
    }
}
