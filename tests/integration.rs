//! End-to-end integration tests spanning every crate: topology generation →
//! routing construction → verification → simulation → paper metrics.

use irnet::prelude::*;

const ALGOS: [Algo; 6] = [
    Algo::DownUp { release: true },
    Algo::DownUp { release: false },
    Algo::LTurn { release: true },
    Algo::LTurn { release: false },
    Algo::UpDownBfs,
    Algo::UpDownDfs,
];

fn quick_cfg(rate: f64) -> SimConfig {
    SimConfig {
        packet_len: 16,
        injection_rate: rate,
        warmup_cycles: 400,
        measure_cycles: 2_000,
        deadlock_threshold: 5_000,
        ..SimConfig::default()
    }
}

#[test]
fn full_pipeline_for_every_algorithm() {
    let topo = gen::random_irregular(gen::IrregularParams::paper(32, 4), 5).unwrap();
    for algo in ALGOS {
        let inst = algo.construct(&topo, PreorderPolicy::M1, 0).unwrap();
        let report = verify_routing(&inst.cg, &inst.table);
        assert!(
            report.is_ok(),
            "{algo}: {:?} {:?}",
            report.cycle,
            report.disconnected
        );
        let stats = Simulator::new(&inst.cg, &inst.tables, quick_cfg(0.05), 3).run();
        assert!(!stats.deadlocked, "{algo} deadlocked");
        assert!(stats.packets_delivered > 0, "{algo} delivered nothing");
        let m = PaperMetrics::compute(&stats, &inst.cg, &inst.tree);
        assert!(m.accepted_traffic > 0.0);
        assert!(m.avg_latency.is_finite());
        assert!((0.0..=100.0).contains(&m.hot_spot_degree));
    }
}

#[test]
fn downup_beats_updown_on_path_length_or_ties() {
    // The turn model's whole point: fewer prohibitions than naive schemes,
    // so paths should not be longer than up*/down*'s on average.
    let mut downup_sum = 0.0;
    let mut updown_sum = 0.0;
    for seed in 0..5 {
        let topo = gen::random_irregular(gen::IrregularParams::paper(40, 4), seed).unwrap();
        let d = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, 0)
            .unwrap();
        let u = Algo::UpDownBfs
            .construct(&topo, PreorderPolicy::M1, 0)
            .unwrap();
        downup_sum += d.tables.avg_route_len(&d.cg);
        updown_sum += u.tables.avg_route_len(&u.cg);
    }
    assert!(
        downup_sum <= updown_sum * 1.05,
        "DOWN/UP paths ({downup_sum:.2}) much longer than up*/down* ({updown_sum:.2})"
    );
}

#[test]
fn downup_has_fewer_opposite_prohibited_pairs_than_updown() {
    // The paper's §1 motivation: up*/down* leaves prohibited turn pairs
    // with opposite directions on nodes; DOWN/UP's selection removes them.
    let mut updown_total = 0u32;
    let mut downup_total = 0u32;
    for seed in 0..5 {
        let topo = gen::random_irregular(gen::IrregularParams::paper(32, 8), seed).unwrap();
        let u = Algo::UpDownBfs
            .construct(&topo, PreorderPolicy::M1, 0)
            .unwrap();
        let d = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, 0)
            .unwrap();
        updown_total += u.table.nodes_with_opposite_prohibited_pairs(&u.cg);
        downup_total += d.table.nodes_with_opposite_prohibited_pairs(&d.cg);
    }
    assert!(
        updown_total > 0,
        "up*/down* should exhibit opposite prohibited pairs"
    );
    assert!(
        downup_total <= updown_total,
        "DOWN/UP ({downup_total}) should not exceed up*/down* ({updown_total})"
    );
}

#[test]
fn simulation_respects_turn_restrictions() {
    // Indirect but strong: run at saturation on many seeds; the watchdog
    // would fire if the simulator could create a cyclic wait, and the
    // routing-table unit tests already pin candidates to allowed turns.
    for seed in 0..3 {
        let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), seed).unwrap();
        let inst = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, 0)
            .unwrap();
        let stats = Simulator::new(&inst.cg, &inst.tables, quick_cfg(1.0), seed).run();
        assert!(!stats.deadlocked);
    }
}

#[test]
fn sweep_and_saturation_end_to_end() {
    let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), 9).unwrap();
    let inst = Algo::DownUp { release: true }
        .construct(&topo, PreorderPolicy::M1, 0)
        .unwrap();
    let curve = sweep::sweep(&inst, &quick_cfg(0.0), &[0.02, 0.1, 0.5], 4);
    assert_eq!(curve.points.len(), 3);
    let sat = curve.saturation();
    assert!(sat.metrics.accepted_traffic >= curve.points[0].metrics.accepted_traffic);
    // Latency at the lowest load is the smallest.
    assert!(curve.points[0].metrics.avg_latency <= curve.points[2].metrics.avg_latency + 1.0);
}

#[test]
fn topology_json_roundtrip_through_routing() {
    let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), 3).unwrap();
    let json = irnet::topology::topology_to_json(&topo);
    let back = irnet::topology::topology_from_json(&json).unwrap();
    let a = Algo::DownUp { release: true }
        .construct(&topo, PreorderPolicy::M1, 0)
        .unwrap();
    let b = Algo::DownUp { release: true }
        .construct(&back, PreorderPolicy::M1, 0)
        .unwrap();
    assert_eq!(a.table, b.table);
    assert_eq!(a.tables.avg_route_len(&a.cg), b.tables.avg_route_len(&b.cg));
}

#[test]
fn hotspot_traffic_pattern_stresses_one_node() {
    let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), 6).unwrap();
    let inst = Algo::DownUp { release: true }
        .construct(&topo, PreorderPolicy::M1, 0)
        .unwrap();
    let mut cfg = quick_cfg(0.08);
    cfg.traffic = TrafficPattern::Hotspot {
        hot_node: 0,
        hot_fraction: 0.5,
    };
    let stats = Simulator::new(&inst.cg, &inst.tables, cfg, 2).run();
    assert!(!stats.deadlocked);
    // The hot node's input channels should be busier than average.
    let utils = stats.node_utilizations(&inst.cg);
    let hot = utils[0];
    let mean = utils.iter().sum::<f64>() / utils.len() as f64;
    assert!(hot > mean, "hot node {hot} not above mean {mean}");
}

#[test]
fn regular_topologies_run_through_the_whole_stack() {
    for topo in [
        gen::mesh(5, 5).unwrap(),
        gen::torus(4, 4).unwrap(),
        gen::hypercube(4).unwrap(),
        gen::kary_tree(21, 4).unwrap(),
    ] {
        let inst = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, 0)
            .unwrap();
        assert!(verify_routing(&inst.cg, &inst.table).is_ok());
        let stats = Simulator::new(&inst.cg, &inst.tables, quick_cfg(0.05), 1).run();
        assert!(!stats.deadlocked);
        assert!(stats.packets_delivered > 0);
    }
}
