//! The static-analysis certifier, validated from the outside: every
//! certificate it emits is accepted by an *independent* re-checker written
//! here (sharing no code with `irnet-verify`), and the paper's printed §4.3
//! prohibited-turn list is pinned to fail certification with a short,
//! minimized witness on the five-switch counterexample.

use irnet::downup::phase2::PROHIBITED_TURNS_AS_PRINTED;
use irnet::prelude::*;
use proptest::prelude::*;

/// Independent certificate re-checker (deliberately self-contained):
/// a numbering proves deadlock freedom iff it is a permutation of
/// `0..num_channels` and every channel dependency edge strictly increases.
fn independently_valid(numbering: &[u32], dep: &ChannelDepGraph) -> bool {
    let n = dep.num_channels() as usize;
    if numbering.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &r in numbering {
        match seen.get_mut(r as usize) {
            Some(s) if !*s => *s = true,
            _ => return false,
        }
    }
    (0..n as u32).all(|c| {
        dep.successors(c)
            .iter()
            .all(|&d| numbering[c as usize] < numbering[d as usize])
    })
}

/// Independent witness re-checker: a claimed deadlock witness is valid iff
/// it is a nonempty channel sequence whose consecutive pairs (cyclically)
/// are all dependency edges.
fn witness_is_cycle(witness: &[u32], dep: &ChannelDepGraph) -> bool {
    !witness.is_empty()
        && (0..witness.len()).all(|i| {
            let (a, b) = (witness[i], witness[(i + 1) % witness.len()]);
            dep.successors(a).contains(&b)
        })
}

fn build(n: u32, ports: u32, seed: u64) -> Topology {
    gen::random_irregular(gen::IrregularParams::paper(n, ports), seed).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn certificates_pass_the_independent_checker(
        (n, ports, seed) in (8u32..40, 3u32..9, 0u64..10_000)
    ) {
        let topo = build(n, ports, seed);
        let algos = [
            Algo::DownUp { release: true },
            Algo::DownUp { release: false },
            Algo::LTurn { release: true },
            Algo::UpDownBfs,
        ];
        for policy in PreorderPolicy::ALL {
            for algo in algos {
                let inst = algo.construct(&topo, policy, seed).unwrap();
                let dep = ChannelDepGraph::build(&inst.cg, &inst.table);
                let cert = certify(&inst.cg, &inst.table);
                let Verdict::DeadlockFree { numbering } = &cert.verdict else {
                    panic!("{algo} with {policy:?} must certify deadlock-free");
                };
                prop_assert!(
                    independently_valid(numbering, &dep),
                    "numbering rejected by the independent checker ({algo}, {policy:?})"
                );
                // The library's own re-checker must agree.
                prop_assert!(recheck(&cert, &dep).is_ok());
            }
        }
    }

    #[test]
    fn deadlock_witnesses_pass_the_independent_checker(
        (n, ports, seed) in (4u32..24, 3u32..9, 0u64..10_000)
    ) {
        // Unrestricted turns on any topology with a physical cycle deadlock;
        // on cycle-free (tree) samples the certifier must instead produce an
        // independently valid numbering.
        let topo = build(n, ports, seed);
        let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        let cg = CommGraph::build(&topo, &tree);
        let dep = ChannelDepGraph::build(&cg, &TurnTable::all_allowed(&cg));
        let cert = certify(&cg, &TurnTable::all_allowed(&cg));
        match &cert.verdict {
            Verdict::DeadlockFree { numbering } => {
                prop_assert!(independently_valid(numbering, &dep));
            }
            Verdict::Deadlock { witness } => {
                prop_assert!(witness_is_cycle(witness, &dep));
            }
        }
        prop_assert!(recheck(&cert, &dep).is_ok());
    }
}

/// Five-switch counterexample (DESIGN.md): root 0 with children 1, 2, 3;
/// node 4 under 1 with cross links to 2 and 3; 2–3 a same-level cross link.
fn counterexample() -> (CommGraph, TurnTable) {
    let topo = Topology::new(
        5,
        4,
        [(0, 1), (0, 2), (0, 3), (1, 4), (2, 3), (2, 4), (3, 4)],
    )
    .unwrap();
    let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
    let cg = CommGraph::build(&topo, &tree);
    let printed =
        TurnTable::from_direction_rule(&cg, |a, b| !PROHIBITED_TURNS_AS_PRINTED.contains(&(a, b)));
    (cg, printed)
}

/// Regression pin: the paper's printed §4.3 prohibited-turn list must fail
/// certification, and the witness must be minimized (the counterexample's
/// shortest turn cycle has at most 6 channels).
#[test]
fn printed_pt_list_fails_certification_with_minimized_witness() {
    let (cg, printed) = counterexample();
    let cert = certify(&cg, &printed);
    let dep = ChannelDepGraph::build(&cg, &printed);
    let Verdict::Deadlock { witness } = &cert.verdict else {
        panic!("printed PT list must fail certification");
    };
    assert!(
        (2..=6).contains(&witness.len()),
        "witness not minimized: {} channels",
        witness.len()
    );
    assert!(
        witness_is_cycle(witness, &dep),
        "witness is not a dependency cycle"
    );
    recheck(&cert, &dep).expect("the deadlock certificate must recheck");
    // The lint battery surfaces it as exactly one IRNET-E001.
    let report = lint(&cg, &printed);
    assert!(report.has_errors());
    assert_eq!(report.count(LintCode::DeadlockCycle), 1);
}

/// The paper's §4.2 *construction* (reproduced in `irnet_core::phase2`)
/// stays certified deadlock-free on the same counterexample.
#[test]
fn construction_pt_certifies_on_the_counterexample() {
    let (cg, _) = counterexample();
    let table = TurnTable::from_direction_rule(&cg, irnet::downup::phase2::turn_allowed);
    let cert = certify(&cg, &table);
    assert!(cert.is_deadlock_free());
    let dep = ChannelDepGraph::build(&cg, &table);
    recheck(&cert, &dep).expect("construction certificate must recheck");
}
