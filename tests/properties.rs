//! Property-based tests (proptest) over random topologies: the invariants
//! every routing algorithm in the workspace must uphold on *every* input,
//! not just the sampled seeds of the unit tests.

use irnet::prelude::*;
use proptest::prelude::*;

/// Strategy: parameters for a random connected irregular network.
fn net_params() -> impl Strategy<Value = (u32, u32, u64)> {
    // (switches, ports, seed). Ports ≥ 3 keeps the generator comfortably
    // satisfiable at every size here.
    (8u32..48, 3u32..9, 0u64..10_000)
}

fn build(n: u32, ports: u32, seed: u64) -> Topology {
    gen::random_irregular(gen::IrregularParams::paper(n, ports), seed).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn coordinated_tree_invariants((n, ports, seed) in net_params()) {
        let topo = build(n, ports, seed);
        for policy in PreorderPolicy::ALL {
            let tree = CoordinatedTree::build(&topo, policy, seed).unwrap();
            // X is a permutation of 0..n with the root at 0.
            let mut xs: Vec<u32> = (0..n).map(|v| tree.x(v)).collect();
            xs.sort_unstable();
            prop_assert_eq!(xs, (0..n).collect::<Vec<_>>());
            prop_assert_eq!(tree.x(tree.root()), 0);
            prop_assert_eq!(tree.y(tree.root()), 0);
            // Parent precedes child in preorder and sits one level up; BFS
            // guarantees levels differ by at most one across any link.
            for v in 0..n {
                if let Some(p) = tree.parent(v) {
                    prop_assert!(tree.x(p) < tree.x(v));
                    prop_assert_eq!(tree.y(v), tree.y(p) + 1);
                }
            }
            for l in 0..topo.num_links() {
                let (a, b) = topo.link(l);
                let dy = tree.y(a).abs_diff(tree.y(b));
                prop_assert!(dy <= 1, "BFS cross link spans {} levels", dy);
            }
        }
    }

    #[test]
    fn comm_graph_directions_are_coordinate_consistent((n, ports, seed) in net_params()) {
        let topo = build(n, ports, seed);
        let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        let cg = CommGraph::build(&topo, &tree);
        for c in 0..cg.num_channels() {
            let d = cg.direction(c);
            let from = cg.channels().start(c);
            let to = cg.channels().sink(c);
            prop_assert_eq!(d.goes_left(), tree.x(to) < tree.x(from));
            prop_assert_eq!(d.goes_up(), tree.y(to) < tree.y(from));
            prop_assert_eq!(d.goes_down(), tree.y(to) > tree.y(from));
            prop_assert_eq!(d.is_tree(), tree.is_tree_link(cg.channels().link_of(c)));
        }
    }

    #[test]
    fn downup_is_deadlock_free_and_connected((n, ports, seed) in net_params()) {
        let topo = build(n, ports, seed);
        for policy in PreorderPolicy::ALL {
            let inst = Algo::DownUp { release: true }
                .construct(&topo, policy, seed).unwrap();
            let report = verify_routing(&inst.cg, &inst.table);
            prop_assert!(report.is_ok(),
                "policy {policy}: cycle={:?} disc={:?}", report.cycle, report.disconnected);
        }
    }

    #[test]
    fn baselines_are_deadlock_free_and_connected((n, ports, seed) in net_params()) {
        let topo = build(n, ports, seed);
        for algo in [Algo::LTurn { release: true }, Algo::UpDownBfs, Algo::UpDownDfs] {
            let inst = algo.construct(&topo, PreorderPolicy::M1, seed).unwrap();
            let report = verify_routing(&inst.cg, &inst.table);
            prop_assert!(report.is_ok(),
                "{algo}: cycle={:?} disc={:?}", report.cycle, report.disconnected);
        }
    }

    #[test]
    fn release_pass_only_ever_widens_the_turn_set((n, ports, seed) in net_params()) {
        let topo = build(n, ports, seed);
        let with = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, seed).unwrap();
        let without = Algo::DownUp { release: false }
            .construct(&topo, PreorderPolicy::M1, seed).unwrap();
        // Every turn allowed without the release is still allowed with it.
        let ch = with.cg.channels();
        for v in 0..with.cg.num_nodes() {
            for &in_ch in ch.inputs(v) {
                for &out_ch in ch.outputs(v) {
                    if out_ch == ch.reverse(in_ch) { continue; }
                    if without.table.is_allowed(&without.cg, in_ch, out_ch) {
                        prop_assert!(with.table.is_allowed(&with.cg, in_ch, out_ch));
                    }
                }
            }
        }
        // And routes can only get shorter.
        prop_assert!(with.tables.avg_route_len(&with.cg)
            <= without.tables.avg_route_len(&without.cg) + 1e-9);
    }

    #[test]
    fn routes_are_minimal_legal_and_turn_respecting((n, ports, seed) in net_params()) {
        let topo = build(n, ports, seed);
        let inst = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, seed).unwrap();
        let ch = inst.cg.channels();
        for s in 0..n {
            // Sample a handful of destinations per source to keep runtime
            // bounded.
            for t in [(s + 1) % n, (s + n / 2) % n, (s + n - 1) % n] {
                if s == t { continue; }
                let path = inst.tables.route(&inst.cg, s, t);
                prop_assert_eq!(path.len() as u16, inst.tables.route_len(&inst.cg, s, t));
                let mut v = s;
                for (i, &c) in path.iter().enumerate() {
                    prop_assert_eq!(ch.start(c), v);
                    if i > 0 {
                        prop_assert!(inst.table.is_allowed(&inst.cg, path[i - 1], c),
                            "route used a prohibited turn");
                    }
                    v = ch.sink(c);
                }
                prop_assert_eq!(v, t);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Cross-layer soundness: if the direction-level realizability
    /// predicate declares a random turn rule safe (no direction cycle is
    /// realizable), then NO communication graph may contain a channel-level
    /// turn cycle under that rule. This validates `DirGraph::is_safe`
    /// against the ground-truth channel dependency graph.
    #[test]
    fn direction_level_safety_implies_channel_level_safety(
        (n, ports, seed) in net_params(),
        rule_bits in 0u64..(1u64 << 56),
        subset_of_downup in proptest::bool::ANY,
    ) {
        use irnet::downup::phase2::{movements, turn_allowed};
        use irnet::turns::DirGraph;

        // Decode 56 bits into an arbitrary turn rule over the 8 directions
        // (56 ordered pairs with d1 != d2). Fully random rules are almost
        // always unsafe (vacuous for the implication), so half the cases
        // intersect the random rule with the DOWN/UP allowed set — random
        // subsets of a safe set stay safe and exercise the meaty branch.
        let mut pair_index = std::collections::HashMap::new();
        let mut k = 0;
        for a in Direction::ALL {
            for b in Direction::ALL {
                if a != b {
                    pair_index.insert((a, b), k);
                    k += 1;
                }
            }
        }
        let allowed = |a: Direction, b: Direction| {
            a == b
                || ((rule_bits >> pair_index[&(a, b)]) & 1 == 1
                    && (!subset_of_downup || turn_allowed(a, b)))
        };

        // Direction-level analysis.
        let mut g = DirGraph::empty(Direction::COUNT);
        for a in Direction::ALL {
            for b in Direction::ALL {
                if a != b && allowed(a, b) {
                    g.add_edge(a.index(), b.index());
                }
            }
        }
        if g.is_safe(&movements()) {
            // Channel-level ground truth on a concrete random topology.
            let topo = build(n, ports, seed);
            let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, seed).unwrap();
            let cg = CommGraph::build(&topo, &tree);
            let table = TurnTable::from_direction_rule(&cg, allowed);
            let dep = ChannelDepGraph::build(&cg, &table);
            prop_assert!(dep.is_acyclic(),
                "direction-level-safe rule {rule_bits:#x} produced a channel cycle");
        }
    }

    /// Forwarding-table export round-trips bit-exactly for every algorithm.
    #[test]
    fn forwarding_export_roundtrip((n, ports, seed) in net_params()) {
        use irnet::turns::{export_tables, parse_exported};
        let topo = build(n, ports, seed);
        let inst = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, seed).unwrap();
        let text = export_tables(&inst.cg, &inst.tables);
        let parsed = parse_exported(&text).unwrap();
        let ch = inst.cg.channels();
        for t in 0..n {
            for v in 0..n {
                if t == v { continue; }
                for slot in 0..=ch.inputs(v).len() {
                    prop_assert_eq!(parsed.mask(t, v, slot), inst.tables.candidates(t, v, slot));
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The clustered generator upholds the same contract as the random one.
    #[test]
    fn clustered_generator_is_valid(
        clusters in 2u32..6,
        cluster_size in 3u32..10,
        ports in 4u32..9,
        uplinks in 1u32..3,
        seed in 0u64..1000,
    ) {
        let t = gen::clustered(
            gen::ClusteredParams { clusters, cluster_size, ports, uplinks },
            seed,
        ).unwrap();
        prop_assert_eq!(t.num_nodes(), clusters * cluster_size);
        prop_assert_eq!(t.count_reachable(0), t.num_nodes());
        prop_assert!(t.max_degree() <= ports);
        // A coordinated tree and DOWN/UP must build and verify on it.
        let inst = Algo::DownUp { release: true }
            .construct(&t, PreorderPolicy::M1, seed).unwrap();
        prop_assert!(verify_routing(&inst.cg, &inst.table).is_ok());
    }

    /// Trace replay conserves packets and respects causality for arbitrary
    /// traces.
    #[test]
    fn trace_replay_conserves_packets(
        (n, ports, seed) in net_params(),
        packets in 1u32..80,
        span in 1u32..2000,
    ) {
        use irnet::sim::{replay, Trace};
        let topo = build(n, ports, seed);
        let inst = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, seed).unwrap();
        let trace = Trace::synthetic_uniform(n, packets, span, seed);
        let cfg = SimConfig {
            packet_len: 4,
            warmup_cycles: 0,
            measure_cycles: u32::MAX / 2,
            ..SimConfig::default()
        };
        let result = replay(&inst.cg, &inst.tables, cfg, &trace, seed, 1_000_000);
        let makespan = result.makespan.expect("trace must drain");
        prop_assert_eq!(result.stats.packets_delivered as u32, packets);
        prop_assert_eq!(result.stats.flits_delivered as u32, packets * 4);
        // The last flit cannot be delivered before the last injection.
        let last = trace.entries().last().unwrap().time;
        prop_assert!(makespan > last);
    }

    /// Misrouting never breaks deadlock freedom (the escape set stays
    /// inside the verified turn table).
    #[test]
    fn misrouting_is_deadlock_free(
        (n, ports, seed) in net_params(),
        patience in 1u32..16,
        budget in 1u32..8,
    ) {
        let topo = build(n, ports, seed);
        let inst = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, seed).unwrap();
        let cfg = SimConfig {
            packet_len: 8,
            injection_rate: 0.8,
            warmup_cycles: 0,
            measure_cycles: 2_000,
            deadlock_threshold: 4_000,
            misroute_patience: Some(patience),
            max_detours: budget,
            ..SimConfig::default()
        };
        let stats = Simulator::new(&inst.cg, &inst.tables, cfg, seed).run();
        prop_assert!(!stats.deadlocked);
        prop_assert!(stats.packets_delivered > 0);
    }
}

proptest! {
    // Simulation properties are costlier; fewer cases.
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn simulation_conserves_and_never_deadlocks(
        (n, ports, seed) in net_params(),
        rate in 0.01f64..0.6,
    ) {
        let topo = build(n, ports, seed);
        let inst = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, seed).unwrap();
        let cfg = SimConfig {
            packet_len: 8,
            injection_rate: rate,
            warmup_cycles: 200,
            measure_cycles: 1_500,
            deadlock_threshold: 4_000,
            ..SimConfig::default()
        };
        let stats = Simulator::new(&inst.cg, &inst.tables, cfg, seed).run();
        prop_assert!(!stats.deadlocked);
        // Accepted traffic can never exceed offered or the ejection bound.
        prop_assert!(stats.accepted_traffic() <= rate.max(0.0) + 0.05);
        prop_assert!(stats.accepted_traffic() <= 1.0);
        // Latency, when defined, is at least the serialization latency.
        if stats.packets_delivered > 0 {
            prop_assert!(stats.avg_latency() >= cfg.packet_len as f64);
        }
    }
}
