//! Edge-case coverage: the smallest legal networks and boundary
//! configurations, run through the complete stack.

use irnet::prelude::*;

#[test]
fn two_switch_network_end_to_end() {
    let topo = Topology::new(2, 1, [(0, 1)]).unwrap();
    for algo in [
        Algo::DownUp { release: true },
        Algo::LTurn { release: true },
        Algo::UpDownBfs,
    ] {
        let inst = algo.construct(&topo, PreorderPolicy::M1, 0).unwrap();
        assert!(verify_routing(&inst.cg, &inst.table).is_ok(), "{algo}");
        assert_eq!(inst.tables.route_len(&inst.cg, 0, 1), 1);
        let cfg = SimConfig {
            packet_len: 4,
            injection_rate: 0.2,
            warmup_cycles: 100,
            measure_cycles: 500,
            ..SimConfig::default()
        };
        let stats = Simulator::new(&inst.cg, &inst.tables, cfg, 1).run();
        assert!(!stats.deadlocked);
        assert!(
            stats.packets_delivered > 0,
            "{algo} delivered nothing on 2 switches"
        );
    }
}

#[test]
fn single_switch_network_constructs() {
    // One switch, no links: trivially valid; no traffic is possible.
    let topo = Topology::new(1, 4, []).unwrap();
    let inst = Algo::DownUp { release: true }
        .construct(&topo, PreorderPolicy::M1, 0)
        .unwrap();
    assert!(verify_routing(&inst.cg, &inst.table).is_ok());
    assert_eq!(inst.cg.num_channels(), 0);
    let cfg = SimConfig {
        packet_len: 4,
        injection_rate: 0.5,
        warmup_cycles: 10,
        measure_cycles: 100,
        ..SimConfig::default()
    };
    let stats = Simulator::new(&inst.cg, &inst.tables, cfg, 1).run();
    assert_eq!(stats.packets_delivered, 0);
    assert!(!stats.deadlocked);
}

#[test]
fn star_topology_concentrates_everything_on_the_hub() {
    let topo = gen::star(9).unwrap();
    let inst = Algo::DownUp { release: true }
        .construct(&topo, PreorderPolicy::M1, 0)
        .unwrap();
    assert!(verify_routing(&inst.cg, &inst.table).is_ok());
    // Every leaf-to-leaf route is exactly two hops through the hub.
    for s in 1..9u32 {
        for t in 1..9u32 {
            if s != t {
                assert_eq!(inst.tables.route_len(&inst.cg, s, t), 2);
            }
        }
    }
    let cfg = SimConfig {
        packet_len: 8,
        injection_rate: 0.3,
        warmup_cycles: 200,
        measure_cycles: 1_500,
        ..SimConfig::default()
    };
    let stats = Simulator::new(&inst.cg, &inst.tables, cfg, 2).run();
    assert!(!stats.deadlocked);
    let m = PaperMetrics::compute(&stats, &inst.cg, &inst.tree);
    // The hub is levels 0 of the tree; nearly all utilization sits at
    // levels 0-1 by construction.
    assert!(
        m.hot_spot_degree > 50.0,
        "hub share {:.1}%",
        m.hot_spot_degree
    );
}

#[test]
fn minimum_packet_length_of_two_flits() {
    let topo = gen::random_irregular(gen::IrregularParams::paper(12, 4), 2).unwrap();
    let inst = Algo::DownUp { release: true }
        .construct(&topo, PreorderPolicy::M1, 0)
        .unwrap();
    let cfg = SimConfig {
        packet_len: 2,
        injection_rate: 0.2,
        warmup_cycles: 200,
        measure_cycles: 1_000,
        ..SimConfig::default()
    };
    let stats = Simulator::new(&inst.cg, &inst.tables, cfg, 3).run();
    assert!(!stats.deadlocked);
    // Each delivered packet contributes two flits; partially delivered
    // packets at the window edges can add a little more.
    assert!(stats.flits_delivered >= stats.packets_delivered * 2);
    assert!(stats.flits_delivered <= (stats.packets_delivered + stats.num_nodes as u64) * 2);
    assert!(stats.packets_delivered > 0);
}

#[test]
fn deep_path_network_has_long_but_valid_routes() {
    // A 40-switch path: diameter 39, tree is the path itself.
    let links: Vec<(u32, u32)> = (0..39).map(|i| (i, i + 1)).collect();
    let topo = Topology::new(40, 2, links).unwrap();
    let inst = Algo::DownUp { release: true }
        .construct(&topo, PreorderPolicy::M1, 0)
        .unwrap();
    assert!(verify_routing(&inst.cg, &inst.table).is_ok());
    assert_eq!(inst.tables.route_len(&inst.cg, 0, 39), 39);
    assert_eq!(inst.tables.max_route_len(&inst.cg), 39);
    // No cross links on a tree: zero prohibited pairs can matter.
    assert_eq!(inst.tree.max_level(), 39);
}

#[test]
fn max_port_configuration_works() {
    // Dense 8-port fabric at the paper's upper configuration.
    let topo = gen::random_irregular(gen::IrregularParams::paper(16, 8), 4).unwrap();
    assert!(topo.max_degree() <= 8);
    for policy in PreorderPolicy::ALL {
        let inst = Algo::DownUp { release: true }
            .construct(&topo, policy, 7)
            .unwrap();
        assert!(verify_routing(&inst.cg, &inst.table).is_ok());
    }
}
