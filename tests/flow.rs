//! Cross-backend tests for the flow-level fast path: the analytic
//! per-channel offered loads must agree with the exact flit engine about
//! *where* the traffic goes (top-k hot-channel agreement on arbitrary
//! random networks), and the signature partition on the canonical
//! 128-switch fixture is pinned as a golden value so any change to the
//! clustering key shows up in review rather than as silent drift.

use irnet::flow::{cluster_at_rate, Decomposer};
use irnet::prelude::*;
use proptest::prelude::*;

fn build_instance(n: u32, ports: u32, seed: u64) -> (Topology, Instance) {
    let topo = gen::random_irregular(gen::IrregularParams::paper(n, ports), seed).unwrap();
    let inst = Algo::DownUp { release: true }
        .construct(&topo, PreorderPolicy::M1, seed)
        .unwrap();
    (topo, inst)
}

/// Indices of the `k` largest entries of `w` (ties broken by index, so the
/// selection is deterministic).
fn top_k(w: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..w.len()).collect();
    idx.sort_by(|&a, &b| w[b].total_cmp(&w[a]).then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// The decomposition's per-channel offered load must rank channels the
    /// way the exact engine actually loads them: the analytic top-k and
    /// the measured (flit-count) top-k overlap substantially. Exact rank
    /// equality is not expected — the simulator routes adaptively while
    /// the decomposition splits equally — but the hot set is the same.
    #[test]
    fn analytic_loads_rank_hot_channels_like_the_exact_engine(
        n in 14u32..30,
        ports in 4u32..8,
        seed in 0u64..5_000,
        rate in 0.05f64..0.25,
    ) {
        let (_topo, inst) = build_instance(n, ports, seed);
        let dec = Decomposer::new(&inst.cg, &inst.table).decompose(0);
        let cfg = SimConfig {
            packet_len: 8,
            injection_rate: rate,
            warmup_cycles: 500,
            measure_cycles: 6_000,
            ..SimConfig::default()
        };
        let stats = Simulator::new(&inst.cg, &inst.tables, cfg, seed).run();
        // DOWN/UP fabrics are deadlock-free by construction; a hung run
        // would only mean the watchdog misfired, so don't rank its flits.
        prop_assert!(!stats.deadlocked, "DOWN/UP run deadlocked (watchdog misfire?)");
        let measured: Vec<f64> = stats.channel_flits.iter().map(|&f| f as f64).collect();
        prop_assert_eq!(measured.len(), dec.unit_load.len());

        let nch = measured.len();
        let k = (nch / 8).max(4).min(nch);
        let hot_analytic = top_k(&dec.unit_load, k);
        let hot_measured = top_k(&measured, k);
        let overlap = hot_analytic
            .iter()
            .filter(|c| hot_measured.contains(c))
            .count();
        // At least a quarter of the hot set must agree (random k-subsets
        // of hundreds of channels would almost never hit this).
        prop_assert!(
            overlap * 4 >= k,
            "top-{} agreement too weak: {}/{} (n={} ports={} seed={} rate={:.3})",
            k, overlap, k, n, ports, seed, rate
        );

        // And the analytic hot set must carry more measured traffic than
        // an average k-subset: hot-by-prediction is not cold-in-practice.
        let total: f64 = measured.iter().sum();
        let hot_traffic: f64 = hot_analytic.iter().map(|&c| measured[c]).sum();
        prop_assert!(
            hot_traffic >= total * k as f64 / nch as f64,
            "analytic top-{} carries below-average traffic ({:.0} of {:.0})",
            k, hot_traffic, total
        );
    }
}

/// FNV-1a over each cluster's (signature, size, representative) — a
/// stable digest of the whole partition.
fn partition_digest(part: &irnet::flow::Partition) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for cl in &part.clusters {
        mix(u64::from(cl.sig.dir_class));
        mix(u64::from(cl.sig.level));
        mix(u64::from(cl.sig.port_class));
        mix(cl.sig.load_bucket as u64);
        mix(cl.members.len() as u64);
        mix(u64::from(cl.representative));
    }
    h
}

/// Golden pin: the signature partition of the canonical 128-switch/8-port
/// fixture (seed 7, mid load). If clustering semantics change — signature
/// fields, load quantization, representative choice — this fails and the
/// new digest must be pinned deliberately alongside the flow_validate
/// error numbers.
#[test]
fn signature_partition_is_pinned_on_the_128_switch_fixture() {
    let (_topo, inst) = build_instance(128, 8, 7);
    let dec = Decomposer::new(&inst.cg, &inst.table).decompose(0);
    let part = cluster_at_rate(&inst.cg, &inst.tree, &dec, 0.02);

    let members: usize = part.clusters.iter().map(|c| c.members.len()).sum();
    assert_eq!(members, inst.cg.num_channels() as usize);
    for cl in &part.clusters {
        assert!(cl.members.contains(&cl.representative));
    }

    assert_eq!(part.len(), 26);
    assert_eq!(partition_digest(&part), 0x9775_11dc_e14f_122c);
}
