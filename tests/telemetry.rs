//! Telemetry integration tests: attaching the metrics registry and span
//! tree is provably non-perturbing (construction output and `SimStats`
//! stay bit-identical, on both scheduling cores, across random
//! topologies), sweep points reassemble bit-exactly with a registry
//! attached, and one fully synthetic snapshot is pinned byte-for-byte in
//! both its JSON and Prometheus expositions across all six instrumented
//! subsystems.

use irnet::prelude::*;
use irnet::telemetry;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The registry must not perturb: constructing with a live registry
    /// yields bit-identical tables, and running with telemetry yields
    /// bit-identical statistics — on both engine cores.
    #[test]
    fn telemetry_leaves_results_bit_identical(
        n in 10u32..28,
        ports in 3u32..6,
        seed in 0u64..500,
        rate_milli in 1u32..80,
    ) {
        let topo = gen::random_irregular(gen::IrregularParams::paper(n, ports), seed).unwrap();
        let plain = DownUp::new().construct(&topo).unwrap();
        let tel = Telemetry::enabled();
        let observed = DownUp::new().construct_with(&topo, &tel).unwrap();
        prop_assert_eq!(plain.turn_table(), observed.turn_table());
        prop_assert_eq!(plain.routing_tables(), observed.routing_tables());
        let snap = tel.snapshot();
        for span in ["construction", "construction/phase1", "construction/phase2",
                     "construction/phase3", "construction/tables"] {
            prop_assert!(snap.span(span).is_some(), "missing span {}", span);
        }
        for core in [EngineCore::ActiveSet, EngineCore::DenseReference] {
            let cfg = SimConfig {
                packet_len: 8,
                injection_rate: f64::from(rate_milli) / 1_000.0,
                warmup_cycles: 100,
                measure_cycles: 1_200,
                engine_core: core,
                ..SimConfig::default()
            };
            let bare = Simulator::new(
                plain.comm_graph(), plain.routing_tables(), cfg, seed ^ 0x7e1).run();
            let run_tel = Telemetry::enabled();
            let instrumented = Simulator::new(
                observed.comm_graph(), observed.routing_tables(), cfg, seed ^ 0x7e1)
                .run_with_telemetry(&run_tel);
            prop_assert_eq!(&bare, &instrumented, "core {:?} perturbed by telemetry", core);
            let rsnap = run_tel.snapshot();
            prop_assert_eq!(rsnap.counter("sim/runs"), Some(1));
            prop_assert_eq!(rsnap.counter("sim/cycles"), Some(u64::from(bare.cycles)));
            prop_assert_eq!(rsnap.span("sim/run").map(|s| s.count), Some(1));
        }
    }

    /// Sweep points measured with a live registry reassemble the plain
    /// sweep bit-exactly — the contract the sharded grid runner and the
    /// CLI `--telemetry` flag both lean on.
    #[test]
    fn instrumented_sweep_points_match_plain_sweep(
        n in 10u32..24,
        seed in 0u64..200,
    ) {
        let topo = gen::random_irregular(gen::IrregularParams::paper(n, 4), seed).unwrap();
        let inst = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, seed)
            .unwrap();
        let base = SimConfig {
            packet_len: 8,
            warmup_cycles: 100,
            measure_cycles: 800,
            ..SimConfig::default()
        };
        let tel = Telemetry::enabled();
        for (i, rate) in [0.02, 0.15].into_iter().enumerate() {
            let plain = sweep::run_point(&inst, &base, rate, sweep::point_seed(seed, i));
            let with = sweep::run_point_with(&inst, &base, rate, sweep::point_seed(seed, i), &tel);
            prop_assert_eq!(plain.deadlocked, with.deadlocked);
            prop_assert_eq!(plain.stall_cycle, with.stall_cycle);
            prop_assert_eq!(
                plain.metrics.avg_latency.to_bits(),
                with.metrics.avg_latency.to_bits()
            );
            prop_assert_eq!(
                plain.metrics.accepted_traffic.to_bits(),
                with.metrics.accepted_traffic.to_bits()
            );
        }
        prop_assert_eq!(tel.snapshot().counter("sim/runs"), Some(2));
    }
}

/// A synthetic registry covering every instrumented subsystem with
/// deterministic values (exact binary fractions, so float rendering is
/// stable). Construction, repair (incl. fault/recovery epoch counters),
/// grid, flow, and simulation all appear.
fn synthetic_registry() -> Telemetry {
    let tel = Telemetry::enabled();
    // 1. Construction Phases 1–3 + table fill.
    tel.record_span("construction", 0.25);
    tel.record_span("construction/phase1", 0.03125);
    tel.record_span("construction/phase2", 0.0625);
    tel.record_span("construction/phase3", 0.03125);
    tel.record_span("construction/tables", 0.125);
    // 2. Repair stages + fault/recovery epoch bookkeeping.
    tel.record_span("repair", 0.5);
    tel.record_span("repair/classify", 0.125);
    tel.record_span("repair/phases", 0.125);
    tel.record_span("repair/patch", 0.125);
    tel.record_span("repair/recertify", 0.125);
    tel.counter("repair/epochs").add(2);
    tel.counter("repair/epochs_down").add(1);
    tel.counter("repair/epochs_up").add(1);
    tel.counter("repair/tree_link_faults").add(1);
    tel.counter("repair/cross_link_faults").add(1);
    tel.counter("repair/leaf_switch_faults").add(0);
    tel.counter("repair/internal_switch_faults").add(0);
    tel.counter("repair/touched_switches").add(12);
    tel.counter("repair/touched_rows").add(384);
    tel.counter("repair/patched_in_place").add(1);
    tel.counter("repair/full_rebuilds").add(1);
    tel.counter("repair/recertified_ok").add(2);
    // 3. Grid runner.
    tel.record_span("grid/run", 1.5);
    tel.counter("grid/points_run").add(8);
    tel.counter("grid/topologies_built").add(2);
    tel.counter("grid/instances_built").add(4);
    // 4. Flow predictor.
    tel.record_span("flow/decompose", 0.25);
    tel.record_span("flow/rep_sim", 0.75);
    tel.counter("flow/rep_sims").add(6);
    tel.counter("flow/rep_sim_cache_hits").add(10);
    tel.counter("flow/route_cache_hits").add(90);
    tel.counter("flow/route_cache_misses").add(10);
    tel.counter("flow/points").add(16);
    tel.gauge("flow/clusters").set(6.0);
    tel.histogram("flow/clusters_per_point").record(6);
    // 5 & 6. Simulator throughput + reconfiguration epoch swaps.
    tel.record_span("sim/run", 0.5);
    tel.counter("sim/runs").add(1);
    tel.counter("sim/cycles").add(8_000);
    tel.counter("sim/flits_delivered").add(50_000);
    tel.counter("sim/packets_delivered").add(1_500);
    tel.counter("sim/dropped_flits").add(0);
    tel.counter("sim/reconfig_epochs").add(2);
    tel.counter("sim/deadlocks").add(0);
    tel.gauge("sim/cycles_per_sec").set(16_000.0);
    tel.histogram("sim/run_cycles").record(8_000);
    tel
}

/// The synthetic snapshot round-trips through JSON and pins both
/// expositions byte-for-byte. Re-derive with
/// `PRINT_TELEMETRY_GOLDEN=1 cargo test --test telemetry golden -- --nocapture`.
#[test]
fn golden_snapshot_json_and_prometheus_are_pinned() {
    let snap = synthetic_registry().snapshot();
    let json = snap.to_json();
    let prom = snap.to_prometheus();
    if std::env::var("PRINT_TELEMETRY_GOLDEN").is_ok() {
        println!("--- golden JSON ---\n{json}\n--- golden Prometheus ---\n{prom}--- end ---");
    }
    let reparsed = telemetry::Snapshot::from_json(&json).expect("snapshot must round-trip");
    assert_eq!(reparsed.to_json(), json, "JSON round-trip must be stable");
    assert_eq!(json, GOLDEN_JSON);
    assert_eq!(prom, GOLDEN_PROMETHEUS);
}

const GOLDEN_JSON: &str = r#"{
  "schema": "irnet-telemetry-v1",
  "counters": {
    "flow/points": 16,
    "flow/rep_sim_cache_hits": 10,
    "flow/rep_sims": 6,
    "flow/route_cache_hits": 90,
    "flow/route_cache_misses": 10,
    "grid/instances_built": 4,
    "grid/points_run": 8,
    "grid/topologies_built": 2,
    "repair/cross_link_faults": 1,
    "repair/epochs": 2,
    "repair/epochs_down": 1,
    "repair/epochs_up": 1,
    "repair/full_rebuilds": 1,
    "repair/internal_switch_faults": 0,
    "repair/leaf_switch_faults": 0,
    "repair/patched_in_place": 1,
    "repair/recertified_ok": 2,
    "repair/touched_rows": 384,
    "repair/touched_switches": 12,
    "repair/tree_link_faults": 1,
    "sim/cycles": 8000,
    "sim/deadlocks": 0,
    "sim/dropped_flits": 0,
    "sim/flits_delivered": 50000,
    "sim/packets_delivered": 1500,
    "sim/reconfig_epochs": 2,
    "sim/runs": 1
  },
  "gauges": {
    "flow/clusters": 6.0,
    "sim/cycles_per_sec": 16000.0
  },
  "histograms": {
    "flow/clusters_per_point": {
      "count": 1,
      "sum": 6,
      "buckets": [
        [
          7,
          1
        ]
      ]
    },
    "sim/run_cycles": {
      "count": 1,
      "sum": 8000,
      "buckets": [
        [
          8191,
          1
        ]
      ]
    }
  },
  "spans": {
    "construction": {
      "count": 1,
      "seconds": 0.25
    },
    "construction/phase1": {
      "count": 1,
      "seconds": 0.03125
    },
    "construction/phase2": {
      "count": 1,
      "seconds": 0.0625
    },
    "construction/phase3": {
      "count": 1,
      "seconds": 0.03125
    },
    "construction/tables": {
      "count": 1,
      "seconds": 0.125
    },
    "flow/decompose": {
      "count": 1,
      "seconds": 0.25
    },
    "flow/rep_sim": {
      "count": 1,
      "seconds": 0.75
    },
    "grid/run": {
      "count": 1,
      "seconds": 1.5
    },
    "repair": {
      "count": 1,
      "seconds": 0.5
    },
    "repair/classify": {
      "count": 1,
      "seconds": 0.125
    },
    "repair/patch": {
      "count": 1,
      "seconds": 0.125
    },
    "repair/phases": {
      "count": 1,
      "seconds": 0.125
    },
    "repair/recertify": {
      "count": 1,
      "seconds": 0.125
    },
    "sim/run": {
      "count": 1,
      "seconds": 0.5
    }
  }
}
"#;

const GOLDEN_PROMETHEUS: &str = r#"# TYPE irnet_flow_points counter
irnet_flow_points_total 16
# TYPE irnet_flow_rep_sim_cache_hits counter
irnet_flow_rep_sim_cache_hits_total 10
# TYPE irnet_flow_rep_sims counter
irnet_flow_rep_sims_total 6
# TYPE irnet_flow_route_cache_hits counter
irnet_flow_route_cache_hits_total 90
# TYPE irnet_flow_route_cache_misses counter
irnet_flow_route_cache_misses_total 10
# TYPE irnet_grid_instances_built counter
irnet_grid_instances_built_total 4
# TYPE irnet_grid_points_run counter
irnet_grid_points_run_total 8
# TYPE irnet_grid_topologies_built counter
irnet_grid_topologies_built_total 2
# TYPE irnet_repair_cross_link_faults counter
irnet_repair_cross_link_faults_total 1
# TYPE irnet_repair_epochs counter
irnet_repair_epochs_total 2
# TYPE irnet_repair_epochs_down counter
irnet_repair_epochs_down_total 1
# TYPE irnet_repair_epochs_up counter
irnet_repair_epochs_up_total 1
# TYPE irnet_repair_full_rebuilds counter
irnet_repair_full_rebuilds_total 1
# TYPE irnet_repair_internal_switch_faults counter
irnet_repair_internal_switch_faults_total 0
# TYPE irnet_repair_leaf_switch_faults counter
irnet_repair_leaf_switch_faults_total 0
# TYPE irnet_repair_patched_in_place counter
irnet_repair_patched_in_place_total 1
# TYPE irnet_repair_recertified_ok counter
irnet_repair_recertified_ok_total 2
# TYPE irnet_repair_touched_rows counter
irnet_repair_touched_rows_total 384
# TYPE irnet_repair_touched_switches counter
irnet_repair_touched_switches_total 12
# TYPE irnet_repair_tree_link_faults counter
irnet_repair_tree_link_faults_total 1
# TYPE irnet_sim_cycles counter
irnet_sim_cycles_total 8000
# TYPE irnet_sim_deadlocks counter
irnet_sim_deadlocks_total 0
# TYPE irnet_sim_dropped_flits counter
irnet_sim_dropped_flits_total 0
# TYPE irnet_sim_flits_delivered counter
irnet_sim_flits_delivered_total 50000
# TYPE irnet_sim_packets_delivered counter
irnet_sim_packets_delivered_total 1500
# TYPE irnet_sim_reconfig_epochs counter
irnet_sim_reconfig_epochs_total 2
# TYPE irnet_sim_runs counter
irnet_sim_runs_total 1
# TYPE irnet_flow_clusters gauge
irnet_flow_clusters 6.0
# TYPE irnet_sim_cycles_per_sec gauge
irnet_sim_cycles_per_sec 16000.0
# TYPE irnet_flow_clusters_per_point histogram
irnet_flow_clusters_per_point_bucket{le="7"} 1
irnet_flow_clusters_per_point_bucket{le="+Inf"} 1
irnet_flow_clusters_per_point_sum 6
irnet_flow_clusters_per_point_count 1
# TYPE irnet_sim_run_cycles histogram
irnet_sim_run_cycles_bucket{le="8191"} 1
irnet_sim_run_cycles_bucket{le="+Inf"} 1
irnet_sim_run_cycles_sum 8000
irnet_sim_run_cycles_count 1
# TYPE irnet_span_seconds counter
irnet_span_seconds_total{path="construction"} 0.25
irnet_span_seconds_total{path="construction/phase1"} 0.03125
irnet_span_seconds_total{path="construction/phase2"} 0.0625
irnet_span_seconds_total{path="construction/phase3"} 0.03125
irnet_span_seconds_total{path="construction/tables"} 0.125
irnet_span_seconds_total{path="flow/decompose"} 0.25
irnet_span_seconds_total{path="flow/rep_sim"} 0.75
irnet_span_seconds_total{path="grid/run"} 1.5
irnet_span_seconds_total{path="repair"} 0.5
irnet_span_seconds_total{path="repair/classify"} 0.125
irnet_span_seconds_total{path="repair/patch"} 0.125
irnet_span_seconds_total{path="repair/phases"} 0.125
irnet_span_seconds_total{path="repair/recertify"} 0.125
irnet_span_seconds_total{path="sim/run"} 0.5
# TYPE irnet_span_calls counter
irnet_span_calls_total{path="construction"} 1
irnet_span_calls_total{path="construction/phase1"} 1
irnet_span_calls_total{path="construction/phase2"} 1
irnet_span_calls_total{path="construction/phase3"} 1
irnet_span_calls_total{path="construction/tables"} 1
irnet_span_calls_total{path="flow/decompose"} 1
irnet_span_calls_total{path="flow/rep_sim"} 1
irnet_span_calls_total{path="grid/run"} 1
irnet_span_calls_total{path="repair"} 1
irnet_span_calls_total{path="repair/classify"} 1
irnet_span_calls_total{path="repair/patch"} 1
irnet_span_calls_total{path="repair/phases"} 1
irnet_span_calls_total{path="repair/recertify"} 1
irnet_span_calls_total{path="sim/run"} 1
"#;
