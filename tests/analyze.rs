//! The static routability analyzer, cross-checked from the outside: on
//! random irregular topologies a certifier-accepted routing implies the
//! feasibility oracle must answer `Feasible` with an independently
//! checkable witness, and the shipped infeasible scenario fixture is
//! pinned — the full plan is provably unroutable while the same plan
//! without its final event is still feasible.

use irnet::prelude::*;
use proptest::prelude::*;

fn build(n: u32, ports: u32, seed: u64) -> Topology {
    gen::random_irregular(gen::IrregularParams::paper(n, ports), seed).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Certifier-acyclic implies feasible: whenever any constructor yields
    /// a routing the certifier accepts as deadlock-free, the feasibility
    /// oracle must agree the topology is routable — and its constructive
    /// witness must pass its own verifier.
    #[test]
    fn certified_routings_imply_a_feasible_verdict(
        (n, ports, seed) in (8u32..48, 3u32..9, 0u64..10_000)
    ) {
        let topo = build(n, ports, seed);
        let inst = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, seed)
            .unwrap();
        let cert = certify(&inst.cg, &inst.table);
        prop_assert!(cert.is_deadlock_free(), "constructions must certify");

        match analyze_topology(&topo) {
            Feasibility::Feasible(witness) => {
                prop_assert!(
                    witness.check(&topo).is_ok(),
                    "witness rejected by its own verifier"
                );
            }
            Feasibility::Infeasible(o) => {
                prop_assert!(false, "certified topology judged infeasible: {o}");
            }
        }
    }

    /// The oracle agrees with `Topology::degrade` on random fault plans:
    /// degrade succeeds and stays connected iff the oracle says feasible.
    #[test]
    fn oracle_matches_degrade_on_random_plans(
        (n, ports, seed, faults) in (8u32..32, 3u32..7, 0u64..10_000, 1u32..10)
    ) {
        let topo = build(n, ports, seed);
        let links = faults.min(topo.num_links());
        let plan = FaultPlan::random(&topo, links, 0, (100, 500), seed ^ 0xa5a5).unwrap();
        let verdict = analyze_faulted(&topo, &plan).unwrap();
        match topo.degrade(&plan) {
            Ok(degraded) => {
                // `degrade` succeeding means the survivors stay connected,
                // which is exactly the oracle's feasibility condition.
                prop_assert!(
                    verdict.is_feasible(),
                    "degrade succeeded but oracle says {:?}",
                    verdict.obstruction()
                );
                let routed = Algo::DownUp { release: true }
                    .construct(&degraded, PreorderPolicy::M1, seed)
                    .unwrap();
                prop_assert!(certify(&routed.cg, &routed.table).is_deadlock_free());
            }
            Err(_) => {
                prop_assert!(!verdict.is_feasible(), "degrade failed but oracle says feasible");
            }
        }
    }
}

/// The whole-table audits hold on random certified instances: no black
/// holes, no livelock-rank violations, and full all-pairs stretch
/// coverage.
#[test]
fn audits_pass_on_random_certified_instances() {
    for seed in [3u64, 17, 91] {
        let topo = build(28, 5, seed);
        let inst = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M3, seed)
            .unwrap();
        let cert = certify(&inst.cg, &inst.table);
        let report = audit(&inst.cg, &inst.table, &inst.tables, &cert);
        assert!(report.passed(), "audit failed at seed {seed}: {report:?}");
        assert_eq!(report.black_hole_states, 0);
        let n = u64::from(topo.num_nodes());
        assert_eq!(report.stretch.pairs, n * (n - 1));
    }
}

/// Pins the shipped `scenarios/infeasible_128.json` fixture: the full plan
/// is provably unroutable on the 128-switch reference topology, the
/// obstruction is a partition with a concrete witness pair, and dropping
/// only the final event restores feasibility (the scenario is minimal at
/// its tail by construction).
#[test]
fn infeasible_fixture_is_minimal_at_its_tail() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scenarios/infeasible_128.json"
    ))
    .expect("fixture must ship with the repo");
    let plan = FaultPlan::from_json(&text).expect("fixture must parse");
    let topo = build(128, 4, 1);

    let full = analyze_faulted(&topo, &plan).unwrap();
    let Feasibility::Infeasible(obstruction) = &full else {
        panic!("the full fixture plan must be infeasible");
    };
    match obstruction {
        Obstruction::Partitioned {
            witness_pair: (a, b),
            ..
        } => {
            assert_ne!(a, b, "witness pair must name two distinct switches");
        }
        other => panic!("expected a partition obstruction, got {other}"),
    }

    let events = plan.events();
    assert!(!events.is_empty());
    let truncated = FaultPlan::scripted(events[..events.len() - 1].iter().copied());
    let verdict = analyze_faulted(&topo, &truncated).unwrap();
    assert!(
        verdict.is_feasible(),
        "dropping the final event must restore feasibility, got {:?}",
        verdict.obstruction()
    );
}
