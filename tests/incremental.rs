//! Incremental-repair equivalence: under any connectivity-preserving
//! multi-epoch fault plan, [`plan_epochs_with`] must produce the same
//! epochs as the full-rebuild reference — identical lifted turn tables,
//! identical masked routing tables (hence identical routes), and the same
//! per-epoch transition certificates — whichever strategy runs. The
//! scripted golden scenario must deliver bit-identical flit counts when
//! the simulator swaps in incrementally repaired tables.

use irnet::prelude::*;
use irnet_core::{plan_epochs_with, RepairStrategy};
use proptest::prelude::*;

fn link_fault(cycle: u32, a: u32, b: u32) -> FaultEvent {
    FaultEvent::down(cycle, FaultKind::Link { a, b })
}

/// Builds a cumulative, non-partitioning plan from random link/switch
/// candidates: each candidate is kept only if the graph stays routable
/// with every previously kept fault still active.
fn safe_plan(topo: &Topology, candidates: &[(u32, bool)], max_epochs: usize) -> FaultPlan {
    let mut kept: Vec<FaultEvent> = Vec::new();
    for &(pick, switch) in candidates {
        if kept.len() == max_epochs {
            break;
        }
        let cycle = 100 * (kept.len() as u32 + 1);
        let event = if switch {
            FaultEvent::down(
                cycle,
                FaultKind::Switch {
                    node: pick % topo.num_nodes(),
                },
            )
        } else {
            let (a, b) = topo.links()[pick as usize % topo.links().len()];
            link_fault(cycle, a, b)
        };
        let mut trial = kept.clone();
        trial.push(event);
        if topo.degrade(&FaultPlan::scripted(trial.clone())).is_ok() {
            kept = trial;
        }
    }
    FaultPlan::scripted(kept)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn incremental_repair_is_equivalent_to_full_rebuild(
        (seed, switches, cand_seed) in (0u64..40, 16u32..40, 0u64..1_000_000),
    ) {
        let topo = gen::random_irregular(gen::IrregularParams::paper(switches, 4), seed).unwrap();
        // Expand the candidate seed into six pseudo-random fault picks
        // (splitmix64); roughly a quarter are switch faults.
        let mut state = cand_seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let candidates: Vec<(u32, bool)> = (0..6)
            .map(|_| {
                let r = next();
                ((r >> 8) as u32 & 0xfff, r & 3 == 0)
            })
            .collect();
        let plan = safe_plan(&topo, &candidates, 3);
        if plan.activation_cycles().is_empty() {
            // Every candidate partitioned the graph — nothing to repair.
            return;
        }

        let routing = DownUp::new().construct(&topo).unwrap();
        let (_, cg, table, tables) = routing.into_parts();
        let reference = plan_epochs(&topo, &cg, &table, &plan, DownUp::new()).unwrap();

        let mut per_strategy = Vec::new();
        for strategy in [RepairStrategy::Full, RepairStrategy::Incremental] {
            let epochs = plan_epochs_with(
                &topo, &cg, &table, &tables, &plan, DownUp::new(), strategy,
            ).unwrap();
            prop_assert_eq!(epochs.len(), reference.len());
            for (got, want) in epochs.iter().zip(&reference) {
                // Identical lifted turn tables on every pair (dead pairs
                // are prohibited in both), and identical masked tables —
                // which pins every route the simulator can take.
                prop_assert_eq!(&got.epoch.new_table, &want.new_table);
                prop_assert_eq!(&got.epoch.old_table, &want.old_table);
                prop_assert_eq!(&got.epoch.tables, &want.tables);
                prop_assert_eq!(&got.epoch.dead_channels, &want.dead_channels);
                prop_assert_eq!(&got.epoch.flipped_channels, &want.flipped_channels);

                // The transition certificates cannot differ between
                // strategies; the repaired steady state always certifies,
                // and the incremental O(delta) union verdict agrees with
                // the exhaustive certificate.
                let mut dead = vec![false; cg.num_channels() as usize];
                for &c in &got.epoch.dead_channels {
                    dead[c as usize] = true;
                }
                let certs = certify_transition(&cg, &got.epoch.old_table, &got.epoch.new_table, &dead);
                prop_assert!(certs.degraded.is_deadlock_free());
                if let Some(verdict) = got.spans.recertified {
                    prop_assert_eq!(verdict, certs.union.is_deadlock_free());
                }
            }
            per_strategy.push(epochs);
        }

        // Spot-check route equality under the masked tables: the same
        // (source, destination) pairs route identically under either
        // strategy's final epoch.
        let (full, incr) = (&per_strategy[0], &per_strategy[1]);
        let last_full = &full[full.len() - 1];
        let last_incr = &incr[incr.len() - 1];
        let alive = |v: u32| !last_full.epoch.dead_nodes.contains(&v);
        for s in 0..topo.num_nodes() {
            for t in 0..topo.num_nodes() {
                if s != t && alive(s) && alive(t) {
                    prop_assert_eq!(
                        last_full.epoch.tables.route(&cg, s, t),
                        last_incr.epoch.tables.route(&cg, s, t)
                    );
                }
            }
        }
    }
}

/// The shipped 128-switch scripted scenario delivers bit-identical
/// statistics when the simulator swaps in incrementally repaired tables
/// instead of fully rebuilt ones.
#[test]
fn golden_scenario_pins_are_identical_under_incremental_repair() {
    let topo = gen::random_irregular(gen::IrregularParams::paper(128, 4), 1).unwrap();
    let builder = DownUp::new().seed(1);
    let routing = builder.construct(&topo).unwrap();
    let plan = FaultPlan::scripted([FaultEvent::down(3011, FaultKind::Link { a: 7, b: 80 })]);
    let cg = routing.comm_graph();
    let cfg = SimConfig {
        packet_len: 32,
        injection_rate: 0.3,
        warmup_cycles: 1_000,
        measure_cycles: 6_000,
        ..SimConfig::default()
    };
    let mut stats = Vec::new();
    for strategy in [RepairStrategy::Full, RepairStrategy::Incremental] {
        let epochs = plan_epochs_with(
            &topo,
            cg,
            routing.turn_table(),
            routing.routing_tables(),
            &plan,
            builder,
            strategy,
        )
        .unwrap();
        let mut sim = Simulator::new(cg, routing.routing_tables(), cfg, 7);
        for e in &epochs {
            sim.schedule_reconfig(FaultEpoch {
                cycle: e.epoch.cycle,
                dead_channels: e.epoch.dead_channels.clone(),
                dead_nodes: e.epoch.dead_nodes.clone(),
                revived_channels: e.epoch.revived_channels.clone(),
                revived_nodes: e.epoch.revived_nodes.clone(),
                tables: &e.epoch.tables,
            });
        }
        stats.push(sim.run());
    }
    assert_eq!(stats[0], stats[1]);
    // And both match the reference pins of `tests/faults.rs`.
    assert_eq!(
        (
            stats[0].packets_delivered,
            stats[0].dropped_flits,
            stats[0].dropped_packets
        ),
        (2_227, 10, 1)
    );
}
