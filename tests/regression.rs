//! Golden-value regression tests: pin exact deterministic outputs of the
//! pipeline for fixed seeds so unintended behavioural changes are caught
//! immediately. Every value here is a pure function of the seeded ChaCha8
//! RNG and the algorithms — if one of these fails after an intentional
//! change, re-derive the constants and update them alongside the change.

use irnet::prelude::*;

fn reference_topology() -> Topology {
    gen::random_irregular(gen::IrregularParams::paper(32, 4), 12345).unwrap()
}

#[test]
fn topology_generation_is_stable() {
    let t = reference_topology();
    assert_eq!(t.num_nodes(), 32);
    // Pin the link count and a structural fingerprint (sum of a*31+b over
    // links) rather than every link.
    let fingerprint: u64 = t
        .links()
        .iter()
        .map(|&(a, b)| a as u64 * 31 + b as u64)
        .sum();
    assert_eq!(
        (t.num_links(), fingerprint),
        (64, 21724),
        "random_irregular output changed for seed 12345; if intentional, \
         update this golden value"
    );
}

#[test]
fn coordinated_tree_is_stable() {
    let t = reference_topology();
    let tree = CoordinatedTree::build(&t, PreorderPolicy::M1, 0).unwrap();
    let x_fingerprint: u64 = (0..32).map(|v| tree.x(v) as u64 * (v as u64 + 1)).sum();
    let y_fingerprint: u64 = (0..32).map(|v| tree.y(v) as u64 * (v as u64 + 1)).sum();
    assert_eq!(
        (
            tree.max_level(),
            tree.leaves().len(),
            x_fingerprint,
            y_fingerprint
        ),
        golden_tree(),
        "coordinated tree changed for the reference topology"
    );
}

fn golden_tree() -> (u32, usize, u64, u64) {
    // Derived once from the reference topology; see the module docs.
    (GOLDEN.0, GOLDEN.1, GOLDEN.2, GOLDEN.3)
}

#[test]
fn downup_construction_is_stable() {
    let t = reference_topology();
    let routing = DownUp::new().construct(&t).unwrap();
    let prohibited = routing
        .turn_table()
        .num_prohibited_turns(routing.comm_graph());
    let released = routing.released_turns().len();
    let avg_len = routing.routing_tables().avg_route_len(routing.comm_graph());
    assert_eq!((prohibited, released), (GOLDEN.4, GOLDEN.5));
    assert!(
        (avg_len - GOLDEN_AVG_LEN).abs() < 1e-9,
        "avg route len {avg_len}"
    );
}

#[test]
fn simulation_is_stable() {
    let t = reference_topology();
    let routing = DownUp::new().construct(&t).unwrap();
    let cfg = SimConfig {
        packet_len: 16,
        injection_rate: 0.1,
        warmup_cycles: 500,
        measure_cycles: 2_000,
        ..SimConfig::default()
    };
    let stats = Simulator::new(routing.comm_graph(), routing.routing_tables(), cfg, 99).run();
    assert_eq!(
        (
            stats.packets_delivered,
            stats.flits_delivered,
            stats.latency_sum
        ),
        (GOLDEN.6, GOLDEN.7, GOLDEN.8),
        "simulator behaviour changed for the reference scenario"
    );
}

// The golden constants, produced by `cargo test --test regression --
// --nocapture` with `PRINT_GOLDEN=1` (see below) and pasted here.
const GOLDEN: (u32, usize, u64, u64, usize, usize, u64, u64, u64) = (
    4,     // tree max level
    16,    // leaves
    9168,  // X fingerprint
    1501,  // Y fingerprint
    98,    // prohibited channel pairs
    8,     // released turns
    397,   // packets delivered
    6363,  // flits delivered
    10569, // latency sum
);
const GOLDEN_AVG_LEN: f64 = 2.8901209677419355;

/// Helper: run with `PRINT_GOLDEN=1 cargo test --test regression -- print_golden --nocapture`
/// to regenerate the constants after an intentional change.
#[test]
fn print_golden() {
    if std::env::var("PRINT_GOLDEN").is_err() {
        return;
    }
    let t = reference_topology();
    let fingerprint: u64 = t
        .links()
        .iter()
        .map(|&(a, b)| a as u64 * 31 + b as u64)
        .sum();
    let tree = CoordinatedTree::build(&t, PreorderPolicy::M1, 0).unwrap();
    let xf: u64 = (0..32).map(|v| tree.x(v) as u64 * (v as u64 + 1)).sum();
    let yf: u64 = (0..32).map(|v| tree.y(v) as u64 * (v as u64 + 1)).sum();
    let routing = DownUp::new().construct(&t).unwrap();
    let cfg = SimConfig {
        packet_len: 16,
        injection_rate: 0.1,
        warmup_cycles: 500,
        measure_cycles: 2_000,
        ..SimConfig::default()
    };
    let stats = Simulator::new(routing.comm_graph(), routing.routing_tables(), cfg, 99).run();
    println!("links={} fp={fingerprint}", t.num_links());
    println!(
        "tree=({}, {}, {xf}, {yf})",
        tree.max_level(),
        tree.leaves().len()
    );
    println!(
        "construct=({}, {}) avg_len={:?}",
        routing
            .turn_table()
            .num_prohibited_turns(routing.comm_graph()),
        routing.released_turns().len(),
        routing.routing_tables().avg_route_len(routing.comm_graph())
    );
    println!(
        "sim=({}, {}, {})",
        stats.packets_delivered, stats.flits_delivered, stats.latency_sum
    );
}
