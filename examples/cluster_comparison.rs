//! Scenario: choosing a routing algorithm for an irregular switch-based
//! cluster interconnect (the NOW/SAN setting that motivates the paper's
//! introduction).
//!
//! Compares up*/down* (BFS and DFS), L-turn, and DOWN/UP on the same
//! 64-switch 8-port network: path quality, prohibited turns, and simulated
//! latency/throughput at a fixed operating point.
//!
//! Run with: `cargo run --release --example cluster_comparison`

use irnet::metrics::report::TextTable;
use irnet::prelude::*;

fn main() {
    let topo = gen::random_irregular(gen::IrregularParams::paper(64, 8), 99).unwrap();
    println!(
        "cluster fabric: {} switches, {} links, diameter {}\n",
        topo.num_nodes(),
        topo.num_links(),
        topo.diameter()
    );

    let algos = [
        Algo::UpDownBfs,
        Algo::UpDownDfs,
        Algo::LTurn { release: true },
        Algo::DownUp { release: true },
    ];
    let cfg = SimConfig {
        packet_len: 64,
        injection_rate: 0.12,
        warmup_cycles: 1_500,
        measure_cycles: 6_000,
        ..SimConfig::default()
    };

    let mut table = TextTable::new(&[
        "algorithm",
        "prohibited",
        "avg hops",
        "max hops",
        "latency",
        "accepted",
        "hot spot %",
    ]);
    for algo in algos {
        let inst = algo.construct(&topo, PreorderPolicy::M1, 0).unwrap();
        let report = verify_routing(&inst.cg, &inst.table);
        assert!(report.is_ok(), "{algo} failed verification");
        let stats = Simulator::new(&inst.cg, &inst.tables, cfg, 5).run();
        let m = PaperMetrics::compute(&stats, &inst.cg, &inst.tree);
        table.row(vec![
            algo.to_string(),
            report.prohibited_pairs.to_string(),
            format!("{:.2}", report.avg_route_len.unwrap()),
            report.max_route_len.unwrap().to_string(),
            format!("{:.0}", m.avg_latency),
            format!("{:.4}", m.accepted_traffic),
            format!("{:.1}", m.hot_spot_degree),
        ]);
    }
    println!("offered load 0.12 flits/clock/node, 64-flit packets:\n");
    println!("{}", table.render());
    println!("(all four algorithms machine-verified deadlock-free and connected)");
}
