//! Scenario: comparing routings on *identical* workloads via trace replay.
//!
//! Synthetic-rate experiments give each algorithm a different random packet
//! sequence; trace replay removes that variable entirely — every algorithm
//! sees exactly the same (time, src, dst) injections. This example replays
//! a uniform trace and an all-to-one incast burst against all four
//! algorithms and compares makespan and latency.
//!
//! Run with: `cargo run --release --example trace_replay`

use irnet::metrics::report::TextTable;
use irnet::prelude::*;
use irnet::sim::{replay, Trace};

fn main() {
    let topo = gen::random_irregular(gen::IrregularParams::paper(48, 4), 33).unwrap();
    let cfg = SimConfig {
        packet_len: 32,
        warmup_cycles: 0,
        measure_cycles: u32::MAX / 2,
        ..SimConfig::default()
    };
    let uniform = Trace::synthetic_uniform(48, 600, 4_000, 5);
    let incast = Trace::incast(48, 0);
    let algos = [
        Algo::UpDownBfs,
        Algo::UpDownDfs,
        Algo::LTurn { release: true },
        Algo::DownUp { release: true },
    ];

    for (name, trace) in [
        ("uniform (600 packets over 4000 clocks)", &uniform),
        ("incast (47 -> node 0 at t=0)", &incast),
    ] {
        let mut table = TextTable::new(&["algorithm", "makespan", "avg latency", "p99 latency"]);
        for algo in algos {
            let inst = algo.construct(&topo, PreorderPolicy::M1, 0).unwrap();
            let result = replay(&inst.cg, &inst.tables, cfg, trace, 7, 2_000_000);
            let makespan = result.makespan.expect("trace must drain");
            assert_eq!(result.stats.packets_delivered as usize, trace.len());
            table.row(vec![
                algo.to_string(),
                makespan.to_string(),
                format!("{:.0}", result.stats.avg_latency()),
                result
                    .stats
                    .latency_quantile(0.99)
                    .map(|q| q.to_string())
                    .unwrap_or_default(),
            ]);
        }
        println!("\ntrace: {name}\n");
        println!("{}", table.render());
    }
    println!("(identical packet sequences; differences are purely the routing algorithm)");
}
