//! Quickstart: build a random irregular network, construct the DOWN/UP
//! routing, verify it, and simulate uniform wormhole traffic.
//!
//! Run with: `cargo run --release --example quickstart`

use irnet::prelude::*;

fn main() {
    // 1. A random irregular switch network: 64 switches, 4 ports each,
    //    connected, ports saturated by random pairing.
    let topo = gen::random_irregular(gen::IrregularParams::paper(64, 4), 2024).unwrap();
    println!(
        "topology: {} switches, {} links, avg degree {:.2}, diameter {}",
        topo.num_nodes(),
        topo.num_links(),
        topo.avg_degree(),
        topo.diameter()
    );

    // 2. Construct the DOWN/UP routing (paper defaults: M1 coordinated
    //    tree, Phase-3 release enabled).
    let routing = DownUp::new().construct(&topo).unwrap();
    println!(
        "coordinated tree: {} levels, {} leaves; phase 3 released {} redundant turns",
        routing.tree().max_level() + 1,
        routing.tree().leaves().len(),
        routing.released_turns().len()
    );

    // 3. Machine-check Theorem 1: deadlock freedom + connectivity.
    let report = verify_routing(routing.comm_graph(), routing.turn_table());
    assert!(report.is_ok(), "DOWN/UP must verify");
    println!(
        "verified deadlock-free and connected; avg route {:.2} hops, max {} hops, \
         {} prohibited channel pairs",
        report.avg_route_len.unwrap(),
        report.max_route_len.unwrap(),
        report.prohibited_pairs
    );

    // 4. Simulate uniform traffic at a moderate load.
    let cfg = SimConfig {
        packet_len: 128,
        injection_rate: 0.08,
        warmup_cycles: 2_000,
        measure_cycles: 8_000,
        ..SimConfig::default()
    };
    let stats = Simulator::new(routing.comm_graph(), routing.routing_tables(), cfg, 7).run();
    let m = PaperMetrics::compute(&stats, routing.comm_graph(), routing.tree());
    println!("--- simulation (offered load 0.08 flits/clock/node) ---");
    println!(
        "accepted traffic : {:.4} flits/clock/node",
        m.accepted_traffic
    );
    println!("avg latency      : {:.1} clocks", m.avg_latency);
    println!("node utilization : {:.4}", m.node_utilization);
    println!(
        "hot spot degree  : {:.2} % of utilization at tree levels 0-1",
        m.hot_spot_degree
    );
    println!("leaf utilization : {:.4}", m.leaf_utilization);
}
