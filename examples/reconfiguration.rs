//! Scenario: surviving a link failure by reconfiguration.
//!
//! Tree-based routings for irregular networks (Autonet's original
//! motivation) handle topology changes by recomputing the spanning tree
//! and turn restrictions. This example fails links one at a time,
//! reconstructs the DOWN/UP routing on the degraded fabric, re-verifies
//! deadlock freedom + connectivity, and measures how much throughput the
//! failure costs.
//!
//! Run with: `cargo run --release --example reconfiguration`

use irnet::prelude::*;

/// Rebuilds a topology without one link; `None` if that disconnects it.
fn without_link(topo: &Topology, dead: u32) -> Option<Topology> {
    let links: Vec<(u32, u32)> = topo
        .links()
        .iter()
        .enumerate()
        .filter(|&(l, _)| l as u32 != dead)
        .map(|(_, &ab)| ab)
        .collect();
    Topology::new(topo.num_nodes(), topo.ports(), links).ok()
}

fn throughput(inst: &Instance, seed: u64) -> f64 {
    let base = SimConfig {
        packet_len: 32,
        warmup_cycles: 800,
        measure_cycles: 4_000,
        ..SimConfig::default()
    };
    sweep::sweep(inst, &base, &[0.05, 0.15, 0.3], seed).max_throughput()
}

fn main() {
    let topo = gen::random_irregular(gen::IrregularParams::paper(48, 4), 17).unwrap();
    let healthy = Algo::DownUp { release: true }
        .construct(&topo, PreorderPolicy::M1, 0)
        .unwrap();
    let healthy_thpt = throughput(&healthy, 1);
    println!(
        "healthy fabric: {} switches, {} links, max throughput {:.4} flits/clock/node\n",
        topo.num_nodes(),
        topo.num_links(),
        healthy_thpt
    );

    let mut survived = 0u32;
    let mut fatal = 0u32;
    let mut worst: (f64, u32) = (f64::INFINITY, u32::MAX);
    // Fail each of the first 12 links in turn.
    for dead in 0..12.min(topo.num_links()) {
        let Some(degraded) = without_link(&topo, dead) else {
            // This link was a bridge: no routing can survive its loss.
            fatal += 1;
            println!("link {dead}: bridge — fabric disconnected, reconfiguration impossible");
            continue;
        };
        let inst = Algo::DownUp { release: true }
            .construct(&degraded, PreorderPolicy::M1, 0)
            .unwrap();
        let report = verify_routing(&inst.cg, &inst.table);
        assert!(
            report.is_ok(),
            "reconfigured routing must verify (link {dead})"
        );
        let thpt = throughput(&inst, 2 + dead as u64);
        survived += 1;
        if thpt < worst.0 {
            worst = (thpt, dead);
        }
        println!(
            "link {dead}: reconfigured OK — avg route {:.2} hops, throughput {:.4} \
             ({:+.1} % vs healthy)",
            report.avg_route_len.unwrap(),
            thpt,
            100.0 * (thpt / healthy_thpt - 1.0)
        );
    }
    println!(
        "\n{survived} failures reconfigured and re-verified, {fatal} were bridges; \
         worst surviving throughput {:.4} (link {})",
        worst.0, worst.1
    );
}
