//! Scenario: how much does the coordinated-tree construction matter?
//!
//! The paper's Remark 1 claims its M1 preorder policy (smallest node number
//! first) gives the best performance for both DOWN/UP and L-turn, versus a
//! random order (M2) and largest-first (M3). This example measures route
//! quality and simulated throughput for all three policies on a batch of
//! networks.
//!
//! Run with: `cargo run --release --example tree_methods`

use irnet::metrics::report::TextTable;
use irnet::metrics::sweep;
use irnet::prelude::*;

fn main() {
    let samples = 4u64;
    let rates = [0.05, 0.15, 0.3];
    let base = SimConfig {
        packet_len: 32,
        warmup_cycles: 1_000,
        measure_cycles: 4_000,
        ..SimConfig::default()
    };

    for algo in [
        Algo::LTurn { release: true },
        Algo::DownUp { release: true },
    ] {
        let mut table = TextTable::new(&[
            "policy",
            "avg hops",
            "max thpt (flits/clk/node)",
            "hot spot % @ sat",
        ]);
        for policy in PreorderPolicy::ALL {
            let mut hops = 0.0;
            let mut thpt = 0.0;
            let mut hot = 0.0;
            for s in 0..samples {
                let topo =
                    gen::random_irregular(gen::IrregularParams::paper(48, 4), 300 + s).unwrap();
                let inst = algo.construct(&topo, policy, s).unwrap();
                hops += inst.tables.avg_route_len(&inst.cg);
                let curve = sweep::sweep(&inst, &base, &rates, 1_000 + s);
                let sat = curve.saturation();
                thpt += sat.metrics.accepted_traffic;
                hot += sat.metrics.hot_spot_degree;
            }
            let n = samples as f64;
            table.row(vec![
                policy.to_string(),
                format!("{:.3}", hops / n),
                format!("{:.4}", thpt / n),
                format!("{:.1}", hot / n),
            ]);
        }
        println!("\n{algo} across coordinated-tree policies ({samples} networks):\n");
        println!("{}", table.render());
    }
    println!("Remark 1 of the paper predicts M1 at or near the top of each table.");
}
