//! Scenario: auditing a routing configuration for deadlock freedom before
//! deploying it — the safety property the whole paper is built on.
//!
//! Sweeps a batch of random irregular topologies, constructs every
//! algorithm × tree-policy combination, and machine-checks each one:
//! channel-dependency-graph acyclicity (deadlock freedom) and all-pairs
//! connectivity. Also demonstrates the *negative* case: the prohibited-turn
//! list as printed in §4.3 of the paper admits a turn cycle, which this
//! audit catches.
//!
//! Run with: `cargo run --release --example deadlock_audit`

use irnet::downup::phase2;
use irnet::prelude::*;

fn main() {
    let algos = [
        Algo::UpDownBfs,
        Algo::UpDownDfs,
        Algo::LTurn { release: true },
        Algo::DownUp { release: true },
        Algo::DownUp { release: false },
    ];
    let mut checked = 0u32;
    for seed in 0..12u64 {
        let ports = if seed % 2 == 0 { 4 } else { 8 };
        let topo = gen::random_irregular(gen::IrregularParams::paper(48, ports), seed).unwrap();
        for algo in algos {
            for policy in PreorderPolicy::ALL {
                let inst = algo.construct(&topo, policy, seed).unwrap();
                let report = verify_routing(&inst.cg, &inst.table);
                assert!(
                    report.is_ok(),
                    "AUDIT FAILURE: {algo} / {policy} on seed {seed}: cycle={:?} disc={:?}",
                    report.cycle,
                    report.disconnected
                );
                checked += 1;
            }
        }
    }
    println!("audited {checked} routing instances: all deadlock-free and connected");

    // The negative control: the paper's *printed* PT list (§4.3) differs
    // from its own construction and is NOT safe. Find a topology where the
    // audit catches the cycle.
    let mut caught = 0u32;
    let mut audited = 0u32;
    for seed in 0..12u64 {
        let topo = gen::random_irregular(gen::IrregularParams::paper(48, 4), seed).unwrap();
        let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        let cg = CommGraph::build(&topo, &tree);
        let printed = TurnTable::from_direction_rule(&cg, |a, b| {
            !phase2::PROHIBITED_TURNS_AS_PRINTED.contains(&(a, b))
        });
        let dep = ChannelDepGraph::build(&cg, &printed);
        audited += 1;
        if let Some(cycle) = dep.find_cycle() {
            caught += 1;
            if caught == 1 {
                print!("printed §4.3 turn list admits a turn cycle (seed {seed}):");
                for &c in &cycle {
                    print!(" {}", cg.direction(c));
                }
                println!();
            }
        }
    }
    println!(
        "printed-list audit: {caught}/{audited} random topologies contain a realizable \
         turn cycle under the as-printed prohibitions"
    );
    assert!(
        caught > 0,
        "expected the audit to catch the printed-list cycle somewhere"
    );
    println!("the construction-derived list (what this crate implements) passed every audit");
}
