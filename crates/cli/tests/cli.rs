//! End-to-end tests of the `irnet` command-line tool: every subcommand is
//! exercised as a real process against files in a temp directory.

use std::path::PathBuf;
use std::process::{Command, Output};

fn irnet(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_irnet"))
        .args(args)
        .output()
        .expect("spawn irnet")
}

fn tmpfile(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("irnet-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn gen_writes_valid_topology_json() {
    let out = tmpfile("net.json");
    let r = irnet(&[
        "gen",
        "--switches",
        "24",
        "--ports",
        "4",
        "--seed",
        "3",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(r.status.success(), "{}", String::from_utf8_lossy(&r.stderr));
    let json = std::fs::read_to_string(&out).unwrap();
    let topo = irnet_topology::topology_from_json(&json).unwrap();
    assert_eq!(topo.num_nodes(), 24);
    std::fs::remove_file(out).ok();
}

#[test]
fn verify_reports_deadlock_freedom_for_every_algo() {
    for algo in [
        "downup",
        "downup-norelease",
        "lturn",
        "updown-bfs",
        "updown-dfs",
    ] {
        let r = irnet(&["verify", "--switches", "20", "--seed", "2", "--algo", algo]);
        assert!(
            r.status.success(),
            "algo {algo}: {}",
            String::from_utf8_lossy(&r.stderr)
        );
        let stdout = String::from_utf8_lossy(&r.stdout);
        assert!(
            stdout.contains("deadlock-free      : yes"),
            "algo {algo}: {stdout}"
        );
        assert!(stdout.contains("connected          : yes"));
    }
}

#[test]
fn simulate_prints_paper_metrics() {
    let r = irnet(&[
        "simulate",
        "--switches",
        "16",
        "--rate",
        "0.05",
        "--packet-len",
        "16",
        "--warmup",
        "300",
        "--measure",
        "1500",
    ]);
    assert!(r.status.success(), "{}", String::from_utf8_lossy(&r.stderr));
    let stdout = String::from_utf8_lossy(&r.stdout);
    assert!(stdout.contains("accepted traffic"));
    assert!(stdout.contains("hot spot degree"));
    assert!(!stdout.contains("deadlock watchdog"));
}

#[test]
fn sweep_emits_csv() {
    let r = irnet(&[
        "sweep",
        "--switches",
        "12",
        "--rates",
        "0.02,0.2",
        "--packet-len",
        "8",
        "--warmup",
        "200",
        "--measure",
        "800",
    ]);
    assert!(r.status.success(), "{}", String::from_utf8_lossy(&r.stderr));
    let stdout = String::from_utf8_lossy(&r.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "# backend=flit");
    assert_eq!(
        lines[1],
        "offered,accepted,latency,node_util,hot_spot_pct,deadlocked"
    );
    assert_eq!(
        lines.len(),
        4,
        "expected backend line + header + 2 data rows: {stdout}"
    );
}

#[test]
fn sweep_flow_backend_emits_csv() {
    let r = irnet(&[
        "sweep",
        "--switches",
        "12",
        "--rates",
        "0.02,0.2",
        "--packet-len",
        "8",
        "--warmup",
        "200",
        "--measure",
        "800",
        "--backend",
        "flow",
    ]);
    assert!(r.status.success(), "{}", String::from_utf8_lossy(&r.stderr));
    let stdout = String::from_utf8_lossy(&r.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "# backend=flow");
    assert_eq!(
        lines[1],
        "offered,accepted,latency_mean,latency_median,latency_p99,saturated"
    );
    assert_eq!(
        lines.len(),
        4,
        "expected backend line + header + 2 data rows: {stdout}"
    );
}

#[test]
fn sweep_rejects_unknown_backend() {
    let r = irnet(&["sweep", "--switches", "12", "--backend", "bogus"]);
    assert!(!r.status.success());
    let stderr = String::from_utf8_lossy(&r.stderr);
    assert!(stderr.contains("unknown backend"), "{stderr}");
}

#[test]
fn analyze_describes_the_fabric() {
    let r = irnet(&["analyze", "--switches", "20", "--ports", "4"]);
    assert!(r.status.success());
    let stdout = String::from_utf8_lossy(&r.stdout);
    assert!(stdout.contains("diameter"));
    assert!(stdout.contains("tree levels"));
    assert!(stdout.contains("cross links"));
    // The static-analysis half: oracle verdict + audit summary.
    assert!(
        stdout.contains("feasibility         : feasible"),
        "{stdout}"
    );
    assert!(stdout.contains("audits              : passed"), "{stdout}");
    assert!(stdout.contains("prohibited turns"), "{stdout}");
}

#[test]
fn analyze_json_carries_the_versioned_schema() {
    let r = irnet(&["analyze", "--switches", "16", "--seed", "1", "--json"]);
    assert_eq!(
        r.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&r.stderr)
    );
    let stdout = String::from_utf8_lossy(&r.stdout);
    assert!(
        stdout.contains("\"schema\": \"irnet-analyze-v1\""),
        "{stdout}"
    );
    assert!(stdout.contains("\"status\": \"feasible\""), "{stdout}");
    assert!(stdout.contains("\"passed\": true"), "{stdout}");
    assert!(stdout.contains("\"black_hole_states\": 0"), "{stdout}");
}

#[test]
fn analyze_rejects_an_infeasible_scenario_with_exit_1() {
    // Cutting the only link of a degree-1 switch partitions the fabric: the
    // oracle must return a minimized obstruction and the command exit 1.
    let topo = irnet_topology::gen::random_irregular(
        irnet_topology::gen::IrregularParams::paper(24, 4),
        3,
    )
    .unwrap();
    let (a, b) = topo.link(0);
    // Find a bridge by probing every link with the degrade API.
    let bridge = (0..topo.num_links()).find_map(|l| {
        let (a, b) = topo.link(l);
        let plan = irnet_topology::FaultPlan::scripted([irnet_topology::FaultEvent::down(
            0,
            irnet_topology::FaultKind::Link { a, b },
        )]);
        topo.degrade(&plan).is_err().then_some((a, b))
    });
    let scenario = tmpfile("infeasible.json");
    let (a, b) = bridge.unwrap_or((a, b));
    std::fs::write(
        &scenario,
        format!(r#"{{"events":[{{"cycle":100,"link":[{a},{b}]}}]}}"#),
    )
    .unwrap();
    let r = irnet(&[
        "analyze",
        "--switches",
        "24",
        "--ports",
        "4",
        "--seed",
        "3",
        "--scenario",
        scenario.to_str().unwrap(),
        "--json",
    ]);
    let stdout = String::from_utf8_lossy(&r.stdout);
    if bridge.is_some() {
        assert_eq!(r.status.code(), Some(1), "{stdout}");
        assert!(stdout.contains("\"status\": \"infeasible\""), "{stdout}");
        assert!(stdout.contains("\"kind\": \"partitioned\""), "{stdout}");
        assert!(stdout.contains("\"audit\": null"), "{stdout}");
    } else {
        // No bridge in this fabric: a single link fault stays feasible.
        assert_eq!(r.status.code(), Some(0), "{stdout}");
    }
    std::fs::remove_file(scenario).ok();
}

#[test]
fn analyze_grid_quick_is_clean() {
    let r = irnet(&["analyze", "--grid", "--quick"]);
    assert_eq!(
        r.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&r.stdout)
    );
    let stdout = String::from_utf8_lossy(&r.stdout);
    assert!(
        stdout.contains("analyze grid: 56 cells, 56 clean, 0 failed"),
        "{stdout}"
    );
}

#[test]
fn faults_gate_reports_infeasibility_without_repairing() {
    // A path topology cannot be generated by `gen`, so build one by hand:
    // use the 24-switch fabric and kill every link of switch 0 — the
    // cumulative degradation isolates it, which the gate must prove.
    let topo = irnet_topology::gen::random_irregular(
        irnet_topology::gen::IrregularParams::paper(24, 4),
        3,
    )
    .unwrap();
    let events: Vec<String> = topo
        .neighbors(0)
        .iter()
        .enumerate()
        .map(|(i, &(w, _))| format!(r#"{{"cycle":{},"link":[0,{w}]}}"#, 600 + 100 * i))
        .collect();
    let scenario = tmpfile("gate.json");
    std::fs::write(&scenario, format!(r#"{{"events":[{}]}}"#, events.join(","))).unwrap();
    let r = irnet(&[
        "faults",
        "--switches",
        "24",
        "--ports",
        "4",
        "--seed",
        "3",
        "--scenario",
        scenario.to_str().unwrap(),
    ]);
    assert_eq!(r.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&r.stderr);
    assert!(stderr.contains("feasibility gate"), "{stderr}");
    assert!(stderr.contains("provably unroutable"), "{stderr}");
    assert!(stderr.contains("skipping repair"), "{stderr}");
    // The gate fires before any repair or simulation output is produced.
    let stdout = String::from_utf8_lossy(&r.stdout);
    assert!(!stdout.contains("epoch @"), "{stdout}");
    assert!(!stdout.contains("packets delivered"), "{stdout}");
    std::fs::remove_file(scenario).ok();
}

#[test]
fn export_roundtrips_through_the_parser() {
    let out = tmpfile("tables.fwd");
    let r = irnet(&[
        "export",
        "--switches",
        "12",
        "--seed",
        "4",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(r.status.success(), "{}", String::from_utf8_lossy(&r.stderr));
    let text = std::fs::read_to_string(&out).unwrap();
    let parsed = irnet_turns::parse_exported(&text).unwrap();
    assert_eq!(parsed.num_nodes(), 12);
    std::fs::remove_file(out).ok();
}

#[test]
fn unknown_arguments_fail_with_usage() {
    let r = irnet(&["frobnicate"]);
    assert!(!r.status.success());
    assert!(String::from_utf8_lossy(&r.stderr).contains("irnet <gen"));
    let r = irnet(&["simulate", "--bogus", "1"]);
    // Unknown options are accepted syntactically but ignored; a malformed
    // known option must fail.
    let _ = r;
    let r = irnet(&["simulate", "--rate", "not-a-number"]);
    assert!(!r.status.success());
}

#[test]
fn replay_runs_a_synthetic_trace() {
    let r = irnet(&[
        "replay",
        "--switches",
        "16",
        "--trace-packets",
        "40",
        "--trace-span",
        "500",
        "--packet-len",
        "8",
    ]);
    assert!(r.status.success(), "{}", String::from_utf8_lossy(&r.stderr));
    let stdout = String::from_utf8_lossy(&r.stdout);
    assert!(stdout.contains("makespan"));
    assert!(stdout.contains("packets          : 40"));
}

#[test]
fn render_emits_svg() {
    let out = tmpfile("net.svg");
    let r = irnet(&[
        "render",
        "--switches",
        "16",
        "--rate",
        "0.1",
        "--packet-len",
        "8",
        "--warmup",
        "200",
        "--measure",
        "800",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(r.status.success(), "{}", String::from_utf8_lossy(&r.stderr));
    let svg = std::fs::read_to_string(&out).unwrap();
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("node utilization"));
    std::fs::remove_file(out).ok();
}

#[test]
fn faults_runs_a_scripted_scenario_end_to_end() {
    let scenario = tmpfile("scenario.json");
    std::fs::write(&scenario, r#"{"events":[{"cycle":600,"link":[0,1]}]}"#).unwrap();
    // Link (0, 1) may not exist in the generated fabric; pick one that does
    // by asking the topology itself.
    let topo = irnet_topology::gen::random_irregular(
        irnet_topology::gen::IrregularParams::paper(24, 4),
        3,
    )
    .unwrap();
    let (a, b) = topo.link(0);
    std::fs::write(
        &scenario,
        format!(r#"{{"events":[{{"cycle":600,"link":[{a},{b}]}}]}}"#),
    )
    .unwrap();
    let r = irnet(&[
        "faults",
        "--switches",
        "24",
        "--ports",
        "4",
        "--seed",
        "3",
        "--rate",
        "0.1",
        "--packet-len",
        "8",
        "--warmup",
        "200",
        "--measure",
        "1500",
        "--scenario",
        scenario.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&r.stdout);
    // The pipeline must complete and report both certificates per epoch;
    // a witnessed (uncertified) transition is a legitimate exit-1 outcome.
    assert!(stdout.contains("fault plan"), "{stdout}");
    assert!(stdout.contains("degraded table"), "{stdout}");
    assert!(stdout.contains("old∪new union"), "{stdout}");
    assert!(stdout.contains("reconfig epochs  : 1"), "{stdout}");
    std::fs::remove_file(scenario).ok();
}

#[test]
fn faults_runs_a_recovery_scenario_with_flap_damping() {
    let scenario = tmpfile("recovery-scenario.json");
    let topo = irnet_topology::gen::random_irregular(
        irnet_topology::gen::IrregularParams::paper(24, 4),
        3,
    )
    .unwrap();
    let (a, b) = topo.link(0);
    std::fs::write(
        &scenario,
        format!(
            r#"{{"version":2,"events":[{{"cycle":600,"link":[{a},{b}],"recovers_at":900,"flap":{{"period":500,"count":2}}}}]}}"#
        ),
    )
    .unwrap();
    let r = irnet(&[
        "faults",
        "--switches",
        "24",
        "--ports",
        "4",
        "--seed",
        "3",
        "--rate",
        "0.1",
        "--packet-len",
        "8",
        "--warmup",
        "200",
        "--measure",
        "3000",
        "--hold",
        "100",
        "--scenario",
        scenario.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&r.stdout);
    // Both directions must be planned and annotated, the damping summary
    // must show fewer admitted epochs than raw flap transitions, and the
    // conservation line must balance exactly. (A witnessed transition is
    // still a legitimate exit-1 outcome; the report always prints.)
    assert!(stdout.contains("recovers at 900"), "{stdout}");
    assert!(stdout.contains(": up —"), "{stdout}");
    assert!(stdout.contains(": down —"), "{stdout}");
    assert!(stdout.contains("flap damping"), "{stdout}");
    assert!(stdout.contains("suppressed re-admission(s)"), "{stdout}");
    assert!(stdout.contains("flit conservation: exact"), "{stdout}");
    std::fs::remove_file(scenario).ok();
}

#[test]
fn soak_report_is_byte_stable_and_passes_its_invariants() {
    let out1 = tmpfile("soak-1.json");
    let out2 = tmpfile("soak-2.json");
    fn args(out: &str) -> Vec<&str> {
        vec![
            "soak",
            "--switches",
            "32",
            "--ports",
            "4",
            "--seed",
            "2",
            "--events",
            "3",
            "--rate",
            "0.1",
            "--packet-len",
            "8",
            "--warmup",
            "400",
            "--measure",
            "3000",
            "--chaos-seed",
            "11",
            "--out",
            out,
        ]
    }
    let r1 = irnet(&args(out1.to_str().unwrap()));
    assert_eq!(
        r1.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&r1.stderr)
    );
    let stderr = String::from_utf8_lossy(&r1.stderr);
    assert!(stderr.contains("certification ok"), "{stderr}");
    assert!(stderr.contains("conservation exact"), "{stderr}");
    let r2 = irnet(&args(out2.to_str().unwrap()));
    assert_eq!(r2.status.code(), Some(0));
    let a = std::fs::read(&out1).unwrap();
    let b = std::fs::read(&out2).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b, "soak report must be byte-stable for a fixed seed set");
    let report = String::from_utf8_lossy(&a).to_string();
    assert!(report.contains("\"kind\": \"soak_report\""), "{report}");
    assert!(report.contains("\"passed\": true"), "{report}");
    assert!(report.contains("\"conserved\": true"), "{report}");
    std::fs::remove_file(out1).ok();
    std::fs::remove_file(out2).ok();
}

#[test]
fn data_errors_exit_1_without_usage() {
    let r = irnet(&["simulate", "--topology", "/nonexistent/net.json"]);
    assert_eq!(r.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&r.stderr);
    assert!(stderr.contains("cannot read"), "{stderr}");
    assert!(
        !stderr.contains("common options"),
        "data errors must not dump the usage text: {stderr}"
    );
}

#[test]
fn usage_errors_exit_2_with_usage() {
    let r = irnet(&["simulate", "--rate", "not-a-number"]);
    assert_eq!(r.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&r.stderr);
    assert!(stderr.contains("invalid --rate"), "{stderr}");
    assert!(stderr.contains("common options"), "{stderr}");
}

#[test]
fn sweep_with_telemetry_is_bit_identical_and_writes_a_snapshot() {
    let snap_path = tmpfile("sweep-tel.json");
    let base = [
        "sweep",
        "--switches",
        "12",
        "--rates",
        "0.02,0.2",
        "--packet-len",
        "8",
        "--warmup",
        "200",
        "--measure",
        "800",
    ];
    let plain = irnet(&base);
    assert!(
        plain.status.success(),
        "{}",
        String::from_utf8_lossy(&plain.stderr)
    );
    let mut with_tel: Vec<&str> = base.to_vec();
    with_tel.extend(["--telemetry", snap_path.to_str().unwrap()]);
    let observed = irnet(&with_tel);
    assert!(
        observed.status.success(),
        "{}",
        String::from_utf8_lossy(&observed.stderr)
    );
    // The deterministic contract of --telemetry: primary outputs stay
    // byte-identical.
    assert_eq!(plain.stdout, observed.stdout);
    let json = std::fs::read_to_string(&snap_path).unwrap();
    let snap = irnet_telemetry::Snapshot::from_json(&json).expect("valid snapshot");
    assert_eq!(snap.counter("sim/runs"), Some(2), "one sim per load point");
    assert!(snap.span("construction").is_some());
    assert!(snap.span("sim/run").is_some());
    std::fs::remove_file(snap_path).ok();
}

#[test]
fn stats_renders_diffs_and_exposes_prometheus() {
    let snap_path = tmpfile("stats-tel.json");
    let r = irnet(&[
        "simulate",
        "--switches",
        "12",
        "--rate",
        "0.05",
        "--warmup",
        "200",
        "--measure",
        "800",
        "--telemetry",
        snap_path.to_str().unwrap(),
    ]);
    assert!(r.status.success(), "{}", String::from_utf8_lossy(&r.stderr));
    let path = snap_path.to_str().unwrap();

    let render = irnet(&["stats", "--snapshot", path]);
    assert!(render.status.success());
    let text = String::from_utf8_lossy(&render.stdout);
    assert!(
        text.contains("telemetry snapshot (irnet-telemetry-v1)"),
        "{text}"
    );
    assert!(text.contains("sim/cycles"), "{text}");

    let prom = irnet(&["stats", "--snapshot", path, "--prometheus"]);
    assert!(prom.status.success());
    let text = String::from_utf8_lossy(&prom.stdout);
    assert!(text.contains("# TYPE irnet_sim_cycles counter"), "{text}");
    assert!(
        text.contains("irnet_span_seconds_total{path=\"construction\"}"),
        "{text}"
    );

    let diff = irnet(&["stats", "--snapshot", path, "--diff", path]);
    assert!(diff.status.success());
    assert_eq!(String::from_utf8_lossy(&diff.stdout), "no differences\n");

    let missing = irnet(&["stats", "--snapshot", "/nonexistent/snap.json"]);
    assert_eq!(missing.status.code(), Some(1));
    std::fs::remove_file(snap_path).ok();
}

#[test]
fn sweep_progress_json_emits_monotone_heartbeats() {
    let r = irnet(&[
        "sweep",
        "--switches",
        "12",
        "--rates",
        "0.02,0.1,0.2",
        "--packet-len",
        "8",
        "--warmup",
        "200",
        "--measure",
        "800",
        "--progress",
        "json",
    ]);
    assert!(r.status.success(), "{}", String::from_utf8_lossy(&r.stderr));
    let stderr = String::from_utf8_lossy(&r.stderr);
    let mut last_done = 0u64;
    let mut total = 0u64;
    let mut beats = 0;
    for line in stderr.lines().filter(|l| l.starts_with('{')) {
        let v: serde::Value = serde_json::from_str(line).expect("heartbeat line is JSON");
        let map = v.as_map().expect("heartbeat is an object");
        let field = |k: &str| map.iter().find(|(key, _)| key == k).map(|(_, v)| v);
        let kind = match field("kind") {
            Some(serde::Value::Str(s)) => s.clone(),
            other => panic!("missing kind: {other:?}"),
        };
        if kind != "progress" {
            continue;
        }
        let num = |k: &str| match field(k) {
            Some(serde::Value::U64(n)) => *n,
            Some(serde::Value::I64(n)) => u64::try_from(*n).unwrap(),
            other => panic!("missing {k}: {other:?}"),
        };
        let done = num("done");
        total = num("total");
        assert!(done >= last_done, "done must be monotone: {stderr}");
        assert!(done <= total);
        last_done = done;
        beats += 1;
    }
    assert!(beats >= 1, "no heartbeats on stderr: {stderr}");
    assert_eq!(last_done, 3, "final heartbeat must report completion");
    assert_eq!(total, 3);
}

#[test]
fn sweep_human_progress_lines_are_unchanged() {
    let r = irnet(&[
        "sweep",
        "--switches",
        "12",
        "--rates",
        "0.02,0.1",
        "--packet-len",
        "8",
        "--warmup",
        "200",
        "--measure",
        "800",
        "--progress",
    ]);
    assert!(r.status.success(), "{}", String::from_utf8_lossy(&r.stderr));
    let stderr = String::from_utf8_lossy(&r.stderr);
    let final_line = stderr
        .lines()
        .find(|l| l.starts_with("sweep[flit]: 2/2 points"))
        .unwrap_or_else(|| panic!("missing final human progress line: {stderr}"));
    assert!(final_line.contains("elapsed"), "{final_line}");
    assert!(final_line.contains("eta"), "{final_line}");
}
