//! End-to-end tests of the `irnet` command-line tool: every subcommand is
//! exercised as a real process against files in a temp directory.

use std::path::PathBuf;
use std::process::{Command, Output};

fn irnet(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_irnet"))
        .args(args)
        .output()
        .expect("spawn irnet")
}

fn tmpfile(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("irnet-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn gen_writes_valid_topology_json() {
    let out = tmpfile("net.json");
    let r = irnet(&[
        "gen",
        "--switches",
        "24",
        "--ports",
        "4",
        "--seed",
        "3",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(r.status.success(), "{}", String::from_utf8_lossy(&r.stderr));
    let json = std::fs::read_to_string(&out).unwrap();
    let topo = irnet_topology::topology_from_json(&json).unwrap();
    assert_eq!(topo.num_nodes(), 24);
    std::fs::remove_file(out).ok();
}

#[test]
fn verify_reports_deadlock_freedom_for_every_algo() {
    for algo in [
        "downup",
        "downup-norelease",
        "lturn",
        "updown-bfs",
        "updown-dfs",
    ] {
        let r = irnet(&["verify", "--switches", "20", "--seed", "2", "--algo", algo]);
        assert!(
            r.status.success(),
            "algo {algo}: {}",
            String::from_utf8_lossy(&r.stderr)
        );
        let stdout = String::from_utf8_lossy(&r.stdout);
        assert!(
            stdout.contains("deadlock-free      : yes"),
            "algo {algo}: {stdout}"
        );
        assert!(stdout.contains("connected          : yes"));
    }
}

#[test]
fn simulate_prints_paper_metrics() {
    let r = irnet(&[
        "simulate",
        "--switches",
        "16",
        "--rate",
        "0.05",
        "--packet-len",
        "16",
        "--warmup",
        "300",
        "--measure",
        "1500",
    ]);
    assert!(r.status.success(), "{}", String::from_utf8_lossy(&r.stderr));
    let stdout = String::from_utf8_lossy(&r.stdout);
    assert!(stdout.contains("accepted traffic"));
    assert!(stdout.contains("hot spot degree"));
    assert!(!stdout.contains("deadlock watchdog"));
}

#[test]
fn sweep_emits_csv() {
    let r = irnet(&[
        "sweep",
        "--switches",
        "12",
        "--rates",
        "0.02,0.2",
        "--packet-len",
        "8",
        "--warmup",
        "200",
        "--measure",
        "800",
    ]);
    assert!(r.status.success(), "{}", String::from_utf8_lossy(&r.stderr));
    let stdout = String::from_utf8_lossy(&r.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "offered,accepted,latency,node_util,hot_spot_pct");
    assert_eq!(lines.len(), 3, "expected header + 2 data rows: {stdout}");
}

#[test]
fn analyze_describes_the_fabric() {
    let r = irnet(&["analyze", "--switches", "20", "--ports", "4"]);
    assert!(r.status.success());
    let stdout = String::from_utf8_lossy(&r.stdout);
    assert!(stdout.contains("diameter"));
    assert!(stdout.contains("tree levels"));
    assert!(stdout.contains("cross links"));
}

#[test]
fn export_roundtrips_through_the_parser() {
    let out = tmpfile("tables.fwd");
    let r = irnet(&[
        "export",
        "--switches",
        "12",
        "--seed",
        "4",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(r.status.success(), "{}", String::from_utf8_lossy(&r.stderr));
    let text = std::fs::read_to_string(&out).unwrap();
    let parsed = irnet_turns::parse_exported(&text).unwrap();
    assert_eq!(parsed.num_nodes(), 12);
    std::fs::remove_file(out).ok();
}

#[test]
fn unknown_arguments_fail_with_usage() {
    let r = irnet(&["frobnicate"]);
    assert!(!r.status.success());
    assert!(String::from_utf8_lossy(&r.stderr).contains("irnet <gen"));
    let r = irnet(&["simulate", "--bogus", "1"]);
    // Unknown options are accepted syntactically but ignored; a malformed
    // known option must fail.
    let _ = r;
    let r = irnet(&["simulate", "--rate", "not-a-number"]);
    assert!(!r.status.success());
}

#[test]
fn replay_runs_a_synthetic_trace() {
    let r = irnet(&[
        "replay",
        "--switches",
        "16",
        "--trace-packets",
        "40",
        "--trace-span",
        "500",
        "--packet-len",
        "8",
    ]);
    assert!(r.status.success(), "{}", String::from_utf8_lossy(&r.stderr));
    let stdout = String::from_utf8_lossy(&r.stdout);
    assert!(stdout.contains("makespan"));
    assert!(stdout.contains("packets          : 40"));
}

#[test]
fn render_emits_svg() {
    let out = tmpfile("net.svg");
    let r = irnet(&[
        "render",
        "--switches",
        "16",
        "--rate",
        "0.1",
        "--packet-len",
        "8",
        "--warmup",
        "200",
        "--measure",
        "800",
        "--out",
        out.to_str().unwrap(),
    ]);
    assert!(r.status.success(), "{}", String::from_utf8_lossy(&r.stderr));
    let svg = std::fs::read_to_string(&out).unwrap();
    assert!(svg.starts_with("<svg"));
    assert!(svg.contains("node utilization"));
    std::fs::remove_file(out).ok();
}
