//! The `irnet` exit-code contract, shared by every subcommand.
//!
//! * [`CLEAN`] (0) — the command ran to completion and surfaced nothing:
//!   no lint errors, no failed audits, no deadlock, no failed epoch.
//! * [`FINDING`] (1) — the invocation was well-formed and the command ran,
//!   but it surfaced a finding or a data/runtime error: lint errors, a
//!   failed audit or certification, an infeasible degradation, a deadlocked
//!   simulation, unreadable or malformed input files.
//! * [`USAGE`] (2) — the invocation itself was malformed (unknown
//!   subcommand, unknown flag, missing or unparsable value). The usage
//!   text is printed; nothing was analyzed or simulated.
//!
//! Scripts can therefore distinguish "the tool disagreed with the input"
//! (1) from "I called the tool wrong" (2). `irnet lint`, `irnet analyze`,
//! `irnet verify`, and `irnet faults` all route their exits through here.

/// Ran to completion, nothing surfaced.
pub const CLEAN: i32 = 0;
/// Ran, but surfaced a finding or a data/runtime error.
pub const FINDING: i32 = 1;
/// The invocation itself was malformed; usage text was printed.
pub const USAGE: i32 = 2;

/// Terminates with [`FINDING`]. The caller prints the diagnostics first.
pub fn finding() -> ! {
    std::process::exit(FINDING)
}

/// Terminates with [`USAGE`]. The caller prints the usage text first.
pub fn usage() -> ! {
    std::process::exit(USAGE)
}
