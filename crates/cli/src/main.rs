//! `irnet` — command-line interface to the workspace.
//!
//! Subcommands:
//!
//! * `gen`      — generate a random irregular topology (JSON to stdout/file)
//! * `analyze`  — static routability analysis: fabric statistics, the
//!   feasibility oracle (optionally through a fault scenario), and the four
//!   whole-table property audits; `--grid` sweeps the lint seed grids
//! * `verify`   — construct a routing over a topology and verify deadlock
//!   freedom + connectivity
//! * `lint`     — run the static deadlock-freedom certifier and routing
//!   lint battery (one target, or a seed grid when no `--topology` is given)
//! * `routes`   — print route statistics (and a sample route)
//! * `simulate` — run one wormhole simulation and print the paper metrics
//! * `faults`   — degrade the network with a fault plan, repair it epoch by
//!   epoch, certify every transition, and simulate through the failures
//! * `trace`    — run a simulation with the flight recorder attached and
//!   export the structured event recording as JSONL (optionally with an
//!   interval-sampled time series and deadlock forensics)
//! * `top`      — run one simulation and print its busiest channels/nodes
//!
//! Examples:
//!
//! ```text
//! irnet gen --switches 128 --ports 4 --seed 1 --out net.json
//! irnet verify --topology net.json --algo downup
//! irnet lint --topology net.json --algo downup --json
//! irnet lint --quick
//! irnet simulate --topology net.json --algo lturn --rate 0.1
//! irnet faults --topology net.json --scenario faults.json --json
//! ```
//!
//! Exit codes follow the contract in [`exit`]: 0 clean, 1 finding or
//! data/runtime error, 2 usage error (usage text printed).

mod exit;

use irnet_metrics::paper::PaperMetrics;
use irnet_metrics::{sweep, Algo, Instance};
use irnet_sim::{SimConfig, Simulator};
use irnet_telemetry::{Progress, ProgressMode, Snapshot, Telemetry};
use irnet_topology::{
    gen, topology_from_json, topology_to_json, CommGraph, CoordinatedTree, PreorderPolicy, Topology,
};
use irnet_turns::{verify_routing, ChannelDepGraph, TurnTable};
use irnet_verify::{LintReport, Severity, Verdict};
use serde::{Serialize, Value};
use std::collections::BTreeMap;

const USAGE: &str = "irnet <gen|analyze|verify|lint|routes|simulate|sweep|export|render|replay|\
faults|trace|soak|top|stats> [options]

common options:
  --topology FILE     read a topology JSON (otherwise --switches/--ports/--seed generate one)
  --switches N        switches for generated topologies (default 64)
  --ports N           port budget (default 4)
  --seed N            generation seed (default 1)
  --algo NAME         downup | downup-norelease | lturn | updown-bfs | updown-dfs (default downup)
  --policy M1|M2|M3   coordinated-tree preorder policy (default M1)
  --telemetry FILE    attach the telemetry registry (counters, gauges,
                      histograms, span tree) and write its JSON snapshot to
                      FILE when the command finishes; all outputs stay
                      bit-identical with or without it
  --progress [MODE]   progress lines on stderr where the command supports
                      them; MODE is human (default) or json (one JSONL
                      heartbeat per tick: done/total/elapsed/ETA)

gen options:
  --out FILE          write the topology JSON to FILE (default stdout)

analyze options:
  --scenario FILE     run the feasibility oracle on the topology degraded by
                      this fault plan (same format as `faults`), then audit
                      the surviving fabric; an infeasible degradation is
                      reported with a minimized obstruction and exit 1
  --json              print the analysis report as versioned JSON
  --grid              sweep the lint seed grids (oracle + audits per cell)
  --quick / --full    grid size (as for lint)

lint options:
  --json              print the lint report as JSON (single-target mode)
  --quick             grid mode: small seed grid (the default without --topology)
  --full              grid mode: larger seed grid

simulate options:
  --rate R            offered load, flits/node/clock (default 0.1)
  --packet-len N      flits per packet (default 128)
  --warmup N          warm-up cycles (default 2000)
  --measure N         measured cycles (default 8000)
  --vcs N             virtual channels (default 1)
  --sim-seed N        simulation seed (default 7)
  --watchdog N        deadlock watchdog threshold: abort after N cycles
                      without flit progress while packets are live
                      (default 20000)

sweep options (in addition to the simulate options):
  --rates r1,r2,...   offered-load ladder (default an 8-step ramp)
  --backend NAME      flit (exact engine, default) | flow (flow-level
                      predictor: analytic decomposition + clustered
                      representative sims); the CSV header line reports
                      which backend produced the curve
  --progress [MODE]   per-point progress (done/total, elapsed, ETA) on stderr

export options:
  --out FILE          write the forwarding tables (irnet-fwd v1) to FILE

render options (in addition to the simulate options):
  --out FILE          write an SVG of the network in coordinated-tree
                      layout, switches colored by measured utilization

replay options:
  --trace FILE        trace to replay: CSV (time,src,dst) or JSONL
                      ({\"time\":..,\"src\":..,\"dst\":..} per line, picked by a
                      .jsonl extension or a leading '{'); without it a
                      synthetic uniform trace is generated
  --trace-packets N   synthetic trace size (default 500)
  --trace-span N      synthetic trace injection window in clocks (default 4000)

trace options (in addition to the simulate options):
  --events N          flight-recorder ring capacity, events kept (default 65536)
  --out FILE          write the JSONL recording to FILE (default stdout)
  --sample-every N    also sample live counters every N cycles (default off)
  --series FILE       write the sampled time series as CSV to FILE
  --scenario FILE     inject a fault plan (same format as `faults`; DOWN/UP only)
  --no-repair         apply the fault epochs without repairing the routing
                      tables, then drain: wedges worms on the dead resources
                      so the watchdog and forensics fire deterministically
  --incident FILE     write the deadlock-forensics JSON to FILE when the
                      watchdog fires (default: summary on stderr only)

top options (in addition to the simulate options):
  --k N               rows per table (default 10)

faults options (in addition to the simulate options; DOWN/UP only):
  --incident FILE     write deadlock-forensics JSON to FILE if the watchdog
                      aborts the simulation
  --scenario FILE     fault-plan JSON: {\"events\":[{\"cycle\":N,\"link\":[a,b]},
                      {\"cycle\":N,\"switch\":v}, ...]}; version-2 plans add
                      recovery (\"recovers_at\":N) and flap schedules
                      (\"flap\":{\"period\":N,\"count\":K}) per event
  --random-links N    without --scenario: draw N random link faults (default 1)
  --random-switches N without --scenario: draw N random switch faults (default 0)
  --fault-window N    random activations fall in [warmup, warmup+N]
                      (default measure/2)
  --fault-seed N      fault-plan randomization seed (default 13)
  --repair STRAT      repair strategy: `full` rebuilds the routing tables
                      each epoch; `incremental` patches the previous
                      epoch's tables in place (default full)
  --hold N            flap damping: hold a recovered element down N cycles
                      before re-admission, doubling per repeat flap
                      (default 0 = admit recoveries immediately)
  --json              print the epoch/certificate report as JSON

soak options (in addition to the simulate options; DOWN/UP only):
  --events N          chaos faults to draw (default 6)
  --chaos-seed N      chaos-plan randomization seed (default 42)
  --hold N            flap-damping base hold-down in cycles (default 300)
  --repair STRAT      repair strategy per epoch (default incremental)
  --out FILE          write the JSON soak report to FILE (default stdout);
                      the report is byte-stable for a fixed seed set

stats options:
  --snapshot FILE     telemetry snapshot to render (required; written by
                      a previous run's --telemetry FILE)
  --diff FILE2        render only what changed from --snapshot to FILE2
  --prometheus        emit the Prometheus text exposition instead of the
                      human rendering";

fn fail(msg: &str) -> ! {
    eprintln!("irnet: {msg}\n\n{USAGE}");
    exit::usage()
}

/// Options that are flags: present/absent, no value.
const BOOL_FLAGS: &[&str] = &["quick", "full", "json", "no-repair", "grid", "prometheus"];

struct Opts {
    kv: BTreeMap<String, String>,
}

impl Opts {
    fn get(&self, k: &str) -> Option<&str> {
        self.kv.get(k).map(String::as_str)
    }
    fn flag(&self, k: &str) -> bool {
        self.kv.contains_key(k)
    }
    fn parse<T: std::str::FromStr>(&self, k: &str, default: T) -> T {
        match self.get(k) {
            None => default,
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|_| fail(&format!("invalid --{k} value {raw:?}"))),
        }
    }
}

fn parse_opts(args: &[String]) -> Opts {
    let mut kv = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--help" || a == "-h" {
            println!("{USAGE}");
            std::process::exit(0);
        }
        let Some(name) = a.strip_prefix("--") else {
            fail(&format!("unexpected argument {a:?}"))
        };
        if name == "progress" {
            // `--progress` takes an optional mode: a following bare
            // `human`/`json` is consumed, anything else leaves the default.
            if i + 1 < args.len() && matches!(args[i + 1].as_str(), "human" | "json") {
                kv.insert(name.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                kv.insert(name.to_string(), "human".to_string());
                i += 1;
            }
        } else if BOOL_FLAGS.contains(&name) {
            kv.insert(name.to_string(), "true".to_string());
            i += 1;
        } else if i + 1 < args.len() && !args[i + 1].starts_with("--") {
            kv.insert(name.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            fail(&format!("option --{name} needs a value"));
        }
    }
    Opts { kv }
}

fn load_topology(o: &Opts) -> Result<Topology, String> {
    if let Some(path) = o.get("topology") {
        let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        topology_from_json(&raw).map_err(|e| format!("invalid topology in {path}: {e}"))
    } else {
        let n = o.parse("switches", 64u32);
        let ports = o.parse("ports", 4u32);
        let seed = o.parse("seed", 1u64);
        gen::random_irregular(gen::IrregularParams::paper(n, ports), seed)
            .map_err(|e| format!("generation failed: {e}"))
    }
}

fn parse_algo(o: &Opts) -> Algo {
    match o.get("algo").unwrap_or("downup") {
        "downup" => Algo::DownUp { release: true },
        "downup-norelease" => Algo::DownUp { release: false },
        "lturn" => Algo::LTurn { release: true },
        "lturn-norelease" => Algo::LTurn { release: false },
        "updown-bfs" => Algo::UpDownBfs,
        "updown-dfs" => Algo::UpDownDfs,
        other => fail(&format!("unknown algorithm {other:?}")),
    }
}

fn parse_policy(o: &Opts) -> PreorderPolicy {
    match o.get("policy").unwrap_or("M1") {
        "M1" | "m1" => PreorderPolicy::M1,
        "M2" | "m2" => PreorderPolicy::M2,
        "M3" | "m3" => PreorderPolicy::M3,
        other => fail(&format!("unknown policy {other:?}")),
    }
}

/// The progress mode selected by `--progress [human|json]` (Human when the
/// flag is bare; `parse_opts` rejects other values by construction).
fn progress_mode(o: &Opts) -> ProgressMode {
    o.get("progress")
        .and_then(ProgressMode::parse)
        .unwrap_or_default()
}

fn build_instance(o: &Opts, topo: &Topology) -> Result<Instance, String> {
    let algo = parse_algo(o);
    let policy = parse_policy(o);
    let seed = o.parse("seed", 1u64);
    // The process-global telemetry registry is enabled only under
    // `--telemetry`; otherwise this is the disabled handle (one branch).
    algo.construct_with(topo, policy, seed, &irnet_telemetry::global())
        .map_err(|e| format!("construction failed: {e}"))
}

fn cmd_gen(o: &Opts) -> Result<(), String> {
    let topo = load_topology(o)?;
    let json = topology_to_json(&topo);
    match o.get("out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!(
                "wrote {path}: {} switches, {} links, avg degree {:.2}, diameter {}",
                topo.num_nodes(),
                topo.num_links(),
                topo.avg_degree(),
                topo.diameter()
            );
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_verify(o: &Opts) -> Result<(), String> {
    let topo = load_topology(o)?;
    let inst = build_instance(o, &topo)?;
    let report = verify_routing(&inst.cg, &inst.table);
    println!("algorithm          : {}", parse_algo(o));
    println!(
        "switches / links   : {} / {}",
        topo.num_nodes(),
        topo.num_links()
    );
    println!("prohibited pairs   : {}", report.prohibited_pairs);
    println!(
        "deadlock-free      : {}",
        if report.cycle.is_none() {
            "yes (channel dependency graph is acyclic)"
        } else {
            "NO"
        }
    );
    if let Some(cycle) = &report.cycle {
        println!("  witness turn cycle through {} channels", cycle.len());
    }
    println!(
        "connected          : {}",
        if report.disconnected.is_none() {
            "yes (all ordered pairs reachable)"
        } else {
            "NO"
        }
    );
    if let (Some(avg), Some(max)) = (report.avg_route_len, report.max_route_len) {
        println!("avg / max route len: {avg:.3} / {max}");
    }
    if !report.is_ok() {
        exit::finding()
    }
    Ok(())
}

fn cmd_lint(o: &Opts) -> Result<(), String> {
    if o.get("topology").is_some() {
        lint_single(o)
    } else {
        lint_grid(o)
    }
}

/// Lint one `(topology, algo, policy)` target; exit 1 on error findings.
fn lint_single(o: &Opts) -> Result<(), String> {
    let topo = load_topology(o)?;
    let inst = build_instance(o, &topo)?;
    let report = irnet_verify::lint(&inst.cg, &inst.table);
    let dep = ChannelDepGraph::build(&inst.cg, &inst.table);
    if let Err(e) = irnet_verify::recheck(&report.certificate, &dep) {
        return Err(format!(
            "internal error: certificate failed its own recheck: {e}"
        ));
    }
    if o.flag("json") {
        println!("{}", report.to_json());
    } else {
        println!("algorithm   : {}", parse_algo(o));
        print_lint_report(&report);
    }
    if report.has_errors() {
        exit::finding()
    }
    Ok(())
}

fn print_lint_report(report: &LintReport) {
    let cert = &report.certificate;
    println!(
        "certificate : {} ({} channels, {} dependency edges)",
        if cert.is_deadlock_free() {
            "deadlock-free (total channel numbering found)"
        } else {
            "DEADLOCK (witness cycle below)"
        },
        cert.num_channels,
        cert.num_edges
    );
    if report.findings.is_empty() {
        println!("findings    : none");
    }
    for f in &report.findings {
        println!("{}: {}", f.code, f.message);
    }
}

/// The battery: certify and lint every cell of a seed grid, plus a negative
/// control (the paper's §4.3 printed PT list on the five-switch
/// counterexample, which must be *rejected* with a minimized witness).
/// Exits nonzero if any cell errors, any certificate fails its independent
/// recheck, or the negative control is not caught.
fn lint_grid(o: &Opts) -> Result<(), String> {
    let topos: &[(u32, u32, u64)] = if o.flag("full") {
        &[
            (32, 4, 1),
            (32, 4, 2),
            (32, 4, 3),
            (32, 8, 1),
            (32, 8, 2),
            (48, 4, 1),
            (48, 8, 1),
            (64, 4, 1),
        ]
    } else {
        &[(16, 4, 1), (16, 4, 2), (24, 4, 1), (24, 8, 1)]
    };
    let all_policy_algos = [
        Algo::DownUp { release: true },
        Algo::DownUp { release: false },
        Algo::LTurn { release: true },
        Algo::LTurn { release: false },
    ];
    let m1_only_algos = [Algo::UpDownBfs, Algo::UpDownDfs];

    let mut cells = 0u32;
    let mut failed = 0u32;
    let mut warning_findings = 0usize;
    let mut run_cell =
        |topo: &Topology, label: &str, policy: PreorderPolicy, algo: Algo| -> Result<(), String> {
            cells += 1;
            let inst = algo
                .construct(topo, policy, 0)
                .map_err(|e| format!("construction failed for {label}: {e}"))?;
            let report = irnet_verify::lint(&inst.cg, &inst.table);
            let dep = ChannelDepGraph::build(&inst.cg, &inst.table);
            let recheck = irnet_verify::recheck(&report.certificate, &dep);
            let warnings = report
                .findings
                .iter()
                .filter(|f| f.severity == Severity::Warning)
                .count();
            warning_findings += warnings;
            if report.has_errors() || recheck.is_err() {
                failed += 1;
                println!("FAIL {label} policy={policy:?} algo={algo}");
                for f in &report.findings {
                    if f.severity == Severity::Error {
                        println!("  {}: {}", f.code, f.message);
                    }
                }
                if let Err(e) = recheck {
                    println!("  certificate failed independent recheck: {e}");
                }
            } else {
                println!("ok   {label} policy={policy:?} algo={algo} warnings={warnings}");
            }
            Ok(())
        };
    for &(n, ports, seed) in topos {
        let topo = gen::random_irregular(gen::IrregularParams::paper(n, ports), seed)
            .map_err(|e| format!("generation failed: {e}"))?;
        let label = format!("switches={n} ports={ports} seed={seed}");
        for policy in PreorderPolicy::ALL {
            for &algo in &all_policy_algos {
                run_cell(&topo, &label, policy, algo)?;
            }
        }
        for &algo in &m1_only_algos {
            run_cell(&topo, &label, PreorderPolicy::M1, algo)?;
        }
    }

    match negative_control() {
        Ok(len) => println!(
            "negative control: printed \u{a7}4.3 PT list rejected \
             (IRNET-E001, minimized witness length {len})"
        ),
        Err(e) => {
            failed += 1;
            println!("FAIL negative control: {e}");
        }
    }
    println!(
        "lint grid: {cells} cells, {} clean, {failed} failed, \
         {warning_findings} warning finding(s)",
        cells - failed.min(cells)
    );
    if failed > 0 {
        exit::finding()
    }
    Ok(())
}

/// The five-switch counterexample under the paper's printed (erroneous)
/// §4.3 prohibited-turn list must fail certification with a short witness.
fn negative_control() -> Result<usize, String> {
    use irnet_core::phase2::PROHIBITED_TURNS_AS_PRINTED;
    let topo = Topology::new(
        5,
        4,
        [(0, 1), (0, 2), (0, 3), (1, 4), (2, 3), (2, 4), (3, 4)],
    )
    .map_err(|e| format!("counterexample topology: {e}"))?;
    let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0)
        .map_err(|e| format!("counterexample tree: {e}"))?;
    let cg = CommGraph::build(&topo, &tree);
    let printed =
        TurnTable::from_direction_rule(&cg, |a, b| !PROHIBITED_TURNS_AS_PRINTED.contains(&(a, b)));
    let report = irnet_verify::lint(&cg, &printed);
    let dep = ChannelDepGraph::build(&cg, &printed);
    irnet_verify::recheck(&report.certificate, &dep)
        .map_err(|e| format!("witness failed recheck: {e}"))?;
    match &report.certificate.verdict {
        Verdict::DeadlockFree { .. } => {
            Err("printed PT list was incorrectly certified deadlock-free".to_string())
        }
        Verdict::Deadlock { witness } if witness.len() > 6 => Err(format!(
            "witness not minimized: length {} > 6",
            witness.len()
        )),
        Verdict::Deadlock { witness } => Ok(witness.len()),
    }
}

fn cmd_routes(o: &Opts) -> Result<(), String> {
    let topo = load_topology(o)?;
    let inst = build_instance(o, &topo)?;
    println!(
        "avg route length: {:.3}",
        inst.tables.avg_route_len(&inst.cg)
    );
    println!("max route length: {}", inst.tables.max_route_len(&inst.cg));
    let n = topo.num_nodes();
    let (s, t) = (0u32, n - 1);
    let route = inst.tables.route(&inst.cg, s, t);
    let ch = inst.cg.channels();
    print!("sample route {s} -> {t}: {s}");
    for &c in &route {
        print!(" -({})-> {}", inst.cg.direction(c), ch.sink(c));
    }
    println!();
    Ok(())
}

fn sim_config(o: &Opts) -> SimConfig {
    let default = SimConfig::default();
    SimConfig {
        packet_len: o.parse("packet-len", 128u32),
        injection_rate: o.parse("rate", 0.1f64),
        warmup_cycles: o.parse("warmup", 2_000u32),
        measure_cycles: o.parse("measure", 8_000u32),
        virtual_channels: o.parse("vcs", 1u32),
        deadlock_threshold: o.parse("watchdog", default.deadlock_threshold),
        ..default
    }
}

fn cmd_simulate(o: &Opts) -> Result<(), String> {
    let topo = load_topology(o)?;
    let inst = build_instance(o, &topo)?;
    let cfg = sim_config(o);
    let stats = Simulator::new(&inst.cg, &inst.tables, cfg, o.parse("sim-seed", 7u64))
        .run_with_telemetry(&irnet_telemetry::global());
    let m = PaperMetrics::compute(&stats, &inst.cg, &inst.tree);
    println!(
        "offered load     : {:.4} flits/clock/node",
        cfg.injection_rate
    );
    println!(
        "accepted traffic : {:.4} flits/clock/node",
        m.accepted_traffic
    );
    println!("avg latency      : {:.1} clocks", m.avg_latency);
    println!("node utilization : {:.6}", m.node_utilization);
    println!(
        "traffic load     : {:.6} (stddev of node utilization)",
        m.traffic_load
    );
    println!("hot spot degree  : {:.2} % (levels 0-1)", m.hot_spot_degree);
    println!("leaf utilization : {:.6}", m.leaf_utilization);
    println!("packets delivered: {}", stats.packets_delivered);
    if stats.deadlocked {
        return Err(format!(
            "simulation aborted by the deadlock watchdog: no progress since \
             cycle {} ({} flits stranded in the network)",
            stats.last_progress, stats.flits_in_flight
        ));
    }
    Ok(())
}

/// Static analysis: fabric statistics, then the feasibility oracle
/// (optionally through `--scenario`), then the four whole-table audits on
/// the surviving fabric. Exits 1 when the target is infeasible or an audit
/// errors; `--grid` sweeps the lint seed grids instead.
fn cmd_analyze(o: &Opts) -> Result<(), String> {
    use irnet_analyze::{analyze_faulted, audit, AnalysisReport, Feasibility};
    use irnet_topology::FaultPlan;

    if o.flag("grid") {
        return analyze_grid(o);
    }
    let topo = load_topology(o)?;
    let algo = parse_algo(o);
    let policy = parse_policy(o);
    let target = match o.get("topology") {
        Some(path) => format!("topology={path} algo={algo} policy={policy:?}"),
        None => format!(
            "switches={} ports={} seed={} algo={algo} policy={policy:?}",
            o.parse("switches", 64u32),
            o.parse("ports", 4u32),
            o.parse("seed", 1u64)
        ),
    };
    let plan = match o.get("scenario") {
        Some(path) => {
            let raw =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            FaultPlan::from_json(&raw).map_err(|e| format!("{path}: {e}"))?
        }
        None => FaultPlan::scripted([]),
    };
    let feasibility = analyze_faulted(&topo, &plan).map_err(|e| format!("fault plan: {e}"))?;
    let report = match &feasibility {
        Feasibility::Infeasible(_) => AnalysisReport {
            target,
            feasibility,
            audit: None,
        },
        Feasibility::Feasible(_) => {
            // Audit the surviving fabric (compacted when faults applied).
            let degraded;
            let audit_topo = if plan.is_empty() {
                &topo
            } else {
                degraded = topo
                    .degrade(&plan)
                    .map_err(|e| format!("degrade failed after a feasible verdict: {e}"))?;
                &degraded
            };
            let inst = algo
                .construct(audit_topo, policy, o.parse("seed", 1u64))
                .map_err(|e| format!("construction failed: {e}"))?;
            let cert = irnet_verify::certify(&inst.cg, &inst.table);
            AnalysisReport {
                target,
                feasibility,
                audit: Some(audit(&inst.cg, &inst.table, &inst.tables, &cert)),
            }
        }
    };
    if o.flag("json") {
        println!("{}", report.to_json());
    } else {
        print_fabric_stats(o, &topo)?;
        print_analysis(&report);
    }
    if !report.passed() {
        exit::finding()
    }
    Ok(())
}

/// Human-readable half of an [`irnet_analyze::AnalysisReport`].
fn print_analysis(report: &irnet_analyze::AnalysisReport) {
    match &report.feasibility {
        irnet_analyze::Feasibility::Feasible(w) => println!(
            "feasibility         : feasible (up*/down* numbering over {} \
             switches / {} channels, root {})",
            w.alive_nodes, w.alive_channels, w.root
        ),
        irnet_analyze::Feasibility::Infeasible(obs) => {
            println!("feasibility         : INFEASIBLE — {obs}");
        }
    }
    let Some(a) = &report.audit else { return };
    println!(
        "audits              : {} ({} finding(s))",
        if a.passed() { "passed" } else { "FAILED" },
        a.findings.len()
    );
    for f in &a.findings {
        println!("  {}: {}", f.code, f.message);
    }
    println!(
        "stretch             : max {:.2}x, mean {:.3}x over {} pairs",
        a.stretch.max, a.stretch.mean, a.stretch.pairs
    );
    println!(
        "prohibited turns    : {} total, {} redundant (releasable)",
        a.prohibited_turns, a.redundant_prohibitions
    );
}

/// Oracle + audits over the same seed grids as `lint --quick` / `--full`.
fn analyze_grid(o: &Opts) -> Result<(), String> {
    use irnet_analyze::{analyze_topology, audit, Feasibility, SCHEMA};

    let topos: &[(u32, u32, u64)] = if o.flag("full") {
        &[
            (32, 4, 1),
            (32, 4, 2),
            (32, 4, 3),
            (32, 8, 1),
            (32, 8, 2),
            (48, 4, 1),
            (48, 8, 1),
            (64, 4, 1),
        ]
    } else {
        &[(16, 4, 1), (16, 4, 2), (24, 4, 1), (24, 8, 1)]
    };
    let all_policy_algos = [
        Algo::DownUp { release: true },
        Algo::DownUp { release: false },
        Algo::LTurn { release: true },
        Algo::LTurn { release: false },
    ];
    let m1_only_algos = [Algo::UpDownBfs, Algo::UpDownDfs];

    let mut cells = 0u32;
    let mut failed = 0u32;
    let mut oracle_failed = 0u32;
    let mut warning_findings = 0usize;
    let mut results: Vec<Value> = Vec::new();
    let json = o.flag("json");
    {
        let mut run_cell = |topo: &Topology,
                            label: &str,
                            policy: PreorderPolicy,
                            algo: Algo|
         -> Result<(), String> {
            cells += 1;
            let target = format!("{label} policy={policy:?} algo={algo}");
            let inst = algo
                .construct(topo, policy, 0)
                .map_err(|e| format!("construction failed for {target}: {e}"))?;
            let cert = irnet_verify::certify(&inst.cg, &inst.table);
            let report = audit(&inst.cg, &inst.table, &inst.tables, &cert);
            let warnings = report
                .findings
                .iter()
                .filter(|f| f.severity == Severity::Warning)
                .count();
            warning_findings += warnings;
            if report.passed() {
                if !json {
                    println!("ok   {target} warnings={warnings}");
                }
            } else {
                failed += 1;
                println!("FAIL {target}");
                for f in &report.findings {
                    if f.severity == Severity::Error {
                        println!("  {}: {}", f.code, f.message);
                    }
                }
            }
            results.push(Value::Map(vec![
                ("target".to_string(), Value::Str(target)),
                ("passed".to_string(), Value::Bool(report.passed())),
                ("warnings".to_string(), Value::U64(warnings as u64)),
            ]));
            Ok(())
        };
        for &(n, ports, seed) in topos {
            let topo = gen::random_irregular(gen::IrregularParams::paper(n, ports), seed)
                .map_err(|e| format!("generation failed: {e}"))?;
            let label = format!("switches={n} ports={ports} seed={seed}");
            match analyze_topology(&topo) {
                Feasibility::Feasible(w) => {
                    if !json {
                        println!(
                            "oracle {label}: feasible ({} switches / {} channels)",
                            w.alive_nodes, w.alive_channels
                        );
                    }
                }
                Feasibility::Infeasible(obs) => {
                    oracle_failed += 1;
                    println!("FAIL oracle {label}: {obs}");
                }
            }
            for policy in PreorderPolicy::ALL {
                for &algo in &all_policy_algos {
                    run_cell(&topo, &label, policy, algo)?;
                }
            }
            for &algo in &m1_only_algos {
                run_cell(&topo, &label, PreorderPolicy::M1, algo)?;
            }
        }
    }
    failed += oracle_failed;
    if json {
        let grid = Value::Map(vec![
            ("schema".to_string(), Value::Str(SCHEMA.to_string())),
            ("cells".to_string(), Value::U64(u64::from(cells))),
            ("failed".to_string(), Value::U64(u64::from(failed))),
            ("results".to_string(), Value::Seq(results)),
        ]);
        println!(
            "{}",
            serde_json::to_string_pretty(&grid).unwrap_or_default()
        );
    } else {
        println!(
            "analyze grid: {cells} cells, {} clean, {failed} failed, \
             {warning_findings} warning finding(s)",
            cells - failed.min(cells)
        );
    }
    if failed > 0 {
        exit::finding()
    }
    Ok(())
}

/// The original `analyze` fabric statistics (kept verbatim: scripts parse
/// these lines).
fn print_fabric_stats(o: &Opts, topo: &Topology) -> Result<(), String> {
    use irnet_topology::analysis;
    let deg = analysis::degree_stats(topo);
    let dist = analysis::distance_stats(topo);
    let cuts = analysis::articulation_points(topo);
    println!(
        "switches / links    : {} / {}",
        topo.num_nodes(),
        topo.num_links()
    );
    println!(
        "degree min/mean/max : {} / {:.2} / {}",
        deg.min, deg.mean, deg.max
    );
    println!("mean distance       : {:.3} hops", dist.mean);
    println!("diameter            : {} hops", dist.diameter);
    println!(
        "articulation points : {} {}",
        cuts.len(),
        if cuts.is_empty() {
            "(2-connected: survives any single-switch failure)".to_string()
        } else {
            format!("{cuts:?}")
        }
    );
    let tree = irnet_topology::CoordinatedTree::build(topo, parse_policy(o), o.parse("seed", 1))
        .map_err(|e| format!("tree construction failed: {e}"))?;
    let lvl = analysis::level_profile(topo, &tree);
    println!(
        "tree levels         : {:?} switches per level",
        lvl.population
    );
    println!("tree leaves         : {} total", tree.leaves().len());
    println!(
        "cross links         : {:.1} % of links ({} same-level)",
        100.0 * lvl.cross_link_fraction,
        lvl.same_level_cross_links
    );
    Ok(())
}

fn cmd_sweep(o: &Opts) -> Result<(), String> {
    let topo = load_topology(o)?;
    let inst = build_instance(o, &topo)?;
    let base = SimConfig {
        packet_len: o.parse("packet-len", 128u32),
        warmup_cycles: o.parse("warmup", 2_000u32),
        measure_cycles: o.parse("measure", 8_000u32),
        virtual_channels: o.parse("vcs", 1u32),
        ..SimConfig::default()
    };
    let rates: Vec<f64> = match o.get("rates") {
        Some(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| fail("invalid --rates element"))
            })
            .collect(),
        None => sweep::default_rates(8),
    };
    let seed: u64 = o.parse("sim-seed", 7u64);
    let backend = o.get("backend").unwrap_or("flit");
    if !matches!(backend, "flit" | "flow") {
        fail(&format!(
            "unknown backend {backend:?} (expected flit or flow)"
        ));
    }
    let tel = irnet_telemetry::global();
    let progress = o
        .flag("progress")
        .then(|| Progress::new(&format!("sweep[{backend}]"), rates.len(), progress_mode(o)));
    // The leading header line carries the backend so flow and flit CSVs
    // are never silently interchangeable.
    println!("# backend={backend}");
    match backend {
        "flit" => {
            // Run point by point (seeded exactly as `sweep::sweep` would)
            // so `--progress` can report between operating points.
            let points: Vec<_> = rates
                .iter()
                .enumerate()
                .map(|(i, &rate)| {
                    let p =
                        sweep::run_point_with(&inst, &base, rate, sweep::point_seed(seed, i), &tel);
                    if let Some(prog) = &progress {
                        prog.tick(i + 1);
                    }
                    p
                })
                .collect();
            let curve = sweep::SweepCurve { points };
            println!("offered,accepted,latency,node_util,hot_spot_pct,deadlocked");
            for p in &curve.points {
                println!(
                    "{:.5},{:.5},{:.2},{:.5},{:.2},{}",
                    p.offered,
                    p.metrics.accepted_traffic,
                    p.metrics.avg_latency,
                    p.metrics.node_utilization,
                    p.metrics.hot_spot_degree,
                    p.deadlocked
                );
            }
            for p in &curve.points {
                if p.deadlocked {
                    eprintln!(
                        "!! offered load {:.4} deadlocked (no progress since cycle {})",
                        p.offered, p.stall_cycle
                    );
                }
            }
            eprintln!(
                "max throughput {:.4} flits/clock/node at offered {:.4}",
                curve.max_throughput(),
                curve.saturation().offered
            );
        }
        "flow" => {
            let cfg = irnet_flow::FlowConfig::default();
            let start = std::time::Instant::now();
            let mut pred = irnet_flow::FlowPredictor::build_instrumented(
                &topo,
                &inst.tree,
                &inst.cg,
                &inst.table,
                &base,
                seed,
                &cfg,
                &tel,
            );
            if let Some(prog) = &progress {
                prog.message(&format!(
                    "sweep[{backend}]: predictor built (decompose + saturation probe), \
                     elapsed {:.1}s",
                    start.elapsed().as_secs_f64()
                ));
            }
            let points: Vec<_> = rates
                .iter()
                .enumerate()
                .map(|(i, &rate)| {
                    let p = pred.point(rate);
                    if let Some(prog) = &progress {
                        prog.tick(i + 1);
                    }
                    p
                })
                .collect();
            println!("offered,accepted,latency_mean,latency_median,latency_p99,saturated");
            for p in &points {
                println!(
                    "{:.5},{:.5},{:.2},{:.2},{:.2},{}",
                    p.offered,
                    p.accepted,
                    p.mean_latency,
                    p.median_latency,
                    p.p99_latency,
                    p.saturated
                );
            }
            eprintln!(
                "predicted saturation throughput {:.4} flits/clock/node \
                 ({} representative sims)",
                pred.saturation(),
                pred.sims_run()
            );
        }
        other => unreachable!("backend {other:?} validated above"),
    }
    Ok(())
}

fn cmd_export(o: &Opts) -> Result<(), String> {
    let topo = load_topology(o)?;
    let inst = build_instance(o, &topo)?;
    let text = irnet_turns::export_tables(&inst.cg, &inst.tables);
    match o.get("out") {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!(
                "wrote {path}: forwarding tables for {} switches ({} bytes)",
                topo.num_nodes(),
                text.len()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_render(o: &Opts) -> Result<(), String> {
    use irnet_metrics::netplot::{render_network, NetPlotOptions};
    let topo = load_topology(o)?;
    let inst = build_instance(o, &topo)?;
    let cfg = sim_config(o);
    let stats = Simulator::new(&inst.cg, &inst.tables, cfg, o.parse("sim-seed", 7u64)).run();
    let svg = render_network(
        &topo,
        &inst.tree,
        &inst.cg,
        Some(&stats),
        NetPlotOptions::default(),
    );
    match o.get("out") {
        Some(path) => {
            std::fs::write(path, &svg).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote {path} ({} bytes)", svg.len());
        }
        None => print!("{svg}"),
    }
    Ok(())
}

fn cmd_replay(o: &Opts) -> Result<(), String> {
    use irnet_sim::{replay, Trace};
    let topo = load_topology(o)?;
    let inst = build_instance(o, &topo)?;
    let trace = match o.get("trace") {
        Some(path) => {
            let raw =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            // JSONL traces are recognised by extension or by shape (every
            // JSONL record opens with '{'; CSV never does).
            let jsonl = path.ends_with(".jsonl") || raw.trim_start().starts_with('{');
            if jsonl {
                Trace::from_jsonl(&raw, topo.num_nodes())
                    .map_err(|e| format!("invalid trace in {path}: {e}"))?
            } else {
                Trace::from_csv(&raw, topo.num_nodes())
                    .map_err(|e| format!("invalid trace in {path}: {e}"))?
            }
        }
        None => Trace::synthetic_uniform(
            topo.num_nodes(),
            o.parse("trace-packets", 500u32),
            o.parse("trace-span", 4_000u32),
            o.parse("seed", 1u64),
        ),
    };
    let cfg = SimConfig {
        packet_len: o.parse("packet-len", 128u32),
        warmup_cycles: 0,
        measure_cycles: u32::MAX / 2,
        virtual_channels: o.parse("vcs", 1u32),
        ..SimConfig::default()
    };
    let result = replay(
        &inst.cg,
        &inst.tables,
        cfg,
        &trace,
        o.parse("sim-seed", 7u64),
        10_000_000,
    );
    println!("packets          : {}", trace.len());
    match result.makespan {
        Some(m) => println!("makespan         : {m} clocks"),
        None => return Err("network failed to drain the trace".to_string()),
    }
    println!(
        "avg latency      : {:.1} clocks",
        result.stats.avg_latency()
    );
    if let Some(p99) = result.stats.latency_quantile(0.99) {
        println!("p99 latency      : {p99} clocks");
    }
    Ok(())
}

/// Degrade → repair → certify → simulate: the robustness pipeline.
/// Version-2 scenarios make it bidirectional — recovery transitions run
/// through the same feasibility gate, repair, and certification as fault
/// transitions, with `--hold` flap damping between the two.
fn cmd_faults(o: &Opts) -> Result<(), String> {
    use irnet_core::{plan_epochs_timeline_instrumented, DownUp, RepairStrategy};
    use irnet_sim::FaultEpoch;
    use irnet_topology::{DampingPolicy, FaultKind, FaultPlan, RecoveryTimeline};
    use irnet_verify::certify_transition;

    let strategy = match o.get("repair") {
        None => RepairStrategy::Full,
        Some(raw) => RepairStrategy::parse(raw).unwrap_or_else(|| {
            fail(&format!(
                "invalid --repair value {raw:?} (full|incremental)"
            ))
        }),
    };
    if let Some(algo) = o.get("algo") {
        if algo != "downup" {
            return Err(format!(
                "the fault pipeline repairs with the DOWN/UP builder; \
                 --algo {algo} is not supported"
            ));
        }
    }
    let topo = load_topology(o)?;
    let builder = DownUp::new()
        .policy(parse_policy(o))
        .seed(o.parse("seed", 1u64));
    let routing = builder
        .construct(&topo)
        .map_err(|e| format!("construction failed: {e}"))?;
    let cfg = sim_config(o);
    let plan = match o.get("scenario") {
        Some(path) => {
            let raw =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            FaultPlan::from_json(&raw).map_err(|e| format!("{path}: {e}"))?
        }
        None => {
            let links = o.parse("random-links", 1u32);
            let switches = o.parse("random-switches", 0u32);
            let lo = cfg.warmup_cycles;
            let hi = lo.saturating_add(o.parse("fault-window", cfg.measure_cycles / 2));
            FaultPlan::random(
                &topo,
                links,
                switches,
                (lo, hi),
                o.parse("fault-seed", 13u64),
            )
            .map_err(|e| format!("random fault plan: {e}"))?
        }
    };
    if plan.is_empty() {
        return Err("the fault plan contains no events".to_string());
    }
    // Expand the plan into its damped transition timeline (each step's
    // live set is the original topology minus the elements down at that
    // step, so a recovery shrinks the dead set again), then gate every
    // step through the feasibility oracle before any repair or
    // simulation work is spent. The oracle answers in milliseconds, so a
    // hopeless scenario is reported here, with its step cycle.
    let policy = match o.parse("hold", 0u32) {
        0 => DampingPolicy::none(),
        hold => DampingPolicy::hold(hold),
    };
    let timeline =
        RecoveryTimeline::compute(&topo, &plan, policy).map_err(|e| format!("fault plan: {e}"))?;
    for step in &timeline.steps {
        let verdict = irnet_analyze::analyze_masks(&topo, &step.node_down, &step.link_down);
        if let irnet_analyze::Feasibility::Infeasible(obstruction) = verdict {
            if o.flag("json") {
                let report = Value::Map(vec![
                    ("plan".to_string(), plan.to_value()),
                    ("feasible".to_string(), Value::Bool(false)),
                    (
                        "infeasible_at_cycle".to_string(),
                        Value::U64(u64::from(step.cycle)),
                    ),
                    ("obstruction".to_string(), obstruction.to_value()),
                ]);
                println!(
                    "{}",
                    serde_json::to_string_pretty(&report).unwrap_or_default()
                );
            }
            return Err(format!(
                "feasibility gate: the network degraded at cycle {} is \
                 provably unroutable ({obstruction}); skipping repair and \
                 simulation",
                step.cycle
            ));
        }
    }
    let cg = routing.comm_graph();
    let tel = irnet_telemetry::global();
    let repair_progress = o
        .flag("progress")
        .then(|| Progress::new("faults", timeline.steps.len(), progress_mode(o)).unit("epochs"));
    let epochs = plan_epochs_timeline_instrumented(
        &topo,
        cg,
        routing.turn_table(),
        routing.routing_tables(),
        &timeline,
        builder,
        strategy,
        &tel,
        repair_progress.as_ref(),
    )
    .map_err(|e| format!("fault repair failed: {e}"))?;
    let nch = cg.num_channels() as usize;
    let certs: Vec<_> = epochs
        .iter()
        .map(|e| {
            let mut dead = vec![false; nch];
            for &c in &e.epoch.dead_channels {
                dead[c as usize] = true;
            }
            certify_transition(cg, &e.epoch.old_table, &e.epoch.new_table, &dead)
        })
        .collect();
    let mut sim = Simulator::new(cg, routing.routing_tables(), cfg, o.parse("sim-seed", 7u64));
    for e in &epochs {
        sim.schedule_reconfig(FaultEpoch {
            cycle: e.epoch.cycle,
            dead_channels: e.epoch.dead_channels.clone(),
            dead_nodes: e.epoch.dead_nodes.clone(),
            revived_channels: e.epoch.revived_channels.clone(),
            revived_nodes: e.epoch.revived_nodes.clone(),
            tables: &e.epoch.tables,
        });
    }
    let sim_start = std::time::Instant::now();
    let stalled = sim.run_in_place();
    let sim_wall = sim_start.elapsed().as_secs_f64();
    let incident = stalled.then(|| irnet_obs::deadlock_incident(&sim));
    let stats = sim.finish_with(stalled);
    irnet_sim::record_run_telemetry(&tel, &stats, sim_wall);
    let all_certified = certs
        .iter()
        .all(irnet_verify::EpochCertificates::is_deadlock_free);

    if o.flag("json") {
        let epoch_values: Vec<Value> = epochs
            .iter()
            .zip(&certs)
            .zip(&timeline.steps)
            .map(|((e, c), step)| {
                let s = &e.spans;
                let repair = Value::Map(vec![
                    (
                        "strategy".to_string(),
                        Value::Str(strategy.name().to_string()),
                    ),
                    (
                        "classify_seconds".to_string(),
                        Value::F64(s.classify_seconds),
                    ),
                    ("phases_seconds".to_string(), Value::F64(s.phases_seconds)),
                    ("patch_seconds".to_string(), Value::F64(s.patch_seconds)),
                    (
                        "recertify_seconds".to_string(),
                        Value::F64(s.recertify_seconds),
                    ),
                    ("total_seconds".to_string(), Value::F64(s.total_seconds())),
                    (
                        "touched_switches".to_string(),
                        Value::U64(u64::from(s.touched_switches)),
                    ),
                    ("touched_rows".to_string(), Value::U64(s.touched_rows)),
                    (
                        "tree_link_faults".to_string(),
                        Value::U64(u64::from(s.tree_link_faults)),
                    ),
                    (
                        "cross_link_faults".to_string(),
                        Value::U64(u64::from(s.cross_link_faults)),
                    ),
                    (
                        "leaf_switch_faults".to_string(),
                        Value::U64(u64::from(s.leaf_switch_faults)),
                    ),
                    (
                        "internal_switch_faults".to_string(),
                        Value::U64(u64::from(s.internal_switch_faults)),
                    ),
                    (
                        "patched_in_place".to_string(),
                        Value::Bool(s.patched_in_place),
                    ),
                    (
                        "recertified".to_string(),
                        s.recertified.map_or(Value::Null, Value::Bool),
                    ),
                ]);
                Value::Map(vec![
                    ("cycle".to_string(), Value::U64(u64::from(e.epoch.cycle))),
                    (
                        "direction".to_string(),
                        Value::Str(step_direction(step).to_string()),
                    ),
                    ("dead_links".to_string(), ids(&e.epoch.dead_links)),
                    ("dead_switches".to_string(), ids(&e.epoch.dead_nodes)),
                    ("dead_channels".to_string(), ids(&e.epoch.dead_channels)),
                    ("revived_switches".to_string(), ids(&e.epoch.revived_nodes)),
                    (
                        "revived_channels".to_string(),
                        ids(&e.epoch.revived_channels),
                    ),
                    (
                        "flipped_channels".to_string(),
                        ids(&e.epoch.flipped_channels),
                    ),
                    ("repair".to_string(), repair),
                    ("certificates".to_string(), c.to_value()),
                    ("certified".to_string(), Value::Bool(c.is_deadlock_free())),
                ])
            })
            .collect();
        let report = Value::Map(vec![
            ("plan".to_string(), plan.to_value()),
            (
                "repair_strategy".to_string(),
                Value::Str(strategy.name().to_string()),
            ),
            ("epochs".to_string(), Value::Seq(epoch_values)),
            (
                "simulation".to_string(),
                Value::Map(vec![
                    (
                        "packets_delivered".to_string(),
                        Value::U64(stats.packets_delivered),
                    ),
                    (
                        "packets_generated".to_string(),
                        Value::U64(stats.packets_generated),
                    ),
                    ("dropped_flits".to_string(), Value::U64(stats.dropped_flits)),
                    (
                        "dropped_packets".to_string(),
                        Value::U64(stats.dropped_packets),
                    ),
                    (
                        "reconfig_epochs".to_string(),
                        Value::U64(u64::from(stats.reconfig_epochs)),
                    ),
                    (
                        "accepted_traffic".to_string(),
                        Value::F64(stats.accepted_traffic()),
                    ),
                    ("avg_latency".to_string(), Value::F64(stats.avg_latency())),
                    ("deadlocked".to_string(), Value::Bool(stats.deadlocked)),
                    (
                        "last_progress".to_string(),
                        Value::U64(u64::from(stats.last_progress)),
                    ),
                    (
                        "flits_injected_total".to_string(),
                        Value::U64(stats.flits_injected_total),
                    ),
                    (
                        "flits_delivered_total".to_string(),
                        Value::U64(stats.flits_delivered_total),
                    ),
                    (
                        "flits_in_flight".to_string(),
                        Value::U64(stats.flits_in_flight),
                    ),
                    (
                        "flits_conserved".to_string(),
                        Value::Bool(stats.flits_conserved()),
                    ),
                ]),
            ),
            ("damping".to_string(), damping_value(&timeline)),
            ("certified".to_string(), Value::Bool(all_certified)),
        ]);
        // The vendored serializer is infallible on value trees.
        println!(
            "{}",
            serde_json::to_string_pretty(&report).unwrap_or_default()
        );
    } else {
        println!(
            "fault plan       : {} event(s), {} epoch(s)",
            plan.events().len(),
            epochs.len()
        );
        for ev in plan.events() {
            let what = match ev.kind {
                FaultKind::Link { a, b } => format!("link {a}-{b}"),
                FaultKind::Switch { node } => format!("switch {node}"),
            };
            let recovery = match (ev.recovers_at, ev.flap) {
                (Some(up), Some(f)) => {
                    format!(", recovers at {up} (flaps every {} x{})", f.period, f.count)
                }
                (Some(up), None) => format!(", recovers at {up}"),
                _ => String::new(),
            };
            println!("  cycle {:>6}: {what} dies{recovery}", ev.cycle);
        }
        println!("repair strategy  : {}", strategy.name());
        for ((e, c), step) in epochs.iter().zip(&certs).zip(&timeline.steps) {
            println!(
                "epoch @{:<8}: {} — {} dead link(s), {} dead switch(es), \
                 {} revived channel(s), {} flipped channel(s)",
                e.epoch.cycle,
                step_direction(step),
                e.epoch.dead_links.len(),
                e.epoch.dead_nodes.len(),
                e.epoch.revived_channels.len(),
                e.epoch.flipped_channels.len()
            );
            let s = &e.spans;
            println!(
                "  repair         : {:.3} ms (classify {:.3} + phases {:.3} + \
                 patch {:.3} + recertify {:.3}), {} switch(es) / {} row(s) touched, {}",
                s.total_seconds() * 1e3,
                s.classify_seconds * 1e3,
                s.phases_seconds * 1e3,
                s.patch_seconds * 1e3,
                s.recertify_seconds * 1e3,
                s.touched_switches,
                s.touched_rows,
                if s.patched_in_place {
                    "patched in place"
                } else {
                    "rebuilt"
                }
            );
            println!("  degraded table : {}", verdict_line(&c.degraded));
            println!("  old∪new union  : {}", verdict_line(&c.union));
        }
        println!("packets delivered: {}", stats.packets_delivered);
        println!(
            "dropped          : {} flit(s) in {} packet(s)",
            stats.dropped_flits, stats.dropped_packets
        );
        println!("reconfig epochs  : {}", stats.reconfig_epochs);
        if plan.has_recovery() {
            println!(
                "flap damping     : {} raw transition(s) -> {} admitted epoch(s), \
                 {} suppressed re-admission(s)",
                timeline.raw_transitions,
                timeline.steps.len(),
                timeline.suppressed_ups()
            );
        }
        println!(
            "flit conservation: {} (injected {} = delivered {} + dropped {} + in flight {})",
            if stats.flits_conserved() {
                "exact"
            } else {
                "VIOLATED"
            },
            stats.flits_injected_total,
            stats.flits_delivered_total,
            stats.dropped_flits,
            stats.flits_in_flight
        );
        println!(
            "accepted traffic : {:.4} flits/clock/node",
            stats.accepted_traffic()
        );
    }
    if stats.deadlocked {
        if let Some(incident) = &incident {
            write_incident(o, incident)?;
        }
        return Err(format!(
            "simulation aborted by the deadlock watchdog: no progress since \
             cycle {} ({} flits stranded in the network)",
            stats.last_progress, stats.flits_in_flight
        ));
    }
    if !all_certified {
        return Err(
            "a reconfiguration epoch failed certification (witness in the report above)"
                .to_string(),
        );
    }
    if !stats.flits_conserved() {
        return Err(format!(
            "flit conservation violated: injected {} != delivered {} + dropped {} + in flight {}",
            stats.flits_injected_total,
            stats.flits_delivered_total,
            stats.dropped_flits,
            stats.flits_in_flight
        ));
    }
    Ok(())
}

/// Seeded chaos soak: draw a randomized fault/recovery plan against the
/// topology, gate every step of the damped timeline through the
/// feasibility oracle, repair and certify every epoch in both directions,
/// simulate through all the swaps, and enforce the soak invariants —
/// feasibility, certification, exact flit conservation, and watchdog
/// liveness. The JSON report contains only integers, booleans, and
/// strings, so it is byte-stable for a fixed seed set.
fn cmd_soak(o: &Opts) -> Result<(), String> {
    use irnet_core::{plan_epochs_timeline_with, DownUp, RepairStrategy};
    use irnet_sim::FaultEpoch;
    use irnet_topology::{chaos_plan_filtered, ChaosParams, DampingPolicy, RecoveryTimeline};
    use irnet_verify::certify_transition;

    if let Some(algo) = o.get("algo") {
        if algo != "downup" {
            return Err(format!(
                "the soak harness repairs with the DOWN/UP builder; \
                 --algo {algo} is not supported"
            ));
        }
    }
    let strategy = match o.get("repair") {
        None => RepairStrategy::Incremental,
        Some(raw) => RepairStrategy::parse(raw).unwrap_or_else(|| {
            fail(&format!(
                "invalid --repair value {raw:?} (full|incremental)"
            ))
        }),
    };
    let topo = load_topology(o)?;
    let builder = DownUp::new()
        .policy(parse_policy(o))
        .seed(o.parse("seed", 1u64));
    let routing = builder
        .construct(&topo)
        .map_err(|e| format!("construction failed: {e}"))?;
    let cfg = sim_config(o);
    let hold = o.parse("hold", 300u32);
    let policy = match hold {
        0 => DampingPolicy::none(),
        h => DampingPolicy::hold(h),
    };
    let chaos_seed = o.parse("chaos-seed", 42u64);
    let sim_seed = o.parse("sim-seed", 7u64);
    // Chaos window inside the configured run: activations start after
    // warm-up, outages are short enough that several recoveries land
    // before the measurement window closes.
    let lo = cfg.warmup_cycles.max(100);
    let hi = lo.saturating_add((cfg.measure_cycles / 2).max(100));
    let outage_hi = (cfg.measure_cycles / 4).max(200);
    let params = ChaosParams {
        events: o.parse("events", 6u32),
        window: (lo, hi),
        outage: ((outage_hi / 4).max(100), outage_hi),
        ..ChaosParams::default()
    };
    // The chaos generator keeps a trial event only if the whole candidate
    // plan both survives (stays connected at every damped step — checked
    // inside the generator) and certifies: every repaired epoch's degraded
    // table AND its old∪new union must prove deadlock-free. The union gate
    // matters — a swap between two sufficiently different DOWN/UP
    // orientations can deadlock the in-flight worms even though both
    // steady states are safe, and such plans must never enter a soak.
    let cg = routing.comm_graph();
    let nch = cg.num_channels() as usize;
    let certifies = |plan: &irnet_topology::FaultPlan| -> bool {
        let Ok(timeline) = RecoveryTimeline::compute(&topo, plan, policy) else {
            return false;
        };
        let Ok(epochs) = plan_epochs_timeline_with(
            &topo,
            cg,
            routing.turn_table(),
            routing.routing_tables(),
            &timeline,
            builder,
            strategy,
        ) else {
            return false;
        };
        epochs.iter().all(|e| {
            let mut dead = vec![false; nch];
            for &c in &e.epoch.dead_channels {
                dead[c as usize] = true;
            }
            certify_transition(cg, &e.epoch.old_table, &e.epoch.new_table, &dead).is_deadlock_free()
        })
    };
    let plan = chaos_plan_filtered(&topo, &params, policy, chaos_seed, certifies)
        .map_err(|e| format!("chaos plan: {e}"))?;
    let timeline =
        RecoveryTimeline::compute(&topo, &plan, policy).map_err(|e| format!("chaos plan: {e}"))?;

    // Invariant 1 — feasibility: the chaos generator only accepts events
    // whose damped timeline keeps the graph connected, and the oracle
    // independently re-proves every step here.
    let mut infeasible_at: Option<u32> = None;
    let feasible: Vec<bool> = timeline
        .steps
        .iter()
        .map(|step| {
            let ok =
                irnet_analyze::analyze_masks(&topo, &step.node_down, &step.link_down).is_feasible();
            if !ok && infeasible_at.is_none() {
                infeasible_at = Some(step.cycle);
            }
            ok
        })
        .collect();

    let epochs = plan_epochs_timeline_with(
        &topo,
        cg,
        routing.turn_table(),
        routing.routing_tables(),
        &timeline,
        builder,
        strategy,
    )
    .map_err(|e| format!("fault repair failed: {e}"))?;

    // Invariant 2 — certification: every transition, down or up, carries
    // a fresh Dally–Seitz certificate for the degraded table and for the
    // old∪new union the in-flight worms route through.
    let certs: Vec<_> = epochs
        .iter()
        .map(|e| {
            let mut dead = vec![false; nch];
            for &c in &e.epoch.dead_channels {
                dead[c as usize] = true;
            }
            certify_transition(cg, &e.epoch.old_table, &e.epoch.new_table, &dead)
        })
        .collect();
    let all_certified = certs
        .iter()
        .all(irnet_verify::EpochCertificates::is_deadlock_free);

    // Invariants 3 and 4 — conservation and liveness — come out of the
    // simulation. Flap recoveries can land past the configured run, so
    // the horizon extends to cover the last scheduled epoch plus a drain
    // margin; the watchdog still bounds every wait.
    let mut sim = Simulator::new(cg, routing.routing_tables(), cfg, sim_seed);
    for e in &epochs {
        sim.schedule_reconfig(FaultEpoch {
            cycle: e.epoch.cycle,
            dead_channels: e.epoch.dead_channels.clone(),
            dead_nodes: e.epoch.dead_nodes.clone(),
            revived_channels: e.epoch.revived_channels.clone(),
            revived_nodes: e.epoch.revived_nodes.clone(),
            tables: &e.epoch.tables,
        });
    }
    let last_epoch = epochs.iter().map(|e| e.epoch.cycle).max().unwrap_or(0);
    let horizon = cfg.total_cycles().max(last_epoch.saturating_add(1_000));
    let mut stalled = false;
    while sim.now() < horizon {
        sim.tick();
        if sim.stalled() {
            stalled = true;
            break;
        }
    }
    let stats = sim.finish_with(stalled);
    let all_feasible = infeasible_at.is_none();
    let conserved = stats.flits_conserved();
    let passed = all_feasible && all_certified && conserved && !stats.deadlocked;

    let epoch_values: Vec<Value> = epochs
        .iter()
        .zip(&certs)
        .zip(&timeline.steps)
        .zip(&feasible)
        .map(|(((e, c), step), &ok)| {
            Value::Map(vec![
                ("cycle".to_string(), Value::U64(u64::from(e.epoch.cycle))),
                (
                    "direction".to_string(),
                    Value::Str(step_direction(step).to_string()),
                ),
                ("feasible".to_string(), Value::Bool(ok)),
                (
                    "dead_links".to_string(),
                    Value::U64(e.epoch.dead_links.len() as u64),
                ),
                (
                    "dead_switches".to_string(),
                    Value::U64(e.epoch.dead_nodes.len() as u64),
                ),
                (
                    "dead_channels".to_string(),
                    Value::U64(e.epoch.dead_channels.len() as u64),
                ),
                (
                    "revived_switches".to_string(),
                    Value::U64(e.epoch.revived_nodes.len() as u64),
                ),
                (
                    "revived_channels".to_string(),
                    Value::U64(e.epoch.revived_channels.len() as u64),
                ),
                (
                    "flipped_channels".to_string(),
                    Value::U64(e.epoch.flipped_channels.len() as u64),
                ),
                ("touched_rows".to_string(), Value::U64(e.spans.touched_rows)),
                ("certified".to_string(), Value::Bool(c.is_deadlock_free())),
            ])
        })
        .collect();
    let report = Value::Map(vec![
        ("kind".to_string(), Value::Str("soak_report".to_string())),
        ("chaos_seed".to_string(), Value::U64(chaos_seed)),
        ("sim_seed".to_string(), Value::U64(sim_seed)),
        ("hold".to_string(), Value::U64(u64::from(hold))),
        (
            "repair_strategy".to_string(),
            Value::Str(strategy.name().to_string()),
        ),
        (
            "switches".to_string(),
            Value::U64(u64::from(topo.num_nodes())),
        ),
        ("plan".to_string(), plan.to_value()),
        ("damping".to_string(), damping_value(&timeline)),
        ("epochs".to_string(), Value::Seq(epoch_values)),
        (
            "simulation".to_string(),
            Value::Map(vec![
                (
                    "packets_delivered".to_string(),
                    Value::U64(stats.packets_delivered),
                ),
                (
                    "packets_generated".to_string(),
                    Value::U64(stats.packets_generated),
                ),
                ("dropped_flits".to_string(), Value::U64(stats.dropped_flits)),
                (
                    "dropped_packets".to_string(),
                    Value::U64(stats.dropped_packets),
                ),
                (
                    "reconfig_epochs".to_string(),
                    Value::U64(u64::from(stats.reconfig_epochs)),
                ),
                ("deadlocked".to_string(), Value::Bool(stats.deadlocked)),
                (
                    "flits_injected_total".to_string(),
                    Value::U64(stats.flits_injected_total),
                ),
                (
                    "flits_delivered_total".to_string(),
                    Value::U64(stats.flits_delivered_total),
                ),
                (
                    "flits_in_flight".to_string(),
                    Value::U64(stats.flits_in_flight),
                ),
                ("flits_conserved".to_string(), Value::Bool(conserved)),
            ]),
        ),
        ("all_feasible".to_string(), Value::Bool(all_feasible)),
        ("all_certified".to_string(), Value::Bool(all_certified)),
        ("conserved".to_string(), Value::Bool(conserved)),
        ("passed".to_string(), Value::Bool(passed)),
    ]);
    let json = serde_json::to_string_pretty(&report).unwrap_or_default() + "\n";
    match o.get("out") {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("wrote soak report to {path}");
        }
        None => print!("{json}"),
    }
    eprintln!(
        "soak: {} event(s) -> {} raw transition(s) -> {} admitted epoch(s) \
         ({} suppressed re-admission(s)), repair {}",
        plan.events().len(),
        timeline.raw_transitions,
        epochs.len(),
        timeline.suppressed_ups(),
        strategy.name()
    );
    eprintln!(
        "soak: feasibility {}, certification {}, conservation {}, liveness {}",
        if all_feasible { "ok" } else { "FAILED" },
        if all_certified { "ok" } else { "FAILED" },
        if conserved { "exact" } else { "VIOLATED" },
        if stats.deadlocked {
            "FAILED (watchdog fired)"
        } else {
            "ok"
        }
    );
    if let Some(cycle) = infeasible_at {
        return Err(format!(
            "soak failed: the network degraded at cycle {cycle} is provably unroutable"
        ));
    }
    if !all_certified {
        return Err("soak failed: a reconfiguration epoch failed certification".to_string());
    }
    if stats.deadlocked {
        return Err(format!(
            "soak failed: deadlock watchdog fired (no progress since cycle {}, \
             {} flits stranded)",
            stats.last_progress, stats.flits_in_flight
        ));
    }
    if !conserved {
        return Err(format!(
            "soak failed: flit conservation violated (injected {} != delivered {} \
             + dropped {} + in flight {})",
            stats.flits_injected_total,
            stats.flits_delivered_total,
            stats.dropped_flits,
            stats.flits_in_flight
        ));
    }
    Ok(())
}

/// The transition direction of one timeline step.
fn step_direction(step: &irnet_topology::TimelineStep) -> &'static str {
    let downs = !step.failed_links.is_empty() || !step.failed_nodes.is_empty();
    let ups = !step.revived_links.is_empty() || !step.revived_nodes.is_empty();
    match (downs, ups) {
        (true, false) => "down",
        (false, true) => "up",
        _ => "mixed",
    }
}

/// JSON view of a timeline's flap-damping accounting: raw vs admitted
/// transition counts plus the per-element state machine tallies.
fn damping_value(timeline: &irnet_topology::RecoveryTimeline) -> Value {
    let elements: Vec<Value> = timeline
        .damping
        .iter()
        .map(|d| {
            Value::Map(vec![
                ("element".to_string(), Value::Str(d.element.to_string())),
                ("downs".to_string(), Value::U64(u64::from(d.downs))),
                ("ups".to_string(), Value::U64(u64::from(d.ups))),
                (
                    "admitted_downs".to_string(),
                    Value::U64(u64::from(d.admitted_downs)),
                ),
                (
                    "admitted_ups".to_string(),
                    Value::U64(u64::from(d.admitted_ups)),
                ),
                (
                    "suppressed_ups".to_string(),
                    Value::U64(u64::from(d.suppressed_ups)),
                ),
                (
                    "max_hold_applied".to_string(),
                    Value::U64(u64::from(d.max_hold_applied)),
                ),
            ])
        })
        .collect();
    Value::Map(vec![
        (
            "raw_transitions".to_string(),
            Value::U64(u64::from(timeline.raw_transitions)),
        ),
        (
            "admitted_steps".to_string(),
            Value::U64(timeline.steps.len() as u64),
        ),
        (
            "suppressed_ups".to_string(),
            Value::U64(u64::from(timeline.suppressed_ups())),
        ),
        ("elements".to_string(), Value::Seq(elements)),
    ])
}

/// Writes a deadlock-forensics incident to `--incident FILE`, or summarises
/// it on stderr when no file was requested.
fn write_incident(o: &Opts, incident: &irnet_obs::Incident) -> Result<(), String> {
    eprintln!(
        "deadlock forensics: {} blocked worm(s), {} waits-for edge(s), {}",
        incident.worms.len(),
        incident.edges.len(),
        if incident.is_circular_wait() {
            "circular wait (witness cycle in report)"
        } else {
            "acyclic stall (waiting on dead or held resources)"
        }
    );
    if let Some(path) = o.get("incident") {
        std::fs::write(path, incident.to_json() + "\n")
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote incident report to {path}");
    }
    Ok(())
}

/// Flight-recorder capture: run one simulation (optionally through a fault
/// scenario) with the recorder and interval sampler attached, then export
/// the recording as JSONL.
fn cmd_trace(o: &Opts) -> Result<(), String> {
    use irnet_core::{plan_epochs, DownUp};
    use irnet_obs::{deadlock_incident, FlightRecorder, IntervalSampler};
    use irnet_sim::FaultEpoch;
    use irnet_topology::FaultPlan;

    let topo = load_topology(o)?;
    let cfg = sim_config(o);
    let sim_seed = o.parse("sim-seed", 7u64);
    let no_repair = o.flag("no-repair");
    let sample_every = o.parse("sample-every", 0u32);
    let mut recorder = FlightRecorder::new(o.parse("events", 65_536usize));
    let mut sampler = (sample_every > 0).then(|| IntervalSampler::new(sample_every));

    // With a fault scenario the run mirrors `faults` (DOWN/UP repair per
    // epoch); `--no-repair` keeps the original tables across the fault so
    // worms wedge on the dead channels and the watchdog demonstrably fires.
    let scenario = match o.get("scenario") {
        Some(path) => {
            if matches!(o.get("algo"), Some(a) if a != "downup") {
                return Err("`trace --scenario` repairs with DOWN/UP; \
                     other --algo values are not supported"
                    .to_string());
            }
            let raw =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Some(FaultPlan::from_json(&raw).map_err(|e| format!("{path}: {e}"))?)
        }
        None => None,
    };
    let builder = DownUp::new()
        .policy(parse_policy(o))
        .seed(o.parse("seed", 1u64));
    let inst = build_instance(o, &topo)?;
    let epochs = match &scenario {
        Some(plan) => plan_epochs(&topo, &inst.cg, &inst.table, plan, builder)
            .map_err(|e| format!("fault repair failed: {e}"))?,
        None => Vec::new(),
    };
    let last_fault = epochs.iter().map(|e| e.cycle).max();

    let mut sim = Simulator::new(&inst.cg, &inst.tables, cfg, sim_seed);
    for e in &epochs {
        sim.schedule_reconfig(FaultEpoch {
            cycle: e.cycle,
            dead_channels: e.dead_channels.clone(),
            dead_nodes: e.dead_nodes.clone(),
            revived_channels: e.revived_channels.clone(),
            revived_nodes: e.revived_nodes.clone(),
            // Unrepaired mode observes the failure, it does not survive it.
            tables: if no_repair { &inst.tables } else { &e.tables },
        });
    }
    sim.attach_recorder(&mut recorder);

    let total = cfg.total_cycles();
    // In unrepaired mode, cut injection after the last fault and run past
    // the horizon until the network drains or the watchdog fires: wedged
    // worms are then the only live packets, so the stall is deterministic.
    let horizon = if no_repair {
        total.saturating_add(200_000)
    } else {
        total
    };
    let mut injecting = true;
    let mut stalled = false;
    while sim.now() < horizon {
        sim.tick();
        if let Some(s) = sampler.as_mut() {
            s.maybe_sample(&sim);
        }
        if no_repair && injecting && last_fault.is_some_and(|c| sim.now() > c) {
            sim.set_injection_rate(0.0);
            injecting = false;
        }
        if sim.stalled() {
            stalled = true;
            break;
        }
        if no_repair && sim.now() >= total && sim.live_packet_count() == 0 {
            break;
        }
    }
    if let Some(s) = sampler.as_mut() {
        s.force_sample(&sim);
    }

    let incident = stalled.then(|| deadlock_incident(&sim));
    let stats = sim.finish_with(stalled);

    if let Some(incident) = &incident {
        write_incident(o, incident)?;
    }
    if let (Some(s), Some(path)) = (&sampler, o.get("series")) {
        std::fs::write(path, s.to_csv()).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {} sample(s) to {path}", s.samples().len());
    }
    let jsonl = recorder.export_jsonl();
    match o.get("out") {
        Some(path) => {
            std::fs::write(path, &jsonl).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!(
                "wrote {} event(s) to {path} ({} recorded, {} evicted from the ring)",
                recorder.len(),
                recorder.total_recorded(),
                recorder.evicted()
            );
        }
        None => print!("{jsonl}"),
    }
    eprintln!(
        "trace: {} cycles, {} packet(s) delivered, {} event(s) recorded{}",
        stats.cycles,
        stats.packets_delivered,
        recorder.total_recorded(),
        if stats.deadlocked {
            " — DEADLOCK (watchdog fired)"
        } else {
            ""
        }
    );
    Ok(())
}

/// One-shot busiest-channels / busiest-nodes view of a simulation.
fn cmd_top(o: &Opts) -> Result<(), String> {
    let topo = load_topology(o)?;
    let inst = build_instance(o, &topo)?;
    let cfg = sim_config(o);
    let stats = Simulator::new(&inst.cg, &inst.tables, cfg, o.parse("sim-seed", 7u64)).run();
    print!(
        "{}",
        irnet_obs::render_top(&stats, &inst.cg, o.parse("k", 10usize))
    );
    Ok(())
}

/// Renders a telemetry snapshot written by `--telemetry`, optionally as a
/// diff against a second (newer) snapshot or as Prometheus text exposition.
fn cmd_stats(o: &Opts) -> Result<(), String> {
    let path = o
        .get("snapshot")
        .ok_or("stats requires --snapshot FILE (a file written by --telemetry)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let snap = Snapshot::from_json(&text)
        .map_err(|e| format!("{path} is not a telemetry snapshot: {e}"))?;
    if let Some(path2) = o.get("diff") {
        let text2 =
            std::fs::read_to_string(path2).map_err(|e| format!("cannot read {path2}: {e}"))?;
        let newer = Snapshot::from_json(&text2)
            .map_err(|e| format!("{path2} is not a telemetry snapshot: {e}"))?;
        print!("{}", snap.diff(&newer));
    } else if o.flag("prometheus") {
        print!("{}", snap.to_prometheus());
    } else {
        print!("{}", snap.render());
    }
    Ok(())
}

/// `Value::Seq` of numeric ids.
fn ids<T: Copy + Into<u64>>(xs: &[T]) -> Value {
    Value::Seq(xs.iter().map(|&x| Value::U64(x.into())).collect())
}

fn verdict_line(cert: &irnet_verify::Certificate) -> String {
    match &cert.verdict {
        Verdict::DeadlockFree { .. } => format!(
            "certified deadlock-free ({} channels, {} dependency edges)",
            cert.num_channels, cert.num_edges
        ),
        Verdict::Deadlock { witness } => {
            format!(
                "DEADLOCK (minimized witness cycle, {} channels)",
                witness.len()
            )
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        fail("missing subcommand")
    };
    let opts = parse_opts(rest);
    // Install the global registry before dispatch so every subsystem the
    // command touches records into the same snapshot. Without --telemetry the
    // global stays disabled and hot paths pay a single branch.
    let tel_path = opts.get("telemetry").map(str::to_string);
    if tel_path.is_some() {
        irnet_telemetry::install(Telemetry::enabled());
    }
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "analyze" => cmd_analyze(&opts),
        "verify" => cmd_verify(&opts),
        "lint" => cmd_lint(&opts),
        "routes" => cmd_routes(&opts),
        "simulate" => cmd_simulate(&opts),
        "sweep" => cmd_sweep(&opts),
        "export" => cmd_export(&opts),
        "render" => cmd_render(&opts),
        "replay" => cmd_replay(&opts),
        "faults" => cmd_faults(&opts),
        "soak" => cmd_soak(&opts),
        "trace" => cmd_trace(&opts),
        "top" => cmd_top(&opts),
        "stats" => cmd_stats(&opts),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => fail(&format!("unknown subcommand {other:?}")),
    };
    // Written even when the command errs: a partial snapshot of a failed run
    // is still diagnostic. Paths that exit the process early (usage errors,
    // verify/lint findings) skip it by design.
    if let Some(path) = &tel_path {
        let json = irnet_telemetry::global().snapshot().to_json();
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("irnet: cannot write telemetry snapshot {path}: {e}");
        }
    }
    if let Err(msg) = result {
        eprintln!("irnet: {msg}");
        exit::finding()
    }
    std::process::exit(exit::CLEAN)
}
