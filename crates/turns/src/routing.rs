use crate::cdg::ChannelDepGraph;
use crate::turn_table::TurnTable;
use irnet_topology::{ChannelId, CommGraph, NodeId};
use std::collections::VecDeque;

/// Input-slot index used for freshly injected packets (no input channel).
/// Input port `q` maps to slot `q + 1`.
pub const INJECTION_SLOT: usize = 0;

/// Routing construction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingError {
    /// No legal path from `src` to `dst` under the turn restrictions —
    /// the turn table violates the connectivity requirement.
    Disconnected {
        /// The source switch.
        src: NodeId,
        /// The unreachable destination.
        dst: NodeId,
    },
}

impl std::fmt::Display for RoutingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingError::Disconnected { src, dst } => {
                write!(f, "no turn-legal path from {src} to {dst}")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

/// Turn-constrained shortest-path routing tables.
///
/// For every destination `t` the table stores, per channel `c`, the minimal
/// number of channels a packet must still traverse given that it traverses
/// `c` first (`cost`), and, per `(node, input slot)`, the bitmask of output
/// ports lying on *some* minimal legal path ("shortest possible paths", as
/// the paper's simulation uses). At each hop the simulator picks among that
/// mask — randomly or adaptively — which keeps the route set inside the
/// deadlock-free turn set.
#[derive(Debug, Clone)]
pub struct RoutingTables {
    num_nodes: u32,
    num_channels: u32,
    slots: usize,
    /// `cost[t as usize * num_channels + c]`, `u16::MAX` = unreachable.
    cost: Vec<u16>,
    /// `port_mask[(t * n + v) * slots + slot]`.
    port_mask: Vec<u16>,
    /// Like `port_mask` but with *every* turn-legal, non-dead-end output
    /// port (used for non-minimal/misrouting modes).
    any_mask: Vec<u16>,
}

impl RoutingTables {
    /// Builds the tables and verifies full connectivity: every ordered pair
    /// of distinct switches must be reachable from injection.
    pub fn build(cg: &CommGraph, table: &TurnTable) -> Result<RoutingTables, RoutingError> {
        Self::build_inner(cg, table, None, None)
    }

    /// Like [`RoutingTables::build`], but over the surviving sub-network of
    /// a degraded fabric: channels flagged in `dead_channel` never appear
    /// in any candidate mask (including the injection slot, which ignores
    /// the turn table), and nodes flagged dead in `alive_node` are skipped
    /// both as destinations and as route hops. Connectivity is only
    /// required between pairs of *alive* switches.
    pub fn build_masked(
        cg: &CommGraph,
        table: &TurnTable,
        dead_channel: &[bool],
        alive_node: &[bool],
    ) -> Result<RoutingTables, RoutingError> {
        assert_eq!(dead_channel.len(), cg.num_channels() as usize);
        assert_eq!(alive_node.len(), cg.num_nodes() as usize);
        Self::build_inner(cg, table, Some(dead_channel), Some(alive_node))
    }

    fn build_inner(
        cg: &CommGraph,
        table: &TurnTable,
        dead_channel: Option<&[bool]>,
        alive_node: Option<&[bool]>,
    ) -> Result<RoutingTables, RoutingError> {
        let ch_dead = |c: ChannelId| dead_channel.is_some_and(|d| d[c as usize]);
        let node_alive = |v: NodeId| alive_node.is_none_or(|a| a[v as usize]);
        let n = cg.num_nodes();
        let nch = cg.num_channels();
        let ch = cg.channels();
        let dep = ChannelDepGraph::build(cg, table);

        // Transpose of the dependency graph for reverse BFS.
        let mut indeg = vec![0u32; nch as usize];
        for c in 0..nch {
            for &s in dep.successors(c) {
                indeg[s as usize] += 1;
            }
        }
        let mut toff = vec![0u32; nch as usize + 1];
        for i in 0..nch as usize {
            toff[i + 1] = toff[i] + indeg[i];
        }
        let mut cursor = toff[..nch as usize].to_vec();
        let mut pred = vec![0u32; dep.num_edges()];
        for c in 0..nch {
            for &s in dep.successors(c) {
                pred[cursor[s as usize] as usize] = c;
                cursor[s as usize] += 1;
            }
        }

        let max_ports = (0..n).map(|v| ch.outputs(v).len()).max().unwrap_or(0);
        let slots = max_ports + 1;
        let mut cost = vec![u16::MAX; n as usize * nch as usize];
        let mut port_mask = vec![0u16; n as usize * n as usize * slots];
        let mut any_mask = vec![0u16; n as usize * n as usize * slots];
        let mut queue = VecDeque::with_capacity(nch as usize);

        for t in 0..n {
            if !node_alive(t) {
                continue; // dead destinations keep MAX costs and zero masks
            }
            let base = t as usize * nch as usize;
            queue.clear();
            // Seeds: channels whose sink is the destination cost exactly 1.
            for &c in ch.inputs(t) {
                if !ch_dead(c) {
                    cost[base + c as usize] = 1;
                    queue.push_back(c);
                }
            }
            while let Some(c) = queue.pop_front() {
                let d = cost[base + c as usize];
                for &p in &pred[toff[c as usize] as usize..toff[c as usize + 1] as usize] {
                    if !ch_dead(p) && cost[base + p as usize] == u16::MAX {
                        cost[base + p as usize] = d + 1;
                        queue.push_back(p);
                    }
                }
            }

            // Minimal-output port masks. Dead channels never acquire a
            // finite cost, so they drop out of every mask below.
            for v in 0..n {
                if v == t || !node_alive(v) {
                    continue;
                }
                let outs = ch.outputs(v);
                let mbase = (t as usize * n as usize + v as usize) * slots;
                // Injection slot: all outputs are candidates.
                let mut best = u16::MAX;
                for &c in outs {
                    best = best.min(cost[base + c as usize]);
                }
                if best == u16::MAX {
                    return Err(RoutingError::Disconnected { src: v, dst: t });
                }
                let mut mask = 0u16;
                let mut any = 0u16;
                for (p, &c) in outs.iter().enumerate() {
                    if cost[base + c as usize] == best {
                        mask |= 1 << p;
                    }
                    if cost[base + c as usize] != u16::MAX {
                        any |= 1 << p;
                    }
                }
                port_mask[mbase + INJECTION_SLOT] = mask;
                any_mask[mbase + INJECTION_SLOT] = any;
                // Per input port.
                for (q, &_in_ch) in ch.inputs(v).iter().enumerate() {
                    let allowed = table.mask(v, q as u8);
                    let mut best = u16::MAX;
                    for (p, &c) in outs.iter().enumerate() {
                        if (allowed >> p) & 1 == 1 {
                            best = best.min(cost[base + c as usize]);
                        }
                    }
                    let mut mask = 0u16;
                    let mut any = 0u16;
                    if best != u16::MAX {
                        for (p, &c) in outs.iter().enumerate() {
                            if (allowed >> p) & 1 == 1 {
                                if cost[base + c as usize] == best {
                                    mask |= 1 << p;
                                }
                                if cost[base + c as usize] != u16::MAX {
                                    any |= 1 << p;
                                }
                            }
                        }
                    }
                    port_mask[mbase + 1 + q] = mask;
                    any_mask[mbase + 1 + q] = any;
                }
            }
        }

        Ok(RoutingTables {
            num_nodes: n,
            num_channels: nch,
            slots,
            cost,
            port_mask,
            any_mask,
        })
    }

    /// Number of switches.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Input slots per node (max ports + 1).
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Remaining-hop count for a packet to `t` that traverses `c` next
    /// (`u16::MAX` if that is a dead end).
    #[inline]
    pub fn cost(&self, t: NodeId, c: ChannelId) -> u16 {
        self.cost[t as usize * self.num_channels as usize + c as usize]
    }

    /// Minimal legal output ports for a packet to `t` at node `v` arriving
    /// on `slot` ([`INJECTION_SLOT`] or `input port + 1`). Zero only for
    /// (slot, destination) combinations that cannot occur on minimal routes.
    #[inline]
    pub fn candidates(&self, t: NodeId, v: NodeId, slot: usize) -> u16 {
        debug_assert!(slot < self.slots);
        self.port_mask[(t as usize * self.num_nodes as usize + v as usize) * self.slots + slot]
    }

    /// Every turn-legal output port with a finite remaining cost to `t` —
    /// the candidate set for *non-minimal* (misrouting) modes. Both
    /// algorithms in the paper are non-minimal adaptive; the simulator's
    /// `misroute_patience` option uses this mask as the escape set.
    /// Always a superset of [`RoutingTables::candidates`].
    #[inline]
    pub fn candidates_any(&self, t: NodeId, v: NodeId, slot: usize) -> u16 {
        debug_assert!(slot < self.slots);
        self.any_mask[(t as usize * self.num_nodes as usize + v as usize) * self.slots + slot]
    }

    /// Hop count (number of channels) of a minimal legal route from `s` to
    /// `t`; `0` when `s == t`.
    pub fn route_len(&self, cg: &CommGraph, s: NodeId, t: NodeId) -> u16 {
        if s == t {
            return 0;
        }
        let mask = self.candidates(t, s, INJECTION_SLOT);
        debug_assert_ne!(mask, 0);
        let ch = cg.channels();
        let mut best = u16::MAX;
        for (p, &c) in ch.outputs(s).iter().enumerate() {
            if (mask >> p) & 1 == 1 {
                best = best.min(self.cost(t, c));
            }
        }
        best
    }

    /// Extracts one concrete minimal route (sequence of channels) from `s`
    /// to `t`, always taking the lowest-numbered candidate port.
    pub fn route(&self, cg: &CommGraph, s: NodeId, t: NodeId) -> Vec<ChannelId> {
        let ch = cg.channels();
        let mut path = Vec::new();
        let mut v = s;
        let mut slot = INJECTION_SLOT;
        while v != t {
            let mask = self.candidates(t, v, slot);
            assert_ne!(mask, 0, "route extraction hit a dead end at node {v}");
            // Lowest-numbered minimal port.
            let p = mask.trailing_zeros() as usize;
            let c = ch.outputs(v)[p];
            path.push(c);
            slot = ch.in_port(c) as usize + 1;
            v = ch.sink(c);
            debug_assert!(path.len() <= self.num_channels as usize, "route is cycling");
        }
        path
    }

    /// Average minimal route length over all ordered pairs `s != t`.
    pub fn avg_route_len(&self, cg: &CommGraph) -> f64 {
        let n = self.num_nodes;
        if n < 2 {
            return 0.0;
        }
        let mut sum = 0u64;
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    sum += self.route_len(cg, s, t) as u64;
                }
            }
        }
        sum as f64 / (n as u64 * (n as u64 - 1)) as f64
    }

    /// Longest minimal route over all pairs.
    pub fn max_route_len(&self, cg: &CommGraph) -> u16 {
        let n = self.num_nodes;
        let mut max = 0;
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    max = max.max(self.route_len(cg, s, t));
                }
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_topology::{gen, CommGraph, CoordinatedTree, PreorderPolicy};

    fn cg_of(topo: &irnet_topology::Topology) -> CommGraph {
        let tree = CoordinatedTree::build(topo, PreorderPolicy::M1, 0).unwrap();
        CommGraph::build(topo, &tree)
    }

    #[test]
    fn unrestricted_routing_matches_graph_distance() {
        let topo = gen::mesh(4, 4).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::all_allowed(&cg);
        let rt = RoutingTables::build(&cg, &table).unwrap();
        // In a mesh with all turns allowed, route lengths equal Manhattan
        // distance.
        let id = |x: u32, y: u32| y * 4 + x;
        assert_eq!(rt.route_len(&cg, id(0, 0), id(3, 3)), 6);
        assert_eq!(rt.route_len(&cg, id(1, 1), id(1, 2)), 1);
        assert_eq!(rt.route_len(&cg, id(2, 2), id(2, 2)), 0);
    }

    #[test]
    fn routes_are_consistent_with_costs() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), 3).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::all_allowed(&cg);
        let rt = RoutingTables::build(&cg, &table).unwrap();
        let ch = cg.channels();
        for s in 0..topo.num_nodes() {
            for t in 0..topo.num_nodes() {
                if s == t {
                    continue;
                }
                let path = rt.route(&cg, s, t);
                assert_eq!(path.len() as u16, rt.route_len(&cg, s, t));
                // Path is connected and ends at t.
                let mut v = s;
                for &c in &path {
                    assert_eq!(ch.start(c), v);
                    v = ch.sink(c);
                }
                assert_eq!(v, t);
            }
        }
    }

    #[test]
    fn turn_restrictions_can_lengthen_routes() {
        // A ring restricted to "clockwise after clockwise only" forces long
        // ways around for some pairs.
        let topo = gen::ring(6).unwrap();
        let cg = cg_of(&topo);
        let free = RoutingTables::build(&cg, &TurnTable::all_allowed(&cg)).unwrap();
        // up*/down*-like rule on the ring: never follow a down channel with
        // an up channel.
        let restricted =
            TurnTable::from_direction_rule(&cg, |din, dout| !(din.goes_down() && dout.goes_up()));
        let rt = RoutingTables::build(&cg, &restricted).unwrap();
        assert!(rt.avg_route_len(&cg) >= free.avg_route_len(&cg));
        assert!(rt.max_route_len(&cg) >= free.max_route_len(&cg));
    }

    #[test]
    fn disconnection_is_reported() {
        // Prohibit every turn: on a path graph of 3 nodes, node 0 cannot
        // reach node 2 (the middle node would need a turn).
        let topo = irnet_topology::Topology::new(3, 2, [(0, 1), (1, 2)]).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::from_direction_rule(&cg, |_, _| false);
        // Same-direction transitions are always allowed; on this path the
        // two hops 0->1->2 share a direction only if both links point the
        // same way in the tree. Build and inspect.
        match RoutingTables::build(&cg, &table) {
            Ok(rt) => {
                // If it built, connectivity must genuinely hold.
                assert_ne!(rt.candidates(2, 0, INJECTION_SLOT), 0);
            }
            Err(RoutingError::Disconnected { .. }) => {}
        }
        // A truly disconnecting table: prohibit every pair at node 1
        // explicitly.
        let mut hard = TurnTable::all_allowed(&cg);
        let ch = cg.channels();
        for &in_ch in ch.inputs(1) {
            for &out_ch in ch.outputs(1) {
                if out_ch != ch.reverse(in_ch) {
                    hard.prohibit(&cg, in_ch, out_ch);
                }
            }
        }
        assert!(matches!(
            RoutingTables::build(&cg, &hard),
            Err(RoutingError::Disconnected { .. })
        ));
    }

    #[test]
    fn masked_build_with_no_faults_matches_plain_build() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), 3).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::all_allowed(&cg);
        let plain = RoutingTables::build(&cg, &table).unwrap();
        let dead = vec![false; cg.num_channels() as usize];
        let alive = vec![true; cg.num_nodes() as usize];
        let masked = RoutingTables::build_masked(&cg, &table, &dead, &alive).unwrap();
        for t in 0..topo.num_nodes() {
            for c in 0..cg.num_channels() {
                assert_eq!(plain.cost(t, c), masked.cost(t, c));
            }
            for v in 0..topo.num_nodes() {
                for slot in 0..plain.slots() {
                    assert_eq!(plain.candidates(t, v, slot), masked.candidates(t, v, slot));
                    assert_eq!(
                        plain.candidates_any(t, v, slot),
                        masked.candidates_any(t, v, slot)
                    );
                }
            }
        }
    }

    #[test]
    fn masked_build_excludes_dead_channels_everywhere() {
        // Square 0-1-2-3-0 with a diagonal 1-3; kill the diagonal.
        let topo =
            irnet_topology::Topology::new(4, 4, [(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]).unwrap();
        let cg = cg_of(&topo);
        let ch = cg.channels();
        let table = TurnTable::all_allowed(&cg);
        let l = topo.link_between(1, 3).unwrap();
        let mut dead = vec![false; cg.num_channels() as usize];
        dead[2 * l as usize] = true;
        dead[2 * l as usize + 1] = true;
        let alive = vec![true; 4];
        let rt = RoutingTables::build_masked(&cg, &table, &dead, &alive).unwrap();
        // No candidate mask — injection or transit, minimal or any — may
        // contain a dead output port.
        for t in 0..4u32 {
            for v in 0..4u32 {
                if t == v {
                    continue;
                }
                for slot in 0..rt.slots() {
                    let any = rt.candidates_any(t, v, slot);
                    for (p, &c) in ch.outputs(v).iter().enumerate() {
                        if dead[c as usize] {
                            assert_eq!((any >> p) & 1, 0, "dead channel {c} in mask");
                        }
                    }
                }
            }
        }
        // 1 -> 3 must now detour through 0 or 2: two hops instead of one.
        assert_eq!(rt.route_len(&cg, 1, 3), 2);
        // Unmasked, the diagonal is a one-hop route.
        let free = RoutingTables::build(&cg, &table).unwrap();
        assert_eq!(free.route_len(&cg, 1, 3), 1);
    }

    #[test]
    fn masked_build_skips_dead_nodes() {
        // Path 0-1-2 plus 0-2 chord: node 1 dies, 0<->2 still routable.
        let topo = irnet_topology::Topology::new(3, 4, [(0, 1), (1, 2), (0, 2)]).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::all_allowed(&cg);
        let mut dead = vec![false; cg.num_channels() as usize];
        for l in [
            topo.link_between(0, 1).unwrap(),
            topo.link_between(1, 2).unwrap(),
        ] {
            dead[2 * l as usize] = true;
            dead[2 * l as usize + 1] = true;
        }
        let alive = vec![true, false, true];
        let rt = RoutingTables::build_masked(&cg, &table, &dead, &alive).unwrap();
        assert_eq!(rt.route_len(&cg, 0, 2), 1);
        // Dead destination: no masks at all.
        assert_eq!(rt.candidates(1, 0, INJECTION_SLOT), 0);
        assert_eq!(rt.candidates_any(1, 0, INJECTION_SLOT), 0);
        // Disconnecting the alive pair is still an error.
        let mut all_dead = vec![true; cg.num_channels() as usize];
        let chord = topo.link_between(0, 2).unwrap();
        all_dead[2 * chord as usize] = false;
        // Reverse of the chord stays dead: 2 cannot reach 0.
        let err = RoutingTables::build_masked(&cg, &table, &all_dead, &alive).unwrap_err();
        assert!(matches!(err, RoutingError::Disconnected { .. }));
    }

    #[test]
    fn any_mask_is_a_superset_of_minimal_mask() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), 5).unwrap();
        let cg = cg_of(&topo);
        let table =
            TurnTable::from_direction_rule(&cg, |din, dout| !(din.goes_down() && dout.goes_up()));
        let rt = RoutingTables::build(&cg, &table).unwrap();
        let ch = cg.channels();
        let mut strictly_larger_somewhere = false;
        for t in 0..topo.num_nodes() {
            for v in 0..topo.num_nodes() {
                if t == v {
                    continue;
                }
                for slot in 0..=ch.inputs(v).len() {
                    let min = rt.candidates(t, v, slot);
                    let any = rt.candidates_any(t, v, slot);
                    assert_eq!(any & min, min, "minimal not within any");
                    if any != min {
                        strictly_larger_somewhere = true;
                    }
                }
            }
        }
        assert!(
            strictly_larger_somewhere,
            "non-minimal options never exist?"
        );
    }

    #[test]
    fn candidate_masks_only_contain_minimal_ports() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 8).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::all_allowed(&cg);
        let rt = RoutingTables::build(&cg, &table).unwrap();
        let ch = cg.channels();
        for t in 0..topo.num_nodes() {
            for v in 0..topo.num_nodes() {
                if v == t {
                    continue;
                }
                let mask = rt.candidates(t, v, INJECTION_SLOT);
                let outs = ch.outputs(v);
                let best: u16 = outs.iter().map(|&c| rt.cost(t, c)).min().unwrap();
                for (p, &c) in outs.iter().enumerate() {
                    let picked = (mask >> p) & 1 == 1;
                    assert_eq!(picked, rt.cost(t, c) == best);
                }
            }
        }
    }
}
