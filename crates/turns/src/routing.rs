use crate::cdg::ChannelDepGraph;
use crate::turn_table::TurnTable;
use irnet_topology::{ChannelId, CommGraph, NodeId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Input-slot index used for freshly injected packets (no input channel).
/// Input port `q` maps to slot `q + 1`.
pub const INJECTION_SLOT: usize = 0;

/// Below this node count an auto-threaded table build stays serial: the
/// whole fill is sub-millisecond and thread spawn overhead would dominate.
const PARALLEL_BUILD_MIN_NODES: u32 = 192;

/// Routing construction failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingError {
    /// No legal path from `src` to `dst` under the turn restrictions —
    /// the turn table violates the connectivity requirement.
    Disconnected {
        /// The source switch.
        src: NodeId,
        /// The unreachable destination.
        dst: NodeId,
    },
}

impl std::fmt::Display for RoutingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoutingError::Disconnected { src, dst } => {
                write!(f, "no turn-legal path from {src} to {dst}")
            }
        }
    }
}

impl std::error::Error for RoutingError {}

/// Touched-region accounting of one [`RoutingTables::patch_masked`] call —
/// the evidence that an incremental repair really was O(affected region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PatchStats {
    /// Channel-dependency edges the turn-table delta removed.
    pub removed_edges: usize,
    /// Channel-dependency edges the turn-table delta added.
    pub added_edges: usize,
    /// Per-destination cost entries that changed value, summed over all
    /// destinations.
    pub changed_costs: u64,
    /// `(destination, switch)` candidate-mask rows recomputed.
    pub touched_rows: u64,
    /// Destinations with at least one cost or mask change.
    pub touched_destinations: u32,
    /// Distinct switches whose candidate rows were recomputed for at least
    /// one destination.
    pub touched_switches: u32,
}

/// CSR transpose (predecessor lists) of a dependency graph, for reverse
/// BFS/Dijkstra propagation: returns `(offsets, preds)` with the
/// predecessors of channel `c` at `preds[offsets[c]..offsets[c + 1]]`.
fn transpose(dep: &ChannelDepGraph) -> (Vec<u32>, Vec<u32>) {
    let nch = dep.num_channels();
    let mut indeg = vec![0u32; nch as usize];
    for c in 0..nch {
        for &s in dep.successors(c) {
            indeg[s as usize] += 1;
        }
    }
    let mut toff = vec![0u32; nch as usize + 1];
    for i in 0..nch as usize {
        toff[i + 1] = toff[i] + indeg[i];
    }
    let mut cursor = toff[..nch as usize].to_vec();
    let mut pred = vec![0u32; dep.num_edges()];
    for c in 0..nch {
        for &s in dep.successors(c) {
            pred[cursor[s as usize] as usize] = c;
            cursor[s as usize] += 1;
        }
    }
    (toff, pred)
}

/// Turn-constrained shortest-path routing tables.
///
/// For every destination `t` the table stores, per channel `c`, the minimal
/// number of channels a packet must still traverse given that it traverses
/// `c` first (`cost`), and, per `(node, input slot)`, the bitmask of output
/// ports lying on *some* minimal legal path ("shortest possible paths", as
/// the paper's simulation uses). At each hop the simulator picks among that
/// mask — randomly or adaptively — which keeps the route set inside the
/// deadlock-free turn set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTables {
    num_nodes: u32,
    num_channels: u32,
    slots: usize,
    /// `cost[t as usize * num_channels + c]`, `u16::MAX` = unreachable.
    cost: Vec<u16>,
    /// `port_mask[(t * n + v) * slots + slot]`.
    port_mask: Vec<u16>,
    /// Like `port_mask` but with *every* turn-legal, non-dead-end output
    /// port (used for non-minimal/misrouting modes).
    any_mask: Vec<u16>,
}

impl RoutingTables {
    /// Builds the tables and verifies full connectivity: every ordered pair
    /// of distinct switches must be reachable from injection.
    pub fn build(cg: &CommGraph, table: &TurnTable) -> Result<RoutingTables, RoutingError> {
        Self::build_inner(cg, table, None, None, 0)
    }

    /// Like [`RoutingTables::build`] but with an explicit worker-thread
    /// count: `1` forces the serial reference build, `0` picks
    /// [`std::thread::available_parallelism`]. The result is bit-identical
    /// for every thread count — each destination's rows are disjoint and
    /// filled by the same arithmetic, and on disconnection the error
    /// reported is the one the serial build would hit first (smallest
    /// destination, then smallest source).
    pub fn build_with_threads(
        cg: &CommGraph,
        table: &TurnTable,
        threads: usize,
    ) -> Result<RoutingTables, RoutingError> {
        Self::build_inner(cg, table, None, None, threads)
    }

    /// Like [`RoutingTables::build`], but over the surviving sub-network of
    /// a degraded fabric: channels flagged in `dead_channel` never appear
    /// in any candidate mask (including the injection slot, which ignores
    /// the turn table), and nodes flagged dead in `alive_node` are skipped
    /// both as destinations and as route hops. Connectivity is only
    /// required between pairs of *alive* switches.
    pub fn build_masked(
        cg: &CommGraph,
        table: &TurnTable,
        dead_channel: &[bool],
        alive_node: &[bool],
    ) -> Result<RoutingTables, RoutingError> {
        assert_eq!(dead_channel.len(), cg.num_channels() as usize);
        assert_eq!(alive_node.len(), cg.num_nodes() as usize);
        Self::build_inner(cg, table, Some(dead_channel), Some(alive_node), 0)
    }

    fn build_inner(
        cg: &CommGraph,
        table: &TurnTable,
        dead_channel: Option<&[bool]>,
        alive_node: Option<&[bool]>,
        threads: usize,
    ) -> Result<RoutingTables, RoutingError> {
        let ch_dead = |c: ChannelId| dead_channel.is_some_and(|d| d[c as usize]);
        let node_alive = |v: NodeId| alive_node.is_none_or(|a| a[v as usize]);
        let n = cg.num_nodes();
        let nch = cg.num_channels();
        let ch = cg.channels();
        let dep = ChannelDepGraph::build(cg, table);

        // Transpose of the dependency graph for reverse BFS.
        let (toff, pred) = transpose(&dep);

        let max_ports = (0..n).map(|v| ch.outputs(v).len()).max().unwrap_or(0);
        let slots = max_ports + 1;
        let mut cost = vec![u16::MAX; n as usize * nch as usize];
        let mut port_mask = vec![0u16; n as usize * n as usize * slots];
        let mut any_mask = vec![0u16; n as usize * n as usize * slots];

        // One destination = one disjoint row in each of the three arrays, so
        // the per-destination fill is embarrassingly parallel. The closure
        // writes only its own rows; any thread partition therefore produces
        // bit-identical tables.
        let fill_dest = |t: NodeId,
                         cost_row: &mut [u16],
                         pm_row: &mut [u16],
                         am_row: &mut [u16],
                         queue: &mut VecDeque<ChannelId>|
         -> Result<(), RoutingError> {
            if !node_alive(t) {
                return Ok(()); // dead destinations keep MAX costs and zero masks
            }
            queue.clear();
            // Seeds: channels whose sink is the destination cost exactly 1.
            for &c in ch.inputs(t) {
                if !ch_dead(c) {
                    cost_row[c as usize] = 1;
                    queue.push_back(c);
                }
            }
            while let Some(c) = queue.pop_front() {
                let d = cost_row[c as usize];
                for &p in &pred[toff[c as usize] as usize..toff[c as usize + 1] as usize] {
                    if !ch_dead(p) && cost_row[p as usize] == u16::MAX {
                        cost_row[p as usize] = d + 1;
                        queue.push_back(p);
                    }
                }
            }

            // Minimal-output port masks. Dead channels never acquire a
            // finite cost, so they drop out of every mask below.
            for v in 0..n {
                if v == t || !node_alive(v) {
                    continue;
                }
                let outs = ch.outputs(v);
                let mbase = v as usize * slots;
                // Injection slot: all outputs are candidates.
                let mut best = u16::MAX;
                for &c in outs {
                    best = best.min(cost_row[c as usize]);
                }
                if best == u16::MAX {
                    return Err(RoutingError::Disconnected { src: v, dst: t });
                }
                let mut mask = 0u16;
                let mut any = 0u16;
                for (p, &c) in outs.iter().enumerate() {
                    if cost_row[c as usize] == best {
                        mask |= 1 << p;
                    }
                    if cost_row[c as usize] != u16::MAX {
                        any |= 1 << p;
                    }
                }
                pm_row[mbase + INJECTION_SLOT] = mask;
                am_row[mbase + INJECTION_SLOT] = any;
                // Per input port.
                for (q, &_in_ch) in ch.inputs(v).iter().enumerate() {
                    let allowed = table.mask(v, q as u8);
                    let mut best = u16::MAX;
                    for (p, &c) in outs.iter().enumerate() {
                        if (allowed >> p) & 1 == 1 {
                            best = best.min(cost_row[c as usize]);
                        }
                    }
                    let mut mask = 0u16;
                    let mut any = 0u16;
                    if best != u16::MAX {
                        for (p, &c) in outs.iter().enumerate() {
                            if (allowed >> p) & 1 == 1 {
                                if cost_row[c as usize] == best {
                                    mask |= 1 << p;
                                }
                                if cost_row[c as usize] != u16::MAX {
                                    any |= 1 << p;
                                }
                            }
                        }
                    }
                    pm_row[mbase + 1 + q] = mask;
                    am_row[mbase + 1 + q] = any;
                }
            }
            Ok(())
        };

        let workers = match threads {
            0 if n < PARALLEL_BUILD_MIN_NODES => 1,
            0 => std::thread::available_parallelism().map_or(1, usize::from),
            explicit => explicit,
        }
        .clamp(1, n.max(1) as usize);

        let row_nch = nch as usize;
        let row_mask = n as usize * slots;
        if workers <= 1 || row_nch == 0 {
            let mut queue = VecDeque::with_capacity(row_nch);
            for t in 0..n as usize {
                let (pm_row, am_row) = (
                    &mut port_mask[t * row_mask..(t + 1) * row_mask],
                    &mut any_mask[t * row_mask..(t + 1) * row_mask],
                );
                fill_dest(
                    t as NodeId,
                    &mut cost[t * row_nch..(t + 1) * row_nch],
                    pm_row,
                    am_row,
                    &mut queue,
                )?;
            }
        } else {
            // Contiguous destination chunks, one scoped worker each. Joining
            // in chunk order and keeping each worker's first failure makes
            // the reported error the serial one: the failing destination is
            // minimal within its chunk, and earlier chunks hold smaller
            // destinations.
            let per = (n as usize).div_ceil(workers);
            let first_err = std::thread::scope(|s| {
                let fill = &fill_dest;
                let mut handles = Vec::with_capacity(workers);
                for (k, (cost_c, (pm_c, am_c))) in cost
                    .chunks_mut(per * row_nch.max(1))
                    .zip(
                        port_mask
                            .chunks_mut(per * row_mask.max(1))
                            .zip(any_mask.chunks_mut(per * row_mask.max(1))),
                    )
                    .enumerate()
                {
                    handles.push(s.spawn(move || {
                        let mut queue = VecDeque::with_capacity(row_nch);
                        for (i, (cost_row, (pm_row, am_row))) in cost_c
                            .chunks_mut(row_nch.max(1))
                            .zip(
                                pm_c.chunks_mut(row_mask.max(1))
                                    .zip(am_c.chunks_mut(row_mask.max(1))),
                            )
                            .enumerate()
                        {
                            let t = (k * per + i) as NodeId;
                            if t >= n {
                                break;
                            }
                            fill(t, cost_row, pm_row, am_row, &mut queue)?;
                        }
                        Ok(())
                    }));
                }
                let mut first: Result<(), RoutingError> = Ok(());
                for h in handles {
                    let r = h.join().expect("routing-table worker panicked");
                    if first.is_ok() {
                        first = r;
                    }
                }
                first
            });
            first_err?;
        }

        Ok(RoutingTables {
            num_nodes: n,
            num_channels: nch,
            slots,
            cost,
            port_mask,
            any_mask,
        })
    }

    /// Patches `self` — previously equal to
    /// [`RoutingTables::build_masked`]`(cg, old_table, …)` under the
    /// *previous* fault state — in place, into exactly the tables
    /// `build_masked(cg, new_table, dead_channel, alive_node)` would
    /// produce, re-solving only the rows whose shortest paths traverse the
    /// affected region.
    ///
    /// `dead_channel` / `alive_node` describe the *current* (cumulative)
    /// fault state; `newly_dead_channels` / `newly_dead_nodes` list exactly
    /// the elements that died since `self` was built. Both turn tables live
    /// in `cg`'s original channel space, and `new_table` must prohibit
    /// every pair touching a dead channel (the repair lift guarantees
    /// this), so every dependency edge into or out of a newly dead channel
    /// appears in the removed-edge delta.
    ///
    /// The update is exact, not heuristic. Per destination:
    ///
    /// 1. *invalidate* — channels whose recorded cost was supported through
    ///    a removed dependency edge or a newly dead channel go unreachable,
    ///    cascading to dependents that lose their last support;
    /// 2. *re-settle* — the invalidated set is re-solved with a dirty-set
    ///    Dijkstra frontier over the new dependency graph (unit weights,
    ///    surviving costs act as fixed sources);
    /// 3. *decrease* — added dependency edges (Phase-3 releases that came
    ///    back) propagate cost improvements;
    /// 4. only switches with a changed output-channel cost or a changed
    ///    turn mask get their candidate rows recomputed, with the same
    ///    connectivity check as the full build.
    ///
    /// Total cost is O(destinations × delta) instead of the full build's
    /// O(destinations × dependency edges).
    ///
    /// # Errors
    ///
    /// [`RoutingError::Disconnected`] if some alive pair loses every
    /// turn-legal route, exactly as the full build would report.
    ///
    /// # Panics
    ///
    /// Panics if the mask/table dimensions disagree with `cg` or with the
    /// tables `self` was built over.
    // The argument list mirrors `build_masked` plus the three delta inputs;
    // bundling them into a struct would only move the noise to the caller.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    pub fn patch_masked(
        &mut self,
        cg: &CommGraph,
        old_table: &TurnTable,
        new_table: &TurnTable,
        dead_channel: &[bool],
        alive_node: &[bool],
        newly_dead_channels: &[ChannelId],
        newly_dead_nodes: &[NodeId],
    ) -> Result<PatchStats, RoutingError> {
        let n = cg.num_nodes();
        let nch = cg.num_channels();
        assert_eq!(self.num_nodes, n);
        assert_eq!(self.num_channels, nch);
        assert_eq!(dead_channel.len(), nch as usize);
        assert_eq!(alive_node.len(), n as usize);
        let ch = cg.channels();
        let slots = self.slots;

        // Turn-table delta: removed/added dependency edges, plus the
        // switches whose candidate masks change even without a cost change
        // (e.g. a Phase-3 release granted under one tree but not the other).
        let mut removed: Vec<(ChannelId, ChannelId)> = Vec::new();
        let mut added: Vec<(ChannelId, ChannelId)> = Vec::new();
        let mut turn_dirty_nodes: Vec<NodeId> = Vec::new();
        for v in 0..n {
            let outs = ch.outputs(v);
            let mut dirty = false;
            for (q, &in_ch) in ch.inputs(v).iter().enumerate() {
                let before = old_table.mask(v, q as u8);
                let after = new_table.mask(v, q as u8);
                let mut delta = before ^ after;
                dirty |= delta != 0;
                while delta != 0 {
                    let p = delta.trailing_zeros() as usize;
                    delta &= delta - 1;
                    if (before >> p) & 1 == 1 {
                        removed.push((in_ch, outs[p]));
                    } else {
                        added.push((in_ch, outs[p]));
                    }
                }
            }
            if dirty {
                turn_dirty_nodes.push(v);
            }
        }

        // Dependency graph of the new table (dead channels are isolated in
        // it) and its transpose, shared across destinations.
        let dep = ChannelDepGraph::build(cg, new_table);
        let (toff, pred) = transpose(&dep);
        let preds = |c: ChannelId| &pred[toff[c as usize] as usize..toff[c as usize + 1] as usize];

        let mut stats = PatchStats {
            removed_edges: removed.len(),
            added_edges: added.len(),
            ..PatchStats::default()
        };
        // Per-destination scratch, stamped by `t + 1` so nothing is cleared
        // between destinations. `saved_*` records each channel's pre-patch
        // cost the first time it is overwritten; the final changed set is
        // the records whose value really differs.
        let mut saved_gen = vec![0u32; nch as usize];
        let mut saved_val = vec![0u16; nch as usize];
        let mut saved_list: Vec<ChannelId> = Vec::new();
        let mut node_gen = vec![0u32; n as usize];
        let mut dirty_nodes: Vec<NodeId> = Vec::new();
        let mut switch_touched = vec![false; n as usize];
        let mut queue: Vec<ChannelId> = Vec::new();
        let mut invalidated: Vec<ChannelId> = Vec::new();
        let mut heap: BinaryHeap<Reverse<(u16, ChannelId)>> = BinaryHeap::new();

        for t in 0..n {
            let base = t as usize * nch as usize;
            if !alive_node[t as usize] {
                // A newly dead destination surrenders its whole block;
                // previously dead destinations are already blank.
                if newly_dead_nodes.contains(&t) {
                    self.cost[base..base + nch as usize].fill(u16::MAX);
                    let mb = t as usize * n as usize * slots;
                    self.port_mask[mb..mb + n as usize * slots].fill(0);
                    self.any_mask[mb..mb + n as usize * slots].fill(0);
                }
                continue;
            }
            let gen = t + 1;
            saved_list.clear();
            invalidated.clear();
            queue.clear();

            // Suspect seeds: a removed edge (u, v) only matters where it
            // carried u's shortest path — evaluated against the *pre-patch*
            // costs, before newly dead channels are zapped below.
            for &(u, v) in &removed {
                if dead_channel[u as usize] {
                    continue;
                }
                let cu = self.cost[base + u as usize];
                let cv = self.cost[base + v as usize];
                if cu != u16::MAX && cv != u16::MAX && cu == cv + 1 {
                    queue.push(u);
                }
            }
            for &d in newly_dead_channels {
                let idx = base + d as usize;
                if self.cost[idx] != u16::MAX {
                    if saved_gen[d as usize] != gen {
                        saved_gen[d as usize] = gen;
                        saved_val[d as usize] = self.cost[idx];
                        saved_list.push(d);
                    }
                    self.cost[idx] = u16::MAX;
                }
            }

            // Invalidate: a channel keeps its cost only while some
            // successor still supports it at cost − 1. Invalidating a
            // supporter re-enqueues its dependents, so the cascade reaches
            // a fixpoint even when support chains are examined out of
            // order (support sums of +1 cannot cycle).
            while let Some(p) = queue.pop() {
                let cp = self.cost[base + p as usize];
                if cp == u16::MAX || dead_channel[p as usize] || ch.sink(p) == t {
                    continue; // settled, dead, or an always-cost-1 seed
                }
                let supported = dep.successors(p).iter().any(|&s| {
                    let cs = self.cost[base + s as usize];
                    cs != u16::MAX && cs + 1 == cp
                });
                if supported {
                    continue;
                }
                if saved_gen[p as usize] != gen {
                    saved_gen[p as usize] = gen;
                    saved_val[p as usize] = cp;
                    saved_list.push(p);
                }
                self.cost[base + p as usize] = u16::MAX;
                invalidated.push(p);
                for &q in preds(p) {
                    if self.cost[base + q as usize] == cp + 1 {
                        queue.push(q);
                    }
                }
            }

            // Re-settle the invalidated region: lazy Dijkstra with unit
            // weights; surviving finite costs are fixed sources. An entry
            // is only committed when its key still equals the recomputed
            // best, so stale heap entries are harmless.
            heap.clear();
            for &u in &invalidated {
                let mut best = u16::MAX;
                for &s in dep.successors(u) {
                    let cs = self.cost[base + s as usize];
                    if cs != u16::MAX {
                        best = best.min(cs + 1);
                    }
                }
                if best != u16::MAX {
                    heap.push(Reverse((best, u)));
                }
            }
            while let Some(Reverse((d, u))) = heap.pop() {
                if self.cost[base + u as usize] != u16::MAX {
                    continue;
                }
                let mut best = u16::MAX;
                for &s in dep.successors(u) {
                    let cs = self.cost[base + s as usize];
                    if cs != u16::MAX {
                        best = best.min(cs + 1);
                    }
                }
                if best != d {
                    if best != u16::MAX {
                        heap.push(Reverse((best, u)));
                    }
                    continue;
                }
                if saved_gen[u as usize] != gen {
                    saved_gen[u as usize] = gen;
                    saved_val[u as usize] = u16::MAX;
                    saved_list.push(u);
                }
                self.cost[base + u as usize] = d;
                for &q in preds(u) {
                    if self.cost[base + q as usize] == u16::MAX && !dead_channel[q as usize] {
                        heap.push(Reverse((d + 1, q)));
                    }
                }
            }

            // Decrease: cost improvements originate either at an added
            // dependency edge directly, or at a channel the re-settle left
            // *below* its pre-patch value (possible only via added edges —
            // e.g. an invalidated channel whose new best support is an
            // added successor, or a previously unreachable channel the
            // re-settle reached). The latter's never-invalidated
            // predecessors still hold stale finite costs, so seed their
            // relaxation too; then propagate to closure.
            heap.clear();
            for &(u, v) in &added {
                let cv = self.cost[base + v as usize];
                if cv != u16::MAX && cv + 1 < self.cost[base + u as usize] {
                    heap.push(Reverse((cv + 1, u)));
                }
            }
            for &u in &saved_list {
                let cu = self.cost[base + u as usize];
                if cu != u16::MAX && cu < saved_val[u as usize] {
                    for &q in preds(u) {
                        if cu + 1 < self.cost[base + q as usize] {
                            heap.push(Reverse((cu + 1, q)));
                        }
                    }
                }
            }
            while let Some(Reverse((d, u))) = heap.pop() {
                if d >= self.cost[base + u as usize] {
                    continue;
                }
                if saved_gen[u as usize] != gen {
                    saved_gen[u as usize] = gen;
                    saved_val[u as usize] = self.cost[base + u as usize];
                    saved_list.push(u);
                }
                self.cost[base + u as usize] = d;
                for &q in preds(u) {
                    if d + 1 < self.cost[base + q as usize] {
                        heap.push(Reverse((d + 1, q)));
                    }
                }
            }

            // Dirty switches: a changed output-channel cost or a changed
            // turn mask invalidates the candidate rows; nothing else can.
            dirty_nodes.clear();
            let mut changed_any = false;
            for &c in &saved_list {
                if self.cost[base + c as usize] != saved_val[c as usize] {
                    changed_any = true;
                    stats.changed_costs += 1;
                    let v = ch.start(c);
                    if alive_node[v as usize] && v != t && node_gen[v as usize] != gen {
                        node_gen[v as usize] = gen;
                        dirty_nodes.push(v);
                    }
                }
            }
            for &v in &turn_dirty_nodes {
                if alive_node[v as usize] && v != t && node_gen[v as usize] != gen {
                    node_gen[v as usize] = gen;
                    dirty_nodes.push(v);
                }
            }
            for &w in newly_dead_nodes {
                let mb = (t as usize * n as usize + w as usize) * slots;
                self.port_mask[mb..mb + slots].fill(0);
                self.any_mask[mb..mb + slots].fill(0);
            }
            if changed_any || !dirty_nodes.is_empty() {
                stats.touched_destinations += 1;
            }

            // Recompute the dirty rows exactly as the full build does.
            for &v in &dirty_nodes {
                stats.touched_rows += 1;
                if !switch_touched[v as usize] {
                    switch_touched[v as usize] = true;
                    stats.touched_switches += 1;
                }
                let outs = ch.outputs(v);
                let mbase = (t as usize * n as usize + v as usize) * slots;
                let mut best = u16::MAX;
                for &c in outs {
                    best = best.min(self.cost[base + c as usize]);
                }
                if best == u16::MAX {
                    return Err(RoutingError::Disconnected { src: v, dst: t });
                }
                let mut mask = 0u16;
                let mut any = 0u16;
                for (p, &c) in outs.iter().enumerate() {
                    if self.cost[base + c as usize] == best {
                        mask |= 1 << p;
                    }
                    if self.cost[base + c as usize] != u16::MAX {
                        any |= 1 << p;
                    }
                }
                self.port_mask[mbase + INJECTION_SLOT] = mask;
                self.any_mask[mbase + INJECTION_SLOT] = any;
                for (q, &_in_ch) in ch.inputs(v).iter().enumerate() {
                    let allowed = new_table.mask(v, q as u8);
                    let mut best = u16::MAX;
                    for (p, &c) in outs.iter().enumerate() {
                        if (allowed >> p) & 1 == 1 {
                            best = best.min(self.cost[base + c as usize]);
                        }
                    }
                    let mut mask = 0u16;
                    let mut any = 0u16;
                    if best != u16::MAX {
                        for (p, &c) in outs.iter().enumerate() {
                            if (allowed >> p) & 1 == 1 {
                                if self.cost[base + c as usize] == best {
                                    mask |= 1 << p;
                                }
                                if self.cost[base + c as usize] != u16::MAX {
                                    any |= 1 << p;
                                }
                            }
                        }
                    }
                    self.port_mask[mbase + 1 + q] = mask;
                    self.any_mask[mbase + 1 + q] = any;
                }
            }
        }
        Ok(stats)
    }

    /// Number of switches.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Input slots per node (max ports + 1).
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Remaining-hop count for a packet to `t` that traverses `c` next
    /// (`u16::MAX` if that is a dead end).
    #[inline]
    pub fn cost(&self, t: NodeId, c: ChannelId) -> u16 {
        self.cost[t as usize * self.num_channels as usize + c as usize]
    }

    /// Minimal legal output ports for a packet to `t` at node `v` arriving
    /// on `slot` ([`INJECTION_SLOT`] or `input port + 1`). Zero only for
    /// (slot, destination) combinations that cannot occur on minimal routes.
    #[inline]
    pub fn candidates(&self, t: NodeId, v: NodeId, slot: usize) -> u16 {
        debug_assert!(slot < self.slots);
        self.port_mask[(t as usize * self.num_nodes as usize + v as usize) * self.slots + slot]
    }

    /// Every turn-legal output port with a finite remaining cost to `t` —
    /// the candidate set for *non-minimal* (misrouting) modes. Both
    /// algorithms in the paper are non-minimal adaptive; the simulator's
    /// `misroute_patience` option uses this mask as the escape set.
    /// Always a superset of [`RoutingTables::candidates`].
    #[inline]
    pub fn candidates_any(&self, t: NodeId, v: NodeId, slot: usize) -> u16 {
        debug_assert!(slot < self.slots);
        self.any_mask[(t as usize * self.num_nodes as usize + v as usize) * self.slots + slot]
    }

    /// Hop count (number of channels) of a minimal legal route from `s` to
    /// `t`; `0` when `s == t`.
    pub fn route_len(&self, cg: &CommGraph, s: NodeId, t: NodeId) -> u16 {
        if s == t {
            return 0;
        }
        let mask = self.candidates(t, s, INJECTION_SLOT);
        debug_assert_ne!(mask, 0);
        let ch = cg.channels();
        let mut best = u16::MAX;
        for (p, &c) in ch.outputs(s).iter().enumerate() {
            if (mask >> p) & 1 == 1 {
                best = best.min(self.cost(t, c));
            }
        }
        best
    }

    /// Extracts one concrete minimal route (sequence of channels) from `s`
    /// to `t`, always taking the lowest-numbered candidate port.
    pub fn route(&self, cg: &CommGraph, s: NodeId, t: NodeId) -> Vec<ChannelId> {
        let ch = cg.channels();
        let mut path = Vec::new();
        let mut v = s;
        let mut slot = INJECTION_SLOT;
        while v != t {
            let mask = self.candidates(t, v, slot);
            assert_ne!(mask, 0, "route extraction hit a dead end at node {v}");
            // Lowest-numbered minimal port.
            let p = mask.trailing_zeros() as usize;
            let c = ch.outputs(v)[p];
            path.push(c);
            slot = ch.in_port(c) as usize + 1;
            v = ch.sink(c);
            debug_assert!(path.len() <= self.num_channels as usize, "route is cycling");
        }
        path
    }

    /// Average minimal route length over all ordered pairs `s != t`.
    pub fn avg_route_len(&self, cg: &CommGraph) -> f64 {
        let n = self.num_nodes;
        if n < 2 {
            return 0.0;
        }
        let mut sum = 0u64;
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    sum += self.route_len(cg, s, t) as u64;
                }
            }
        }
        sum as f64 / (n as u64 * (n as u64 - 1)) as f64
    }

    /// Longest minimal route over all pairs.
    pub fn max_route_len(&self, cg: &CommGraph) -> u16 {
        let n = self.num_nodes;
        let mut max = 0;
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    max = max.max(self.route_len(cg, s, t));
                }
            }
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_topology::{gen, CommGraph, CoordinatedTree, PreorderPolicy};

    fn cg_of(topo: &irnet_topology::Topology) -> CommGraph {
        let tree = CoordinatedTree::build(topo, PreorderPolicy::M1, 0).unwrap();
        CommGraph::build(topo, &tree)
    }

    #[test]
    fn unrestricted_routing_matches_graph_distance() {
        let topo = gen::mesh(4, 4).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::all_allowed(&cg);
        let rt = RoutingTables::build(&cg, &table).unwrap();
        // In a mesh with all turns allowed, route lengths equal Manhattan
        // distance.
        let id = |x: u32, y: u32| y * 4 + x;
        assert_eq!(rt.route_len(&cg, id(0, 0), id(3, 3)), 6);
        assert_eq!(rt.route_len(&cg, id(1, 1), id(1, 2)), 1);
        assert_eq!(rt.route_len(&cg, id(2, 2), id(2, 2)), 0);
    }

    #[test]
    fn routes_are_consistent_with_costs() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), 3).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::all_allowed(&cg);
        let rt = RoutingTables::build(&cg, &table).unwrap();
        let ch = cg.channels();
        for s in 0..topo.num_nodes() {
            for t in 0..topo.num_nodes() {
                if s == t {
                    continue;
                }
                let path = rt.route(&cg, s, t);
                assert_eq!(path.len() as u16, rt.route_len(&cg, s, t));
                // Path is connected and ends at t.
                let mut v = s;
                for &c in &path {
                    assert_eq!(ch.start(c), v);
                    v = ch.sink(c);
                }
                assert_eq!(v, t);
            }
        }
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        for seed in 0..4u64 {
            let topo = gen::random_irregular(gen::IrregularParams::paper(48, 4), seed).unwrap();
            let cg = cg_of(&topo);
            let table = TurnTable::from_direction_rule(&cg, |din, dout| {
                !(din.goes_down() && dout.goes_up())
            });
            let serial = RoutingTables::build_with_threads(&cg, &table, 1).unwrap();
            for threads in [2, 3, 5, 8] {
                let par = RoutingTables::build_with_threads(&cg, &table, threads).unwrap();
                assert_eq!(serial, par, "threads={threads} seed={seed}");
            }
            // The auto-threaded default path must agree too.
            assert_eq!(serial, RoutingTables::build(&cg, &table).unwrap());
        }
    }

    #[test]
    fn parallel_build_reports_the_serial_error() {
        // Prohibiting every turn leaves only single-hop routes, so the
        // first multi-hop pair in (dst, src) scan order is the witness.
        let topo = gen::random_irregular(gen::IrregularParams::paper(40, 4), 9).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::from_direction_rule(&cg, |_, _| false);
        let serial = RoutingTables::build_with_threads(&cg, &table, 1).unwrap_err();
        for threads in [2, 3, 8] {
            let par = RoutingTables::build_with_threads(&cg, &table, threads).unwrap_err();
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn turn_restrictions_can_lengthen_routes() {
        // A ring restricted to "clockwise after clockwise only" forces long
        // ways around for some pairs.
        let topo = gen::ring(6).unwrap();
        let cg = cg_of(&topo);
        let free = RoutingTables::build(&cg, &TurnTable::all_allowed(&cg)).unwrap();
        // up*/down*-like rule on the ring: never follow a down channel with
        // an up channel.
        let restricted =
            TurnTable::from_direction_rule(&cg, |din, dout| !(din.goes_down() && dout.goes_up()));
        let rt = RoutingTables::build(&cg, &restricted).unwrap();
        assert!(rt.avg_route_len(&cg) >= free.avg_route_len(&cg));
        assert!(rt.max_route_len(&cg) >= free.max_route_len(&cg));
    }

    #[test]
    fn disconnection_is_reported() {
        // Prohibit every turn: on a path graph of 3 nodes, node 0 cannot
        // reach node 2 (the middle node would need a turn).
        let topo = irnet_topology::Topology::new(3, 2, [(0, 1), (1, 2)]).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::from_direction_rule(&cg, |_, _| false);
        // Same-direction transitions are always allowed; on this path the
        // two hops 0->1->2 share a direction only if both links point the
        // same way in the tree. Build and inspect.
        match RoutingTables::build(&cg, &table) {
            Ok(rt) => {
                // If it built, connectivity must genuinely hold.
                assert_ne!(rt.candidates(2, 0, INJECTION_SLOT), 0);
            }
            Err(RoutingError::Disconnected { .. }) => {}
        }
        // A truly disconnecting table: prohibit every pair at node 1
        // explicitly.
        let mut hard = TurnTable::all_allowed(&cg);
        let ch = cg.channels();
        for &in_ch in ch.inputs(1) {
            for &out_ch in ch.outputs(1) {
                if out_ch != ch.reverse(in_ch) {
                    hard.prohibit(&cg, in_ch, out_ch);
                }
            }
        }
        assert!(matches!(
            RoutingTables::build(&cg, &hard),
            Err(RoutingError::Disconnected { .. })
        ));
    }

    #[test]
    fn masked_build_with_no_faults_matches_plain_build() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), 3).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::all_allowed(&cg);
        let plain = RoutingTables::build(&cg, &table).unwrap();
        let dead = vec![false; cg.num_channels() as usize];
        let alive = vec![true; cg.num_nodes() as usize];
        let masked = RoutingTables::build_masked(&cg, &table, &dead, &alive).unwrap();
        for t in 0..topo.num_nodes() {
            for c in 0..cg.num_channels() {
                assert_eq!(plain.cost(t, c), masked.cost(t, c));
            }
            for v in 0..topo.num_nodes() {
                for slot in 0..plain.slots() {
                    assert_eq!(plain.candidates(t, v, slot), masked.candidates(t, v, slot));
                    assert_eq!(
                        plain.candidates_any(t, v, slot),
                        masked.candidates_any(t, v, slot)
                    );
                }
            }
        }
    }

    #[test]
    fn masked_build_excludes_dead_channels_everywhere() {
        // Square 0-1-2-3-0 with a diagonal 1-3; kill the diagonal.
        let topo =
            irnet_topology::Topology::new(4, 4, [(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]).unwrap();
        let cg = cg_of(&topo);
        let ch = cg.channels();
        let table = TurnTable::all_allowed(&cg);
        let l = topo.link_between(1, 3).unwrap();
        let mut dead = vec![false; cg.num_channels() as usize];
        dead[2 * l as usize] = true;
        dead[2 * l as usize + 1] = true;
        let alive = vec![true; 4];
        let rt = RoutingTables::build_masked(&cg, &table, &dead, &alive).unwrap();
        // No candidate mask — injection or transit, minimal or any — may
        // contain a dead output port.
        for t in 0..4u32 {
            for v in 0..4u32 {
                if t == v {
                    continue;
                }
                for slot in 0..rt.slots() {
                    let any = rt.candidates_any(t, v, slot);
                    for (p, &c) in ch.outputs(v).iter().enumerate() {
                        if dead[c as usize] {
                            assert_eq!((any >> p) & 1, 0, "dead channel {c} in mask");
                        }
                    }
                }
            }
        }
        // 1 -> 3 must now detour through 0 or 2: two hops instead of one.
        assert_eq!(rt.route_len(&cg, 1, 3), 2);
        // Unmasked, the diagonal is a one-hop route.
        let free = RoutingTables::build(&cg, &table).unwrap();
        assert_eq!(free.route_len(&cg, 1, 3), 1);
    }

    #[test]
    fn masked_build_skips_dead_nodes() {
        // Path 0-1-2 plus 0-2 chord: node 1 dies, 0<->2 still routable.
        let topo = irnet_topology::Topology::new(3, 4, [(0, 1), (1, 2), (0, 2)]).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::all_allowed(&cg);
        let mut dead = vec![false; cg.num_channels() as usize];
        for l in [
            topo.link_between(0, 1).unwrap(),
            topo.link_between(1, 2).unwrap(),
        ] {
            dead[2 * l as usize] = true;
            dead[2 * l as usize + 1] = true;
        }
        let alive = vec![true, false, true];
        let rt = RoutingTables::build_masked(&cg, &table, &dead, &alive).unwrap();
        assert_eq!(rt.route_len(&cg, 0, 2), 1);
        // Dead destination: no masks at all.
        assert_eq!(rt.candidates(1, 0, INJECTION_SLOT), 0);
        assert_eq!(rt.candidates_any(1, 0, INJECTION_SLOT), 0);
        // Disconnecting the alive pair is still an error.
        let mut all_dead = vec![true; cg.num_channels() as usize];
        let chord = topo.link_between(0, 2).unwrap();
        all_dead[2 * chord as usize] = false;
        // Reverse of the chord stays dead: 2 cannot reach 0.
        let err = RoutingTables::build_masked(&cg, &table, &all_dead, &alive).unwrap_err();
        assert!(matches!(err, RoutingError::Disconnected { .. }));
    }

    #[test]
    fn any_mask_is_a_superset_of_minimal_mask() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), 5).unwrap();
        let cg = cg_of(&topo);
        let table =
            TurnTable::from_direction_rule(&cg, |din, dout| !(din.goes_down() && dout.goes_up()));
        let rt = RoutingTables::build(&cg, &table).unwrap();
        let ch = cg.channels();
        let mut strictly_larger_somewhere = false;
        for t in 0..topo.num_nodes() {
            for v in 0..topo.num_nodes() {
                if t == v {
                    continue;
                }
                for slot in 0..=ch.inputs(v).len() {
                    let min = rt.candidates(t, v, slot);
                    let any = rt.candidates_any(t, v, slot);
                    assert_eq!(any & min, min, "minimal not within any");
                    if any != min {
                        strictly_larger_somewhere = true;
                    }
                }
            }
        }
        assert!(
            strictly_larger_somewhere,
            "non-minimal options never exist?"
        );
    }

    /// Element-wise equality of two tables over every public surface.
    fn assert_tables_equal(a: &RoutingTables, b: &RoutingTables, ctx: &str) {
        assert_eq!(a.num_nodes, b.num_nodes, "{ctx}: num_nodes");
        assert_eq!(a.num_channels, b.num_channels, "{ctx}: num_channels");
        assert_eq!(a.slots, b.slots, "{ctx}: slots");
        assert_eq!(a.cost, b.cost, "{ctx}: cost");
        assert_eq!(a.port_mask, b.port_mask, "{ctx}: port_mask");
        assert_eq!(a.any_mask, b.any_mask, "{ctx}: any_mask");
    }

    /// `rule` restricted to pairs of channels that are both alive — the
    /// same lift the repair layer produces.
    fn lifted(cg: &CommGraph, rule: &TurnTable, dead: &[bool]) -> TurnTable {
        TurnTable::from_channel_rule(cg, |i, o| {
            !dead[i as usize] && !dead[o as usize] && rule.is_allowed(cg, i, o)
        })
    }

    #[test]
    fn patch_masked_matches_rebuild_over_cumulative_link_deaths() {
        for seed in 0..4u64 {
            let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), seed).unwrap();
            let cg = cg_of(&topo);
            let rule = TurnTable::all_allowed(&cg);
            let nch = cg.num_channels() as usize;
            let mut dead = vec![false; nch];
            let alive = vec![true; cg.num_nodes() as usize];
            let mut old_table = lifted(&cg, &rule, &dead);
            let mut patched = RoutingTables::build_masked(&cg, &old_table, &dead, &alive).unwrap();
            // Kill links one at a time (skipping those that would
            // disconnect the graph) and patch after each death.
            let mut killed = 0;
            for l in 0..topo.num_links() {
                let mut next_dead = dead.clone();
                next_dead[2 * l as usize] = true;
                next_dead[2 * l as usize + 1] = true;
                let new_table = lifted(&cg, &rule, &next_dead);
                let fresh = match RoutingTables::build_masked(&cg, &new_table, &next_dead, &alive) {
                    Ok(t) => t,
                    Err(RoutingError::Disconnected { .. }) => continue,
                };
                let newly = [2 * l, 2 * l + 1];
                let stats = patched
                    .patch_masked(&cg, &old_table, &new_table, &next_dead, &alive, &newly, &[])
                    .unwrap();
                assert!(stats.removed_edges > 0, "seed {seed} link {l}: no delta");
                assert_tables_equal(&patched, &fresh, &format!("seed {seed} link {l}"));
                dead = next_dead;
                old_table = new_table;
                killed += 1;
                if killed == 4 {
                    break;
                }
            }
            assert!(killed > 0, "seed {seed}: no killable link");
        }
    }

    #[test]
    fn patch_masked_applies_pure_turn_deltas_both_ways() {
        // No deaths at all: the delta is purely prohibitions (removed
        // edges) one way and releases (added edges) the other.
        let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), 9).unwrap();
        let cg = cg_of(&topo);
        let open = TurnTable::all_allowed(&cg);
        let restricted =
            TurnTable::from_direction_rule(&cg, |din, dout| !(din.goes_down() && dout.goes_up()));
        let dead = vec![false; cg.num_channels() as usize];
        let alive = vec![true; cg.num_nodes() as usize];

        // open -> restricted: removals only.
        let mut rt = RoutingTables::build_masked(&cg, &open, &dead, &alive).unwrap();
        let fresh = RoutingTables::build_masked(&cg, &restricted, &dead, &alive).unwrap();
        let stats = rt
            .patch_masked(&cg, &open, &restricted, &dead, &alive, &[], &[])
            .unwrap();
        assert!(stats.removed_edges > 0 && stats.added_edges == 0);
        assert_tables_equal(&rt, &fresh, "open -> restricted");

        // restricted -> open: additions only (cost decreases).
        let fresh_open = RoutingTables::build_masked(&cg, &open, &dead, &alive).unwrap();
        let stats = rt
            .patch_masked(&cg, &restricted, &open, &dead, &alive, &[], &[])
            .unwrap();
        assert!(stats.added_edges > 0 && stats.removed_edges == 0);
        assert_tables_equal(&rt, &fresh_open, "restricted -> open");
    }

    #[test]
    fn patch_masked_handles_simultaneous_deaths_and_releases() {
        // The regression shape real repairs produce: a link dies (removed
        // edges) while the replacement table also *releases* turns (added
        // edges) in the same delta. An invalidated channel can then
        // re-settle below its pre-patch cost via an added edge, and that
        // decrease must still reach its never-invalidated predecessors.
        for seed in 0..6u64 {
            let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), seed).unwrap();
            let cg = cg_of(&topo);
            let restricted = TurnTable::from_direction_rule(&cg, |din, dout| {
                !(din.goes_down() && dout.goes_up())
            });
            let open = TurnTable::all_allowed(&cg);
            let nch = cg.num_channels() as usize;
            let no_dead = vec![false; nch];
            let alive = vec![true; cg.num_nodes() as usize];
            let old_table = lifted(&cg, &restricted, &no_dead);
            let before = RoutingTables::build_masked(&cg, &old_table, &no_dead, &alive).unwrap();
            let mut tested = 0;
            for l in 0..topo.num_links() {
                let mut dead = no_dead.clone();
                dead[2 * l as usize] = true;
                dead[2 * l as usize + 1] = true;
                // Widen the rule while the link dies: removals + additions.
                let new_table = lifted(&cg, &open, &dead);
                let fresh = match RoutingTables::build_masked(&cg, &new_table, &dead, &alive) {
                    Ok(t) => t,
                    Err(RoutingError::Disconnected { .. }) => continue,
                };
                let mut patched = before.clone();
                let stats = patched
                    .patch_masked(
                        &cg,
                        &old_table,
                        &new_table,
                        &dead,
                        &alive,
                        &[2 * l, 2 * l + 1],
                        &[],
                    )
                    .unwrap();
                assert!(stats.removed_edges > 0 && stats.added_edges > 0);
                assert_tables_equal(&patched, &fresh, &format!("seed {seed} link {l}"));
                tested += 1;
                if tested == 3 {
                    break;
                }
            }
            assert!(tested > 0, "seed {seed}: no killable link");
        }
    }

    #[test]
    fn patch_masked_matches_rebuild_after_a_switch_death() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), 3).unwrap();
        let cg = cg_of(&topo);
        let rule = TurnTable::all_allowed(&cg);
        let nch = cg.num_channels() as usize;
        let no_dead = vec![false; nch];
        let all_alive = vec![true; cg.num_nodes() as usize];
        let old_table = lifted(&cg, &rule, &no_dead);
        for node in 0..topo.num_nodes() {
            let mut dead = no_dead.clone();
            let mut newly_ch = Vec::new();
            for &(_, l) in topo.neighbors(node) {
                dead[2 * l as usize] = true;
                dead[2 * l as usize + 1] = true;
                newly_ch.push(2 * l);
                newly_ch.push(2 * l + 1);
            }
            let mut alive = all_alive.clone();
            alive[node as usize] = false;
            let new_table = lifted(&cg, &rule, &dead);
            let fresh = match RoutingTables::build_masked(&cg, &new_table, &dead, &alive) {
                Ok(t) => t,
                Err(RoutingError::Disconnected { .. }) => continue,
            };
            let mut patched =
                RoutingTables::build_masked(&cg, &old_table, &no_dead, &all_alive).unwrap();
            patched
                .patch_masked(
                    &cg,
                    &old_table,
                    &new_table,
                    &dead,
                    &alive,
                    &newly_ch,
                    &[node],
                )
                .unwrap();
            assert_tables_equal(&patched, &fresh, &format!("dead switch {node}"));
            return; // one removable switch suffices
        }
        panic!("no removable switch found");
    }

    #[test]
    fn patch_masked_reports_disconnection_like_the_full_build() {
        // Path 0-1-2: killing either link cuts an alive pair.
        let topo = irnet_topology::Topology::new(3, 2, [(0, 1), (1, 2)]).unwrap();
        let cg = cg_of(&topo);
        let rule = TurnTable::all_allowed(&cg);
        let no_dead = vec![false; cg.num_channels() as usize];
        let alive = vec![true; 3];
        let old_table = lifted(&cg, &rule, &no_dead);
        let mut rt = RoutingTables::build_masked(&cg, &old_table, &no_dead, &alive).unwrap();
        let mut dead = no_dead;
        dead[0] = true;
        dead[1] = true;
        let new_table = lifted(&cg, &rule, &dead);
        let err = rt
            .patch_masked(&cg, &old_table, &new_table, &dead, &alive, &[0, 1], &[])
            .unwrap_err();
        assert!(matches!(err, RoutingError::Disconnected { .. }));
    }

    #[test]
    fn candidate_masks_only_contain_minimal_ports() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 8).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::all_allowed(&cg);
        let rt = RoutingTables::build(&cg, &table).unwrap();
        let ch = cg.channels();
        for t in 0..topo.num_nodes() {
            for v in 0..topo.num_nodes() {
                if v == t {
                    continue;
                }
                let mask = rt.candidates(t, v, INJECTION_SLOT);
                let outs = ch.outputs(v);
                let best: u16 = outs.iter().map(|&c| rt.cost(t, c)).min().unwrap();
                for (p, &c) in outs.iter().enumerate() {
                    let picked = (mask >> p) & 1 == 1;
                    assert_eq!(picked, rt.cost(t, c) == best);
                }
            }
        }
    }
}
