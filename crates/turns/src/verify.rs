use crate::cdg::{ChannelCycle, ChannelDepGraph};
use crate::routing::{RoutingError, RoutingTables};
use crate::turn_table::TurnTable;
use irnet_topology::CommGraph;

/// The result of verifying a turn table: deadlock freedom, connectivity,
/// and path-quality statistics.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// `None` means the channel dependency graph is acyclic.
    pub cycle: Option<ChannelCycle>,
    /// `None` means every ordered pair of switches is connected.
    pub disconnected: Option<RoutingError>,
    /// Average minimal route length over all pairs; `None` if disconnected.
    pub avg_route_len: Option<f64>,
    /// Longest minimal route; `None` if disconnected.
    pub max_route_len: Option<u16>,
    /// Prohibited non-180° channel pairs in the table.
    pub prohibited_pairs: usize,
}

impl VerifyReport {
    /// Deadlock-free and fully connected.
    pub fn is_ok(&self) -> bool {
        self.cycle.is_none() && self.disconnected.is_none()
    }
}

/// Verifies a turn table over a communication graph: checks the channel
/// dependency graph for cycles (deadlock) and builds the routing tables to
/// check connectivity. This is the machine-checked form of the paper's
/// Theorem 1.
pub fn verify_routing(cg: &CommGraph, table: &TurnTable) -> VerifyReport {
    let dep = ChannelDepGraph::build(cg, table);
    let cycle = dep.find_cycle();
    let (disconnected, avg, max) = match RoutingTables::build(cg, table) {
        Ok(rt) => (None, Some(rt.avg_route_len(cg)), Some(rt.max_route_len(cg))),
        Err(e) => (Some(e), None, None),
    };
    VerifyReport {
        cycle,
        disconnected,
        avg_route_len: avg,
        max_route_len: max,
        prohibited_pairs: table.num_prohibited_turns(cg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_topology::{gen, CoordinatedTree, PreorderPolicy};

    #[test]
    fn verify_flags_deadlock_on_unrestricted_torus() {
        let topo = gen::torus(3, 3).unwrap();
        let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        let cg = CommGraph::build(&topo, &tree);
        let report = verify_routing(&cg, &TurnTable::all_allowed(&cg));
        assert!(report.cycle.is_some());
        assert!(report.disconnected.is_none());
        assert!(!report.is_ok());
    }

    #[test]
    fn verify_accepts_safe_rule_on_tree() {
        let topo = gen::kary_tree(10, 3).unwrap();
        let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        let cg = CommGraph::build(&topo, &tree);
        let report = verify_routing(&cg, &TurnTable::all_allowed(&cg));
        assert!(
            report.is_ok(),
            "pure trees cannot deadlock: {:?}",
            report.cycle
        );
        assert!(report.avg_route_len.unwrap() > 0.0);
        assert!(report.max_route_len.unwrap() > 0);
        assert_eq!(report.prohibited_pairs, 0);
    }

    #[test]
    fn disconnected_tables_have_no_route_stats() {
        let topo = gen::kary_tree(7, 2).unwrap();
        let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        let cg = CommGraph::build(&topo, &tree);
        // Prohibit every direction-changing turn everywhere: inner switches
        // cannot forward, so the tree disconnects.
        let table = TurnTable::from_direction_rule(&cg, |_, _| false);
        let report = verify_routing(&cg, &table);
        assert!(report.disconnected.is_some());
        assert_eq!(report.avg_route_len, None);
        assert_eq!(report.max_route_len, None);
        assert!(!report.is_ok());
    }
}
