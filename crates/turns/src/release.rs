//! Generic per-node release of redundant prohibited turns.
//!
//! Both the DOWN/UP routing (§4.3 of the paper) and the L-turn routing it
//! compares against run a *cycle detection* pass after applying their global
//! prohibited-turn sets: a prohibited turn at a node is redundant if
//! re-allowing it cannot close a turn cycle in this particular communication
//! graph, and releasing redundant turns gives packets more (and shorter)
//! legal paths.
//!
//! The safety test is channel-level: releasing the candidate `(e1, e2)` at
//! node `v` closes a cycle iff the current channel dependency graph has a
//! directed path from `e2` back to `e1` (a path that used the candidate edge
//! mid-way would pass through `e1` first, so searching without the candidate
//! edge is equivalent). Candidates are scanned in node-id order, then
//! (input port, output port) order, and each release commits before the next
//! test — the deterministic sequential pass the paper describes.
//!
//! Releasing one turn adds exactly one edge to the dependency graph, so the
//! pass never rebuilds it: the base graph is built once and committed
//! releases are layered on top through a [`PathOracle`], whose reusable
//! visit-stamp buffer also removes the per-query visited-set allocation.
//! On 1024+-switch fabrics this turns the release pass from the Phase-3
//! bottleneck into noise (see DESIGN.md §13).

use crate::cdg::{ChannelDepGraph, PathOracle};
use crate::turn_table::TurnTable;
use irnet_topology::{ChannelId, CommGraph};

/// Releases every redundant prohibited turn accepted by `candidate`,
/// mutating `table`; returns the released `(in_ch, out_ch)` pairs.
///
/// The resulting table is deadlock-free whenever the input table was: each
/// release is individually checked against the up-to-date dependency graph
/// (base graph plus every previously committed release).
pub fn release_redundant_turns(
    cg: &CommGraph,
    table: &mut TurnTable,
    mut candidate: impl FnMut(ChannelId, ChannelId) -> bool,
) -> Vec<(ChannelId, ChannelId)> {
    let ch = cg.channels();
    let mut released = Vec::new();
    let dep = ChannelDepGraph::build(cg, table);
    let mut oracle = PathOracle::new(&dep);
    for v in 0..cg.num_nodes() {
        for &in_ch in ch.inputs(v) {
            for &out_ch in ch.outputs(v) {
                if out_ch == ch.reverse(in_ch)
                    || table.is_allowed(cg, in_ch, out_ch)
                    || !candidate(in_ch, out_ch)
                {
                    continue;
                }
                if !oracle.has_path(out_ch, in_ch) {
                    table.release(cg, in_ch, out_ch);
                    released.push((in_ch, out_ch));
                    oracle.add_edge(in_ch, out_ch);
                }
            }
        }
    }
    released
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_topology::{gen, CommGraph, CoordinatedTree, PreorderPolicy};

    #[test]
    fn releasing_everything_possible_keeps_acyclicity() {
        for seed in 0..4 {
            let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), seed).unwrap();
            let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
            let cg = CommGraph::build(&topo, &tree);
            // Start from a very restrictive rule and release greedily.
            let mut table = TurnTable::from_direction_rule(&cg, |din, dout| {
                !din.goes_down()
                    && !matches!(
                        din,
                        irnet_topology::Direction::LCross | irnet_topology::Direction::RCross
                    )
                    || dout.goes_down()
            });
            let dep0 = ChannelDepGraph::build(&cg, &table);
            assert!(dep0.is_acyclic());
            let released = release_redundant_turns(&cg, &mut table, |_, _| true);
            let dep1 = ChannelDepGraph::build(&cg, &table);
            assert!(
                dep1.is_acyclic(),
                "greedy release broke acyclicity (seed {seed})"
            );
            assert!(dep1.num_edges() >= dep0.num_edges() + released.len());
        }
    }

    /// The pre-oracle implementation: rebuild the dependency graph after
    /// every committed release and query it directly. Kept as the reference
    /// the incremental pass must match decision-for-decision.
    fn release_naive(
        cg: &CommGraph,
        table: &mut TurnTable,
        mut candidate: impl FnMut(ChannelId, ChannelId) -> bool,
    ) -> Vec<(ChannelId, ChannelId)> {
        let ch = cg.channels();
        let mut released = Vec::new();
        let mut dep = ChannelDepGraph::build(cg, table);
        for v in 0..cg.num_nodes() {
            for &in_ch in ch.inputs(v) {
                for &out_ch in ch.outputs(v) {
                    if out_ch == ch.reverse(in_ch)
                        || table.is_allowed(cg, in_ch, out_ch)
                        || !candidate(in_ch, out_ch)
                    {
                        continue;
                    }
                    if !dep.has_path(out_ch, in_ch) {
                        table.release(cg, in_ch, out_ch);
                        released.push((in_ch, out_ch));
                        dep = ChannelDepGraph::build(cg, table);
                    }
                }
            }
        }
        released
    }

    #[test]
    fn incremental_pass_matches_the_rebuilding_reference() {
        for seed in 0..6 {
            let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), seed).unwrap();
            let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
            let cg = CommGraph::build(&topo, &tree);
            let make_table = || {
                TurnTable::from_direction_rule(&cg, |din, dout| {
                    !din.goes_down()
                        && !matches!(
                            din,
                            irnet_topology::Direction::LCross | irnet_topology::Direction::RCross
                        )
                        || dout.goes_down()
                })
            };
            let mut fast_table = make_table();
            let mut naive_table = make_table();
            let fast = release_redundant_turns(&cg, &mut fast_table, |_, _| true);
            let naive = release_naive(&cg, &mut naive_table, |_, _| true);
            assert_eq!(fast, naive, "release decisions diverged (seed {seed})");
            assert_eq!(fast_table, naive_table, "tables diverged (seed {seed})");
        }
    }

    #[test]
    fn filter_restricts_candidates() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), 1).unwrap();
        let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        let cg = CommGraph::build(&topo, &tree);
        let mut table = TurnTable::from_direction_rule(&cg, |_, _| false);
        let released = release_redundant_turns(&cg, &mut table, |_, _| false);
        assert!(released.is_empty());
        assert_eq!(table, TurnTable::from_direction_rule(&cg, |_, _| false));
    }
}
