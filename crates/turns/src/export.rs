//! Forwarding-table export — the deployable artifact of a routing.
//!
//! Real irregular-network fabrics (Autonet, Myrinet, InfiniBand subnets)
//! program each switch with a forwarding table; this module serializes the
//! computed [`RoutingTables`] into a line-oriented text format, one block
//! per switch, and parses it back for verification and tooling:
//!
//! ```text
//! irnet-fwd v1 nodes=4 slots=5
//! node 0
//!   dest 1 inj=0001 in0=0000 in1=0002 ...
//! ```
//!
//! Masks are hexadecimal output-port bitmasks, slot `inj` is the injection
//! decision, `inN` the decision for input port `N`. Parsing validates the
//! header and shape, so a round-trip equals the live tables bit for bit.

use crate::routing::{RoutingTables, INJECTION_SLOT};
use irnet_topology::{CommGraph, NodeId};

/// A parsed forwarding-table file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportedTables {
    num_nodes: u32,
    slots: usize,
    /// `[ (dest * n + node) * slots + slot ]`, same layout as the live
    /// tables.
    masks: Vec<u16>,
}

impl ExportedTables {
    /// Forwarding mask for (destination, node, slot).
    pub fn mask(&self, dest: NodeId, node: NodeId, slot: usize) -> u16 {
        self.masks[(dest as usize * self.num_nodes as usize + node as usize) * self.slots + slot]
    }

    /// Number of switches.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Input slots per switch (max ports + 1).
    pub fn slots(&self) -> usize {
        self.slots
    }
}

/// Serializes routing tables into the `irnet-fwd v1` text format.
pub fn export_tables(cg: &CommGraph, tables: &RoutingTables) -> String {
    let n = tables.num_nodes();
    let slots = tables.slots();
    let mut out = String::new();
    out.push_str(&format!("irnet-fwd v1 nodes={n} slots={slots}\n"));
    for v in 0..n {
        out.push_str(&format!("node {v}\n"));
        let in_slots = cg.channels().inputs(v).len() + 1;
        for t in 0..n {
            if t == v {
                continue;
            }
            out.push_str(&format!("  dest {t}"));
            for slot in 0..in_slots {
                let mask = tables.candidates(t, v, slot);
                if slot == INJECTION_SLOT {
                    out.push_str(&format!(" inj={mask:04x}"));
                } else {
                    out.push_str(&format!(" in{}={mask:04x}", slot - 1));
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Parse error for the forwarding-table format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FwdParseError(pub String);

impl std::fmt::Display for FwdParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "forwarding-table parse error: {}", self.0)
    }
}

impl std::error::Error for FwdParseError {}

/// Parses a file produced by [`export_tables`].
pub fn parse_exported(text: &str) -> Result<ExportedTables, FwdParseError> {
    let err = |msg: &str| FwdParseError(msg.to_string());
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| err("empty file"))?;
    let mut n = None;
    let mut slots = None;
    if !header.starts_with("irnet-fwd v1") {
        return Err(err("missing `irnet-fwd v1` header"));
    }
    for tok in header.split_whitespace() {
        if let Some(v) = tok.strip_prefix("nodes=") {
            n = Some(v.parse::<u32>().map_err(|_| err("bad nodes="))?);
        }
        if let Some(v) = tok.strip_prefix("slots=") {
            slots = Some(v.parse::<usize>().map_err(|_| err("bad slots="))?);
        }
    }
    let n = n.ok_or_else(|| err("header missing nodes="))?;
    let slots = slots.ok_or_else(|| err("header missing slots="))?;
    let mut masks = vec![0u16; n as usize * n as usize * slots];
    let mut node: Option<u32> = None;
    for line in lines {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(v) = line.strip_prefix("node ") {
            let v = v.trim().parse::<u32>().map_err(|_| err("bad node id"))?;
            if v >= n {
                return Err(err("node id out of range"));
            }
            node = Some(v);
        } else if let Some(rest) = line.strip_prefix("dest ") {
            let v = node.ok_or_else(|| err("dest before any node"))?;
            let mut parts = rest.split_whitespace();
            let t = parts
                .next()
                .ok_or_else(|| err("missing dest id"))?
                .parse::<u32>()
                .map_err(|_| err("bad dest id"))?;
            if t >= n {
                return Err(err("dest id out of range"));
            }
            for p in parts {
                let (slot, hex) = if let Some(h) = p.strip_prefix("inj=") {
                    (INJECTION_SLOT, h)
                } else if let Some(rest) = p.strip_prefix("in") {
                    let (idx, h) = rest
                        .split_once('=')
                        .ok_or_else(|| err("malformed slot entry"))?;
                    (
                        idx.parse::<usize>().map_err(|_| err("bad slot index"))? + 1,
                        h,
                    )
                } else {
                    return Err(err("unknown token in dest line"));
                };
                if slot >= slots {
                    return Err(err("slot out of range"));
                }
                let mask = u16::from_str_radix(hex, 16).map_err(|_| err("bad hex mask"))?;
                masks[(t as usize * n as usize + v as usize) * slots + slot] = mask;
            }
        } else {
            return Err(err("unrecognized line"));
        }
    }
    Ok(ExportedTables {
        num_nodes: n,
        slots,
        masks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turn_table::TurnTable;
    use irnet_topology::{gen, CommGraph, CoordinatedTree, PreorderPolicy};

    fn setup() -> (CommGraph, RoutingTables) {
        let topo = gen::random_irregular(gen::IrregularParams::paper(12, 4), 5).unwrap();
        let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        let cg = CommGraph::build(&topo, &tree);
        let table =
            TurnTable::from_direction_rule(&cg, |din, dout| !(din.goes_down() && dout.goes_up()));
        let rt = RoutingTables::build(&cg, &table).unwrap();
        (cg, rt)
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let (cg, rt) = setup();
        let text = export_tables(&cg, &rt);
        let parsed = parse_exported(&text).unwrap();
        assert_eq!(parsed.num_nodes(), rt.num_nodes());
        let ch = cg.channels();
        for t in 0..rt.num_nodes() {
            for v in 0..rt.num_nodes() {
                if t == v {
                    continue;
                }
                for slot in 0..=ch.inputs(v).len() {
                    assert_eq!(
                        parsed.mask(t, v, slot),
                        rt.candidates(t, v, slot),
                        "mismatch at dest {t} node {v} slot {slot}"
                    );
                }
            }
        }
    }

    #[test]
    fn format_is_line_oriented_and_commented_lines_are_skipped() {
        let (cg, rt) = setup();
        let mut text = export_tables(&cg, &rt);
        text.push_str("# trailing comment\n\n");
        assert!(parse_exported(&text).is_ok());
        assert!(text.starts_with("irnet-fwd v1"));
        assert!(text.contains("node 0\n"));
        assert!(text.contains(" inj="));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(parse_exported("").is_err());
        assert!(parse_exported("not a header\n").is_err());
        assert!(parse_exported("irnet-fwd v1 nodes=2\n").is_err());
        assert!(parse_exported("irnet-fwd v1 nodes=2 slots=3\ndest 1 inj=0001\n").is_err());
        assert!(
            parse_exported("irnet-fwd v1 nodes=2 slots=3\nnode 0\n  dest 9 inj=0001\n").is_err()
        );
        assert!(parse_exported("irnet-fwd v1 nodes=2 slots=3\nnode 0\n  dest 1 inj=zz\n").is_err());
    }
}
