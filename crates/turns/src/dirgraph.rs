//! Direction-level graphs (paper Definitions 8–11).
//!
//! A [`DirGraph`] has one node per channel *direction* and one edge per
//! allowed *turn* `T(d1 → d2)`. The paper's Phase 2 manipulates these small
//! graphs; this module provides the operations that manipulation needs:
//! simple-cycle enumeration, the *realizability* predicate ("can this
//! direction cycle appear as a turn cycle in some communication graph?"),
//! and maximality auditing.
//!
//! Realizability: every direction moves strictly left or right in `X`
//! (preorder indices are unique) and up, down, or flat in `Y`. A direction
//! cycle can only be realized by a closed channel walk, which must return to
//! its starting coordinates. Therefore a cycle is realizable iff its
//! direction set mixes left and right movement **and** either mixes strict
//! up with strict down movement or is entirely `Y`-flat. (Sufficiency holds
//! for the communication graphs of this paper because cross links may span
//! arbitrarily many `X` units and levels are only constrained within ±1 per
//! hop; the counterexample construction in `irnet-core::phase2` exhibits
//! concrete realizations.)

/// Per-direction movement signs used by the realizability predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Movement {
    /// `-1` if `X` strictly decreases along the direction, `+1` if it
    /// strictly increases. `0` is not allowed (preorder `X` is unique).
    pub dx: i8,
    /// `-1` (up, toward the root), `0` (same level), or `+1` (down).
    pub dy: i8,
}

impl Movement {
    /// Creates a movement; panics on a zero `dx` (no direction is X-flat).
    pub fn new(dx: i8, dy: i8) -> Movement {
        assert!(dx == -1 || dx == 1, "directions always move strictly in X");
        assert!((-1..=1).contains(&dy));
        Movement { dx, dy }
    }
}

/// A small dense digraph over direction indices `0..n` (n ≤ 16).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirGraph {
    n: usize,
    /// `adj[i]` — bitmask of successors of direction `i`.
    adj: [u16; 16],
}

impl DirGraph {
    /// An edgeless graph on `n` directions.
    pub fn empty(n: usize) -> DirGraph {
        assert!(n <= 16);
        DirGraph { n, adj: [0; 16] }
    }

    /// The complete direction graph on `n` directions: every ordered pair
    /// `d1 != d2` is an edge (paper Definition 8).
    pub fn complete(n: usize) -> DirGraph {
        let mut g = DirGraph::empty(n);
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    g.add_edge(a, b);
                }
            }
        }
        g
    }

    /// Number of direction nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges (turns).
    pub fn num_edges(&self) -> usize {
        self.adj[..self.n]
            .iter()
            .map(|m| m.count_ones() as usize)
            .sum()
    }

    /// Adds turn `a → b`.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        debug_assert!(a < self.n && b < self.n && a != b);
        self.adj[a] |= 1 << b;
    }

    /// Removes turn `a → b`; returns whether it was present.
    pub fn remove_edge(&mut self, a: usize, b: usize) -> bool {
        let had = self.has_edge(a, b);
        self.adj[a] &= !(1 << b);
        had
    }

    /// Whether turn `a → b` is present.
    #[inline]
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        (self.adj[a] >> b) & 1 == 1
    }

    /// All edges as `(from, to)` pairs.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for a in 0..self.n {
            let mut m = self.adj[a];
            while m != 0 {
                let b = m.trailing_zeros() as usize;
                m &= m - 1;
                out.push((a, b));
            }
        }
        out
    }

    /// The edges present in `self` but not in `other`.
    pub fn edge_difference(&self, other: &DirGraph) -> Vec<(usize, usize)> {
        self.edges()
            .into_iter()
            .filter(|&(a, b)| !other.has_edge(a, b))
            .collect()
    }

    /// Enumerates all simple cycles (as node sequences, smallest node
    /// first) using Johnson-style DFS. Intended for graphs with ≤ 16 nodes.
    pub fn simple_cycles(&self) -> Vec<Vec<usize>> {
        let mut cycles = Vec::new();
        let mut path: Vec<usize> = Vec::new();
        // Only search for cycles whose minimum node is `start`; this
        // enumerates each simple cycle exactly once.
        for start in 0..self.n {
            path.clear();
            let mut on_path: u16 = 0;
            self.dfs_cycles(start, start, &mut path, &mut on_path, &mut cycles);
        }
        cycles
    }

    fn dfs_cycles(
        &self,
        start: usize,
        v: usize,
        path: &mut Vec<usize>,
        on_path: &mut u16,
        cycles: &mut Vec<Vec<usize>>,
    ) {
        path.push(v);
        *on_path |= 1 << v;
        let mut m = self.adj[v];
        while m != 0 {
            let w = m.trailing_zeros() as usize;
            m &= m - 1;
            if w == start {
                cycles.push(path.clone());
            } else if w > start && (*on_path >> w) & 1 == 0 {
                self.dfs_cycles(start, w, path, on_path, cycles);
            }
        }
        path.pop();
        *on_path &= !(1 << v);
    }

    /// Whether a direction cycle (given as its node set) is realizable as a
    /// turn cycle in a communication graph — see the module docs.
    pub fn cycle_is_realizable(nodes: &[usize], movement: &[Movement]) -> bool {
        let mut left = false;
        let mut right = false;
        let mut up = false;
        let mut down = false;
        for &d in nodes {
            let m = movement[d];
            if m.dx < 0 {
                left = true;
            } else {
                right = true;
            }
            if m.dy < 0 {
                up = true;
            }
            if m.dy > 0 {
                down = true;
            }
        }
        let x_mixed = left && right;
        let y_balanced = (up && down) || (!up && !down);
        x_mixed && y_balanced
    }

    /// All simple cycles that are realizable as turn cycles.
    pub fn realizable_cycles(&self, movement: &[Movement]) -> Vec<Vec<usize>> {
        assert_eq!(movement.len(), self.n);
        self.simple_cycles()
            .into_iter()
            .filter(|c| Self::cycle_is_realizable(c, movement))
            .collect()
    }

    /// True if no realizable cycle exists — the direction-level analogue of
    /// an *acyclic* DDG (paper Definition 10, via Lemma 1 refined with the
    /// realizability predicate so that harmless DDG cycles are permitted,
    /// as Figure 1(f) of the paper illustrates).
    pub fn is_safe(&self, movement: &[Movement]) -> bool {
        self.realizable_cycles(movement).is_empty()
    }

    /// Renders the direction graph in Graphviz DOT format with the given
    /// node labels — used to regenerate the paper's ADDG figures
    /// (Figures 2–6).
    pub fn to_dot(&self, name: &str, labels: &[&str]) -> String {
        assert_eq!(labels.len(), self.n, "one label per direction");
        let mut out = format!("digraph \"{name}\" {{\n  rankdir=LR;\n");
        for (i, l) in labels.iter().enumerate() {
            out.push_str(&format!("  n{i} [label=\"{l}\"];\n"));
        }
        for (a, b) in self.edges() {
            out.push_str(&format!("  n{a} -> n{b};\n"));
        }
        out.push_str("}\n");
        out
    }

    /// True if the graph is safe and adding any missing turn would create a
    /// realizable cycle (paper Definition 11 — *maximal* ADDG).
    pub fn is_maximal_safe(&self, movement: &[Movement]) -> bool {
        if !self.is_safe(movement) {
            return false;
        }
        let mut probe = self.clone();
        for a in 0..self.n {
            for b in 0..self.n {
                if a != b && !self.has_edge(a, b) {
                    probe.add_edge(a, b);
                    let safe = probe.is_safe(movement);
                    probe.remove_edge(a, b);
                    if safe {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(dx: i8, dy: i8) -> Movement {
        Movement::new(dx, dy)
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = DirGraph::complete(8);
        assert_eq!(g.num_edges(), 8 * 7);
        let g4 = DirGraph::complete(4);
        assert_eq!(g4.num_edges(), 12);
    }

    #[test]
    fn add_remove_has() {
        let mut g = DirGraph::empty(3);
        assert!(!g.has_edge(0, 1));
        g.add_edge(0, 1);
        assert!(g.has_edge(0, 1));
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn simple_cycles_of_a_triangle() {
        let mut g = DirGraph::empty(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 0);
        let cycles = g.simple_cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0], vec![0, 1, 2]);
    }

    #[test]
    fn simple_cycles_counts_two_cycles_once() {
        let mut g = DirGraph::empty(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert_eq!(g.simple_cycles(), vec![vec![0, 1]]);
    }

    #[test]
    fn complete_k3_has_five_cycles() {
        // K3 directed both ways: three 2-cycles and two 3-cycles.
        let g = DirGraph::complete(3);
        assert_eq!(g.simple_cycles().len(), 5);
    }

    #[test]
    fn realizability_requires_mixed_x() {
        // Two "left" directions can 2-cycle in the DDG but never in a CG.
        let movement = [mv(-1, -1), mv(-1, 1)];
        assert!(!DirGraph::cycle_is_realizable(&[0, 1], &movement));
    }

    #[test]
    fn realizability_requires_balanced_y() {
        // Left-up with right-up: X mixed but Y strictly decreases.
        let movement = [mv(-1, -1), mv(1, -1)];
        assert!(!DirGraph::cycle_is_realizable(&[0, 1], &movement));
        // Left-up with right-down: realizable (Figure 2(d) of the paper).
        let movement = [mv(-1, -1), mv(1, 1)];
        assert!(DirGraph::cycle_is_realizable(&[0, 1], &movement));
        // All-flat left/right pair: realizable (Figure 2(c)).
        let movement = [mv(-1, 0), mv(1, 0)];
        assert!(DirGraph::cycle_is_realizable(&[0, 1], &movement));
    }

    #[test]
    fn safe_and_maximal_on_a_two_direction_world() {
        // Directions: 0 = left-up "tree up", 1 = right-down "tree down".
        let movement = [mv(-1, -1), mv(1, 1)];
        let mut g = DirGraph::empty(2);
        g.add_edge(0, 1); // up-then-down allowed
        assert!(g.is_safe(&movement));
        assert!(g.is_maximal_safe(&movement));
        g.add_edge(1, 0);
        assert!(!g.is_safe(&movement));
        assert!(!g.is_maximal_safe(&movement));
    }

    #[test]
    fn harmless_ddg_cycles_are_tolerated() {
        // LD_CROSS <-> RD_TREE style pair: both go down; their 2-cycle is a
        // DDG cycle but is never realizable (Figure 1(f) of the paper).
        let movement = [mv(-1, 1), mv(1, 1)];
        let mut g = DirGraph::empty(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert!(g.is_safe(&movement));
        assert!(g.is_maximal_safe(&movement));
    }

    #[test]
    fn dot_export_lists_all_nodes_and_edges() {
        let mut g = DirGraph::empty(3);
        g.add_edge(0, 1);
        g.add_edge(2, 0);
        let dot = g.to_dot("test", &["A", "B", "C"]);
        assert!(dot.starts_with("digraph \"test\""));
        assert!(dot.contains("n0 [label=\"A\"]"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n2 -> n0;"));
        assert_eq!(dot.matches("->").count(), 2);
    }

    #[test]
    fn edge_difference_reports_removals() {
        let full = DirGraph::complete(3);
        let mut partial = full.clone();
        partial.remove_edge(0, 2);
        partial.remove_edge(2, 1);
        let mut diff = full.edge_difference(&partial);
        diff.sort_unstable();
        assert_eq!(diff, vec![(0, 2), (2, 1)]);
    }
}
