use crate::turn_table::TurnTable;
use irnet_topology::{ChannelId, CommGraph};

/// A witness turn cycle: the sequence of channels `c0 → c1 → … → c0`, each
/// consecutive pair an allowed turn.
pub type ChannelCycle = Vec<ChannelId>;

/// The *channel dependency graph* induced by a turn table: one node per
/// communication channel, and an edge `c1 → c2` whenever a packet holding
/// `c1` may request `c2` next (the turn `c1 → c2` is allowed at their shared
/// switch).
///
/// By the classical wormhole argument (and Lemma 1 of the paper), the
/// routing defined by the turn table is deadlock-free iff this graph is
/// acyclic. Injection and ejection channels never participate in cycles
/// (injection has no predecessors, ejection no successors) and are omitted.
#[derive(Debug, Clone)]
pub struct ChannelDepGraph {
    /// CSR offsets, length `num_channels + 1`.
    offsets: Vec<u32>,
    /// Flattened successor lists.
    succ: Vec<ChannelId>,
}

impl ChannelDepGraph {
    /// Builds the dependency graph of `table` over `cg`.
    pub fn build(cg: &CommGraph, table: &TurnTable) -> ChannelDepGraph {
        let ch = cg.channels();
        let nch = cg.num_channels() as usize;
        let mut offsets = Vec::with_capacity(nch + 1);
        offsets.push(0u32);
        let mut succ = Vec::new();
        for c in 0..cg.num_channels() {
            let v = ch.sink(c);
            let q = ch.in_port(c);
            let mask = table.mask(v, q);
            for (p, &out) in ch.outputs(v).iter().enumerate() {
                if (mask >> p) & 1 == 1 {
                    succ.push(out);
                }
            }
            offsets.push(succ.len() as u32);
        }
        ChannelDepGraph { offsets, succ }
    }

    /// Builds a dependency graph from an explicit edge list over
    /// `num_channels` channels (duplicates are merged, self-loops kept —
    /// a worm waiting on a channel it also holds is a genuine cycle).
    ///
    /// This is the runtime-forensics entry point: the waits-for graph of
    /// blocked worms captured at a watchdog stall is certified with the
    /// same Kahn's-algorithm + shortest-core-cycle minimizer the static
    /// certifier uses.
    ///
    /// # Panics
    ///
    /// Panics if an edge references a channel `>= num_channels`.
    pub fn from_edges(num_channels: u32, edges: &[(ChannelId, ChannelId)]) -> ChannelDepGraph {
        let n = num_channels as usize;
        let mut sorted: Vec<(ChannelId, ChannelId)> = edges.to_vec();
        for &(a, b) in &sorted {
            assert!(
                a < num_channels && b < num_channels,
                "edge ({a}, {b}) outside channel range {num_channels}"
            );
        }
        sorted.sort_unstable();
        sorted.dedup();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut succ = Vec::with_capacity(sorted.len());
        let mut k = 0usize;
        for c in 0..num_channels {
            while k < sorted.len() && sorted[k].0 == c {
                succ.push(sorted[k].1);
                k += 1;
            }
            offsets.push(succ.len() as u32);
        }
        ChannelDepGraph { offsets, succ }
    }

    /// The edge-wise union of two dependency graphs over the same channel
    /// set — the UPR reconfiguration-safety object: a live transition from
    /// the routing behind `self` to the one behind `other` is deadlock-free
    /// iff this union is acyclic (packets routed under either function can
    /// coexist during the drain).
    ///
    /// # Panics
    ///
    /// Panics if the two graphs have different channel counts.
    pub fn union(&self, other: &ChannelDepGraph) -> ChannelDepGraph {
        assert_eq!(
            self.num_channels(),
            other.num_channels(),
            "dependency union needs identical channel sets"
        );
        let n = self.num_channels();
        let mut offsets = Vec::with_capacity(n as usize + 1);
        offsets.push(0u32);
        let mut succ = Vec::with_capacity(self.num_edges().max(other.num_edges()));
        let mut merged: Vec<ChannelId> = Vec::new();
        for c in 0..n {
            merged.clear();
            merged.extend_from_slice(self.successors(c));
            merged.extend_from_slice(other.successors(c));
            merged.sort_unstable();
            merged.dedup();
            succ.extend_from_slice(&merged);
            offsets.push(succ.len() as u32);
        }
        ChannelDepGraph { offsets, succ }
    }

    /// Number of channel nodes.
    pub fn num_channels(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of dependency edges.
    pub fn num_edges(&self) -> usize {
        self.succ.len()
    }

    /// Successors of channel `c`.
    #[inline]
    pub fn successors(&self, c: ChannelId) -> &[ChannelId] {
        &self.succ[self.offsets[c as usize] as usize..self.offsets[c as usize + 1] as usize]
    }

    /// Returns a witness cycle if one exists, `None` if the graph is acyclic
    /// (i.e. the routing is deadlock-free).
    ///
    /// Iterative three-color DFS; no recursion so deep graphs cannot
    /// overflow the stack.
    pub fn find_cycle(&self) -> Option<ChannelCycle> {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.num_channels();
        let mut color = vec![WHITE; n as usize];
        // DFS stack of (node, next successor index); `path` mirrors the
        // gray chain for witness extraction.
        let mut stack: Vec<(ChannelId, u32)> = Vec::new();
        let mut path: Vec<ChannelId> = Vec::new();
        for root in 0..n {
            if color[root as usize] != WHITE {
                continue;
            }
            color[root as usize] = GRAY;
            stack.push((root, 0));
            path.push(root);
            while let Some(&mut (v, ref mut next)) = stack.last_mut() {
                let succs = self.successors(v);
                if (*next as usize) < succs.len() {
                    let w = succs[*next as usize];
                    *next += 1;
                    match color[w as usize] {
                        WHITE => {
                            color[w as usize] = GRAY;
                            stack.push((w, 0));
                            path.push(w);
                        }
                        GRAY => {
                            // Found a back edge; the cycle is the suffix of
                            // `path` starting at `w`.
                            let start = path.iter().position(|&c| c == w).expect("gray on path");
                            return Some(path[start..].to_vec());
                        }
                        _ => {}
                    }
                } else {
                    color[v as usize] = BLACK;
                    stack.pop();
                    path.pop();
                }
            }
        }
        None
    }

    /// Whether the dependency graph is acyclic (deadlock freedom).
    pub fn is_acyclic(&self) -> bool {
        self.find_cycle().is_none()
    }

    /// Whether a directed path exists from `from` to `to`. Used by the
    /// paper's Phase-3 `cycle_detection`: releasing the turn `e1 → e2` at a
    /// node is safe iff there is no path from `e2` back to `e1`.
    ///
    /// Allocates a fresh visited set per call; batch callers that interleave
    /// queries with edge insertions should use [`PathOracle`] instead.
    pub fn has_path(&self, from: ChannelId, to: ChannelId) -> bool {
        if from == to {
            return true;
        }
        let n = self.num_channels() as usize;
        let mut seen = vec![false; n];
        let mut stack = vec![from];
        seen[from as usize] = true;
        while let Some(v) = stack.pop() {
            for &w in self.successors(v) {
                if w == to {
                    return true;
                }
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        false
    }
}

/// Incremental reachability over a base dependency graph plus a growing set
/// of extra edges — the query object behind the Phase-3/L-turn release
/// passes.
///
/// The release pass asks one `has_path` query per candidate turn and, on a
/// successful release, adds exactly one dependency edge. Rebuilding the CSR
/// graph after every release and allocating a fresh visited set per query
/// made construction the bottleneck on 1024+-switch fabrics. The oracle
/// keeps the base graph immutable, stores added edges in per-channel
/// overflow lists, and replaces the visited set with a reusable stamp
/// buffer (one `u32` bump per query, no clearing), so a full release pass
/// allocates nothing after setup.
#[derive(Debug)]
pub struct PathOracle<'g> {
    base: &'g ChannelDepGraph,
    /// Extra successors of each channel, on top of `base`.
    extra: Vec<Vec<ChannelId>>,
    /// Visit stamps; `stamp[v] == cur` means `v` was reached this query.
    stamp: Vec<u32>,
    cur: u32,
    stack: Vec<ChannelId>,
}

impl<'g> PathOracle<'g> {
    /// Creates an oracle over `base` with no extra edges.
    pub fn new(base: &'g ChannelDepGraph) -> PathOracle<'g> {
        let n = base.num_channels() as usize;
        PathOracle {
            base,
            extra: vec![Vec::new(); n],
            stamp: vec![0; n],
            cur: 0,
            stack: Vec::new(),
        }
    }

    /// Adds the dependency edge `from → to` on top of the base graph.
    pub fn add_edge(&mut self, from: ChannelId, to: ChannelId) {
        self.extra[from as usize].push(to);
    }

    /// Whether a directed path from `from` to `to` exists in the base graph
    /// together with every added edge. Matches
    /// [`ChannelDepGraph::has_path`] semantics (`true` when `from == to`).
    pub fn has_path(&mut self, from: ChannelId, to: ChannelId) -> bool {
        if from == to {
            return true;
        }
        self.cur = match self.cur.checked_add(1) {
            Some(c) => c,
            None => {
                // Stamp wraparound: reset once every 2^32 - 1 queries.
                self.stamp.fill(0);
                1
            }
        };
        let cur = self.cur;
        self.stack.clear();
        self.stack.push(from);
        self.stamp[from as usize] = cur;
        while let Some(v) = self.stack.pop() {
            let base_succ = self.base.successors(v).iter();
            for &w in base_succ.chain(self.extra[v as usize].iter()) {
                if w == to {
                    return true;
                }
                if self.stamp[w as usize] != cur {
                    self.stamp[w as usize] = cur;
                    self.stack.push(w);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_topology::{gen, CommGraph, CoordinatedTree, Direction, PreorderPolicy, Topology};

    fn cg_of(topo: &Topology) -> CommGraph {
        let tree = CoordinatedTree::build(topo, PreorderPolicy::M1, 0).unwrap();
        CommGraph::build(topo, &tree)
    }

    #[test]
    fn unrestricted_ring_has_a_cycle() {
        let topo = gen::ring(4).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::all_allowed(&cg);
        let dep = ChannelDepGraph::build(&cg, &table);
        let cycle = dep
            .find_cycle()
            .expect("a ring with all turns allowed must deadlock");
        assert!(cycle.len() >= 3);
        // The witness really is a closed walk of allowed turns.
        for i in 0..cycle.len() {
            let a = cycle[i];
            let b = cycle[(i + 1) % cycle.len()];
            assert!(dep.successors(a).contains(&b));
        }
    }

    #[test]
    fn up_down_rule_is_acyclic_on_random_topologies() {
        for seed in 0..8 {
            let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), seed).unwrap();
            let cg = cg_of(&topo);
            // Classic up*/down* expressed over the 8 directions: forbid
            // every up-direction output after a down-direction input.
            let table = TurnTable::from_direction_rule(&cg, |din, dout| {
                !(din.goes_down() && dout.goes_up())
            });
            let dep = ChannelDepGraph::build(&cg, &table);
            // Not necessarily acyclic: horizontal channels can still cycle.
            // The strict version (down or flat never followed by up or flat
            // in the other X direction) must be acyclic:
            let strict = TurnTable::from_direction_rule(&cg, |din, dout| {
                !din.goes_down() && !matches!(din, Direction::LCross | Direction::RCross)
                    || dout.goes_down()
            });
            let dep_strict = ChannelDepGraph::build(&cg, &strict);
            assert!(
                dep_strict.is_acyclic(),
                "strict downward rule must be deadlock-free (seed {seed})"
            );
            // Keep `dep` alive for edge-count sanity.
            assert!(dep.num_edges() >= dep_strict.num_edges());
        }
    }

    #[test]
    fn tree_topology_with_all_turns_is_acyclic() {
        // On a pure tree there are no cross links and no cycles at all.
        let topo = gen::kary_tree(15, 2).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::all_allowed(&cg);
        let dep = ChannelDepGraph::build(&cg, &table);
        assert!(dep.is_acyclic());
    }

    #[test]
    fn has_path_follows_edges() {
        let topo = gen::kary_tree(7, 2).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::all_allowed(&cg);
        let dep = ChannelDepGraph::build(&cg, &table);
        let ch = cg.channels();
        // From any leaf-upward channel there is a path to the root's
        // outgoing channels.
        // Leaf 3 sits in the subtree of node 1; climbing 3 -> 1 -> 0 and
        // then descending into the other subtree (0 -> 2) is a valid
        // dependency path. The 0 -> 1 channel is not reachable this way
        // because re-entering it from 1 -> 0 would be a 180° turn.
        let leaf_up = (0..cg.num_channels())
            .find(|&c| cg.direction(c) == Direction::LuTree && ch.start(c) == 3)
            .unwrap();
        let root_down = (0..cg.num_channels())
            .find(|&c| ch.start(c) == 0 && ch.sink(c) == 2)
            .unwrap();
        assert!(dep.has_path(leaf_up, root_down));
        let other_down = (0..cg.num_channels())
            .find(|&c| ch.start(c) == 0 && ch.sink(c) == 1)
            .unwrap();
        assert!(!dep.has_path(leaf_up, other_down));
        assert!(dep.has_path(leaf_up, leaf_up));
    }

    #[test]
    fn union_merges_edges_and_preserves_cycles() {
        let topo = gen::ring(4).unwrap();
        let cg = cg_of(&topo);
        let open = ChannelDepGraph::build(&cg, &TurnTable::all_allowed(&cg));
        let closed = ChannelDepGraph::build(&cg, &TurnTable::from_channel_rule(&cg, |_, _| false));
        assert_eq!(closed.num_edges(), 0);
        assert!(closed.is_acyclic());
        // closed ∪ open == open, edge for edge.
        let u = closed.union(&open);
        assert_eq!(u.num_edges(), open.num_edges());
        assert!(!u.is_acyclic());
        for c in 0..u.num_channels() {
            let mut expect = open.successors(c).to_vec();
            expect.sort_unstable();
            assert_eq!(u.successors(c), expect);
        }
        // Union with itself is idempotent.
        let uu = open.union(&open);
        assert_eq!(uu.num_edges(), open.num_edges());
        // Two acyclic halves can still cycle jointly: split the ring's
        // dependency edges between two tables.
        let half_a = TurnTable::from_channel_rule(&cg, |i, _| i % 2 == 0);
        let half_b = TurnTable::from_channel_rule(&cg, |i, _| i % 2 == 1);
        let da = ChannelDepGraph::build(&cg, &half_a);
        let db = ChannelDepGraph::build(&cg, &half_b);
        let joint = da.union(&db);
        assert_eq!(joint.num_edges(), open.num_edges());
        assert!(!joint.is_acyclic());
    }

    #[test]
    fn path_oracle_matches_has_path_on_random_graphs() {
        for seed in 0..4 {
            let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), seed).unwrap();
            let cg = cg_of(&topo);
            let table = TurnTable::from_direction_rule(&cg, |din, dout| {
                !(din.goes_down() && dout.goes_up())
            });
            let dep = ChannelDepGraph::build(&cg, &table);
            let mut oracle = PathOracle::new(&dep);
            for from in 0..dep.num_channels() {
                for to in 0..dep.num_channels() {
                    assert_eq!(
                        oracle.has_path(from, to),
                        dep.has_path(from, to),
                        "oracle disagrees on {from} -> {to} (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn path_oracle_with_extra_edges_matches_a_rebuilt_graph() {
        // Adding edges to the oracle must answer exactly like a graph that
        // was rebuilt with those edges included — the release-pass contract.
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 2).unwrap();
        let cg = cg_of(&topo);
        let restrictive = TurnTable::from_direction_rule(&cg, |din, dout| {
            !din.goes_down() && !matches!(din, Direction::LCross | Direction::RCross)
                || dout.goes_down()
        });
        let base = ChannelDepGraph::build(&cg, &restrictive);
        let full = ChannelDepGraph::build(&cg, &TurnTable::all_allowed(&cg));
        // The edges present in `full` but not `base`, to feed in one by one.
        let mut missing: Vec<(ChannelId, ChannelId)> = Vec::new();
        for c in 0..full.num_channels() {
            for &s in full.successors(c) {
                if !base.successors(c).contains(&s) {
                    missing.push((c, s));
                }
            }
        }
        assert!(!missing.is_empty());
        let mut oracle = PathOracle::new(&base);
        let mut table = restrictive;
        let ch = cg.channels();
        for &(from, to) in missing.iter().take(12) {
            oracle.add_edge(from, to);
            // Mirror the edge into the table and rebuild for reference.
            let v = ch.sink(from);
            debug_assert_eq!(ch.start(to), v);
            table.release(&cg, from, to);
            let rebuilt = ChannelDepGraph::build(&cg, &table);
            for probe in 0..base.num_channels() {
                assert_eq!(
                    oracle.has_path(probe, from),
                    rebuilt.has_path(probe, from),
                    "probe {probe} -> {from} after adding {from}->{to}"
                );
                assert_eq!(
                    oracle.has_path(to, probe),
                    rebuilt.has_path(to, probe),
                    "probe {to} -> {probe} after adding {from}->{to}"
                );
            }
        }
    }

    #[test]
    fn from_edges_builds_the_listed_graph() {
        let dep = ChannelDepGraph::from_edges(5, &[(3, 1), (0, 2), (0, 1), (0, 2), (4, 4)]);
        assert_eq!(dep.num_channels(), 5);
        assert_eq!(dep.num_edges(), 4); // duplicate (0,2) merged
        assert_eq!(dep.successors(0), &[1, 2]);
        assert_eq!(dep.successors(3), &[1]);
        assert_eq!(dep.successors(4), &[4]); // self-loop kept
        assert!(dep.successors(1).is_empty());
        assert!(dep.find_cycle().is_some());
        assert!(ChannelDepGraph::from_edges(3, &[(0, 1), (1, 2)]).is_acyclic());
    }

    #[test]
    fn u_turns_are_never_dependencies() {
        let topo = gen::ring(5).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::all_allowed(&cg);
        let dep = ChannelDepGraph::build(&cg, &table);
        let ch = cg.channels();
        for c in 0..cg.num_channels() {
            assert!(!dep.successors(c).contains(&ch.reverse(c)));
        }
    }
}
