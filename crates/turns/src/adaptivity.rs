//! Adaptivity metrics for turn-restricted routings.
//!
//! Both L-turn and DOWN/UP are *partially adaptive*: at each hop several
//! minimal legal output channels may be available, and the simulator picks
//! among them. How much choice survives the turn restrictions is a
//! first-order predictor of congestion behaviour, so this module
//! quantifies it:
//!
//! * **degree of adaptivity** — the average number of minimal legal output
//!   ports over all (source, destination) injection decisions and over all
//!   in-transit (input channel, destination) decisions;
//! * **minimal-path diversity** — the number of distinct minimal legal
//!   paths per pair, computed by dynamic programming over the channel
//!   graph.

use crate::routing::{RoutingTables, INJECTION_SLOT};
use irnet_topology::CommGraph;

/// Summary of routing adaptivity over all pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptivityStats {
    /// Mean number of minimal candidate ports at injection, over all
    /// ordered pairs `s != t`.
    pub injection_choices: f64,
    /// Mean number of minimal candidate ports at in-transit hops, averaged
    /// over every (channel, destination) combination that lies on some
    /// minimal route.
    pub transit_choices: f64,
    /// Geometric mean of the number of distinct minimal paths per pair
    /// (arithmetic means are dominated by a few high-diversity pairs).
    pub path_diversity_gmean: f64,
    /// Largest number of distinct minimal paths over any pair.
    pub max_path_diversity: u64,
}

/// Computes adaptivity statistics for a routing.
pub fn adaptivity(cg: &CommGraph, tables: &RoutingTables) -> AdaptivityStats {
    let n = cg.num_nodes();
    let ch = cg.channels();
    let mut inj_sum = 0u64;
    let mut inj_cnt = 0u64;
    let mut transit_sum = 0u64;
    let mut transit_cnt = 0u64;
    let mut log_div_sum = 0.0f64;
    let mut max_div = 0u64;
    // paths[c] — number of minimal paths from "just traversed c" to t.
    let mut paths = vec![0u64; cg.num_channels() as usize];

    for t in 0..n {
        // Count per-channel minimal-path multiplicities by descending cost.
        let mut order: Vec<u32> = (0..cg.num_channels())
            .filter(|&c| tables.cost(t, c) != u16::MAX)
            .collect();
        order.sort_unstable_by_key(|&c| tables.cost(t, c));
        paths.iter_mut().for_each(|p| *p = 0);
        for &c in &order {
            let v = ch.sink(c);
            if v == t {
                paths[c as usize] = 1;
                continue;
            }
            let slot = ch.in_port(c) as usize + 1;
            let mask = tables.candidates(t, v, slot);
            let mut total = 0u64;
            for (p, &out) in ch.outputs(v).iter().enumerate() {
                if (mask >> p) & 1 == 1 {
                    total = total.saturating_add(paths[out as usize]);
                }
            }
            paths[c as usize] = total;
            if mask != 0 {
                transit_sum += mask.count_ones() as u64;
                transit_cnt += 1;
            }
        }
        for s in 0..n {
            if s == t {
                continue;
            }
            let mask = tables.candidates(t, s, INJECTION_SLOT);
            inj_sum += mask.count_ones() as u64;
            inj_cnt += 1;
            let mut pair_div = 0u64;
            for (p, &out) in ch.outputs(s).iter().enumerate() {
                if (mask >> p) & 1 == 1 {
                    pair_div = pair_div.saturating_add(paths[out as usize]);
                }
            }
            debug_assert!(pair_div >= 1, "connected pair with zero minimal paths");
            log_div_sum += (pair_div.max(1) as f64).ln();
            max_div = max_div.max(pair_div);
        }
    }
    let pairs = (n as u64 * (n as u64 - 1)).max(1);
    AdaptivityStats {
        injection_choices: inj_sum as f64 / inj_cnt.max(1) as f64,
        transit_choices: transit_sum as f64 / transit_cnt.max(1) as f64,
        path_diversity_gmean: (log_div_sum / pairs as f64).exp(),
        max_path_diversity: max_div,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turn_table::TurnTable;
    use irnet_topology::{gen, CoordinatedTree, PreorderPolicy};

    fn tables_for(
        topo: &irnet_topology::Topology,
        table: &TurnTable,
        cg: &CommGraph,
    ) -> RoutingTables {
        let _ = topo;
        RoutingTables::build(cg, table).unwrap()
    }

    #[test]
    fn path_graph_has_no_adaptivity() {
        let topo = irnet_topology::Topology::new(4, 2, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        let cg = CommGraph::build(&topo, &tree);
        let table = TurnTable::all_allowed(&cg);
        let rt = tables_for(&topo, &table, &cg);
        let a = adaptivity(&cg, &rt);
        assert!((a.injection_choices - 1.0).abs() < 1e-12);
        assert!((a.transit_choices - 1.0).abs() < 1e-9);
        assert!((a.path_diversity_gmean - 1.0).abs() < 1e-9);
        assert_eq!(a.max_path_diversity, 1);
    }

    #[test]
    fn mesh_has_manhattan_diversity_when_unrestricted() {
        let topo = gen::mesh(3, 3).unwrap();
        let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        let cg = CommGraph::build(&topo, &tree);
        let table = TurnTable::all_allowed(&cg);
        let rt = tables_for(&topo, &table, &cg);
        let a = adaptivity(&cg, &rt);
        // Corner to opposite corner in a 3x3 mesh: C(4,2) = 6 minimal
        // paths.
        assert_eq!(a.max_path_diversity, 6);
        assert!(a.injection_choices > 1.0);
    }

    #[test]
    fn restrictions_reduce_adaptivity() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), 3).unwrap();
        let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        let cg = CommGraph::build(&topo, &tree);
        let free_rt = tables_for(&topo, &TurnTable::all_allowed(&cg), &cg);
        let restricted =
            TurnTable::from_direction_rule(&cg, |din, dout| !(din.goes_down() && dout.goes_up()));
        let restricted_rt = tables_for(&topo, &restricted, &cg);
        let free = adaptivity(&cg, &free_rt);
        let tight = adaptivity(&cg, &restricted_rt);
        assert!(tight.path_diversity_gmean <= free.path_diversity_gmean + 1e-9);
        assert!(tight.max_path_diversity <= free.max_path_diversity);
    }
}
