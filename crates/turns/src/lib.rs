#![warn(missing_docs)]
//! Turn-model machinery shared by every routing algorithm in the workspace.
//!
//! The crate is organised around four structures:
//!
//! * [`DirGraph`] — a tiny direction-level digraph (nodes are channel
//!   *directions*, edges are *turns*, paper Definitions 8–11) with cycle
//!   enumeration and the "realizable as a turn cycle" predicate used to
//!   reproduce and audit the paper's ADDG construction.
//! * [`TurnTable`] — per-node, per-(input port, output port) permissions:
//!   the concrete object a switch would be configured with. Built from a
//!   direction-level rule and then refined per node (the paper's Phase 3
//!   releases).
//! * [`ChannelDepGraph`] — the channel dependency graph induced by a turn
//!   table; its acyclicity is exactly deadlock freedom for wormhole routing
//!   (Dally–Seitz / Lemma 1 of the paper).
//! * [`RoutingTables`] — turn-constrained shortest-path tables: for every
//!   (destination, node, input slot) the set of minimal legal output ports.
//!   Connectivity of the routing function is checked while building.

pub mod adaptivity;
mod cdg;
mod dirgraph;
pub mod export;
mod release;
mod routing;
mod turn_table;
mod verify;

pub use adaptivity::{adaptivity, AdaptivityStats};
pub use cdg::{ChannelCycle, ChannelDepGraph, PathOracle};
pub use dirgraph::{DirGraph, Movement};
pub use export::{export_tables, parse_exported, ExportedTables};
pub use release::release_redundant_turns;
pub use routing::{PatchStats, RoutingError, RoutingTables, INJECTION_SLOT};
pub use turn_table::TurnTable;
pub use verify::{verify_routing, VerifyReport};
