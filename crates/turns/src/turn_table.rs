use irnet_topology::{ChannelId, CommGraph, Direction, NodeId};

/// Per-node turn permissions at channel granularity.
///
/// For a node `v` of degree `d`, the table holds `d` output-port bitmasks,
/// one per *input port* (`0..d`). Bit `p` of the mask for input port `q`
/// says whether a packet that arrived on input port `q` may leave through
/// output port `p` — i.e. whether the corresponding turn is allowed at `v`.
///
/// Injected packets (which have no input channel) are always allowed to use
/// every output port, and ejection (delivery at the destination) is always
/// allowed; neither is stored. 180° turns (`out == reverse(in)`) are always
/// disallowed, the standard wormhole-switch assumption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TurnTable {
    /// Offset of node `v`'s masks in `masks` (CSR over input ports).
    offsets: Vec<u32>,
    /// `masks[offsets[v] + q]` — allowed output ports for input port `q`.
    masks: Vec<u16>,
}

impl TurnTable {
    /// A table allowing every (non-180°) turn.
    pub fn all_allowed(cg: &CommGraph) -> TurnTable {
        Self::from_direction_rule(cg, |_, _| true)
    }

    /// Builds a table from a direction-level rule: turn `in → out` is
    /// allowed at every node iff `rule(d(in), d(out))` holds, with two
    /// global overrides:
    ///
    /// * same-direction transitions are always allowed (turns are only
    ///   defined for distinct directions — paper Definition 8);
    /// * 180° turns back along the same link are always disallowed.
    pub fn from_direction_rule(
        cg: &CommGraph,
        rule: impl Fn(Direction, Direction) -> bool,
    ) -> TurnTable {
        let ch = cg.channels();
        let n = cg.num_nodes();
        let mut offsets = Vec::with_capacity(n as usize + 1);
        offsets.push(0u32);
        let mut masks = Vec::new();
        for v in 0..n {
            let inputs = ch.inputs(v);
            let outputs = ch.outputs(v);
            for &in_ch in inputs {
                let din = cg.direction(in_ch);
                let mut mask = 0u16;
                for (p, &out_ch) in outputs.iter().enumerate() {
                    if out_ch == ch.reverse(in_ch) {
                        continue;
                    }
                    let dout = cg.direction(out_ch);
                    if din == dout || rule(din, dout) {
                        mask |= 1 << p;
                    }
                }
                masks.push(mask);
            }
            offsets.push(masks.len() as u32);
        }
        TurnTable { offsets, masks }
    }

    /// Builds a table with exact per-channel-pair control: the turn
    /// `in_ch → out_ch` is allowed iff `rule(in_ch, out_ch)` holds.
    ///
    /// Unlike [`TurnTable::from_direction_rule`] there is no
    /// same-direction override — the rule is consulted for *every*
    /// non-180° pair. This is what lets a routing function computed on a
    /// degraded topology be lifted channel-for-channel into the original
    /// id space (where dead channels must stay fully prohibited).
    /// 180° turns remain always disallowed.
    pub fn from_channel_rule(
        cg: &CommGraph,
        rule: impl Fn(ChannelId, ChannelId) -> bool,
    ) -> TurnTable {
        let ch = cg.channels();
        let n = cg.num_nodes();
        let mut offsets = Vec::with_capacity(n as usize + 1);
        offsets.push(0u32);
        let mut masks = Vec::new();
        for v in 0..n {
            let outputs = ch.outputs(v);
            for &in_ch in ch.inputs(v) {
                let mut mask = 0u16;
                for (p, &out_ch) in outputs.iter().enumerate() {
                    if out_ch != ch.reverse(in_ch) && rule(in_ch, out_ch) {
                        mask |= 1 << p;
                    }
                }
                masks.push(mask);
            }
            offsets.push(masks.len() as u32);
        }
        TurnTable { offsets, masks }
    }

    /// Allowed-output mask for a packet arriving at `v` on input port `q`.
    #[inline]
    pub fn mask(&self, v: NodeId, in_port: u8) -> u16 {
        self.masks[(self.offsets[v as usize] + in_port as u32) as usize]
    }

    /// Whether the turn from `in_ch` to `out_ch` is allowed. Both channels
    /// must meet at the same node (`sink(in_ch) == start(out_ch)`).
    #[inline]
    pub fn is_allowed(&self, cg: &CommGraph, in_ch: ChannelId, out_ch: ChannelId) -> bool {
        let ch = cg.channels();
        let v = ch.sink(in_ch);
        debug_assert_eq!(v, ch.start(out_ch), "channels must share a node");
        let q = ch.in_port(in_ch);
        let p = ch.out_port(out_ch);
        (self.mask(v, q) >> p) & 1 == 1
    }

    /// Prohibits the turn `in_ch → out_ch`.
    pub fn prohibit(&mut self, cg: &CommGraph, in_ch: ChannelId, out_ch: ChannelId) {
        self.set(cg, in_ch, out_ch, false);
    }

    /// Releases (re-allows) the turn `in_ch → out_ch`. Releasing a 180°
    /// turn is rejected.
    pub fn release(&mut self, cg: &CommGraph, in_ch: ChannelId, out_ch: ChannelId) {
        assert_ne!(
            out_ch,
            cg.channels().reverse(in_ch),
            "cannot release a 180-degree turn"
        );
        self.set(cg, in_ch, out_ch, true);
    }

    fn set(&mut self, cg: &CommGraph, in_ch: ChannelId, out_ch: ChannelId, allowed: bool) {
        let ch = cg.channels();
        let v = ch.sink(in_ch);
        debug_assert_eq!(v, ch.start(out_ch), "channels must share a node");
        let q = ch.in_port(in_ch) as u32;
        let p = ch.out_port(out_ch);
        let idx = (self.offsets[v as usize] + q) as usize;
        if allowed {
            self.masks[idx] |= 1 << p;
        } else {
            self.masks[idx] &= !(1 << p);
        }
    }

    /// Number of allowed (input, output) channel pairs across the network.
    pub fn num_allowed_turns(&self) -> usize {
        self.masks.iter().map(|m| m.count_ones() as usize).sum()
    }

    /// Number of prohibited pairs, excluding the always-prohibited 180°
    /// turns.
    pub fn num_prohibited_turns(&self, cg: &CommGraph) -> usize {
        let ch = cg.channels();
        let mut total_pairs = 0usize;
        for v in 0..cg.num_nodes() {
            let d = ch.inputs(v).len();
            total_pairs += d * d.saturating_sub(1); // exclude the 180° pair per input
        }
        total_pairs - self.num_allowed_turns()
    }

    /// Counts nodes carrying a pair of prohibited turns with *opposite*
    /// directions — the traffic-imbalance symptom of up\*/down\* that the
    /// paper's introduction calls out ("there may exist two prohibited
    /// turns whose directions are opposite to each other on a node", §1).
    ///
    /// Two prohibited turns `(a1 → b1)` and `(a2 → b2)` at a node are
    /// opposite when both components flow against each other in `X`
    /// (`a2` moves opposite to `a1` and `b2` opposite to `b1`): traffic
    /// blocked from turning one way is also blocked from turning the
    /// mirror way, which is what skews the load. The fewer such nodes,
    /// the more evenly the remaining turns spread traffic.
    pub fn nodes_with_opposite_prohibited_pairs(&self, cg: &CommGraph) -> u32 {
        use irnet_topology::Direction;
        let opposite = |p: Direction, q: Direction| p.goes_left() != q.goes_left();
        let ch = cg.channels();
        let mut count = 0;
        'nodes: for v in 0..cg.num_nodes() {
            let mut turns: Vec<(Direction, Direction)> = Vec::new();
            for &in_ch in ch.inputs(v) {
                for &out_ch in ch.outputs(v) {
                    if out_ch != ch.reverse(in_ch) && !self.is_allowed(cg, in_ch, out_ch) {
                        turns.push((cg.direction(in_ch), cg.direction(out_ch)));
                    }
                }
            }
            for i in 0..turns.len() {
                for j in (i + 1)..turns.len() {
                    let (a1, b1) = turns[i];
                    let (a2, b2) = turns[j];
                    if opposite(a1, a2) && opposite(b1, b2) {
                        count += 1;
                        continue 'nodes;
                    }
                }
            }
        }
        count
    }

    /// Iterates over all prohibited non-180° `(in_ch, out_ch)` pairs.
    pub fn prohibited_pairs(&self, cg: &CommGraph) -> Vec<(ChannelId, ChannelId)> {
        let ch = cg.channels();
        let mut out = Vec::new();
        for v in 0..cg.num_nodes() {
            for &in_ch in ch.inputs(v) {
                for &out_ch in ch.outputs(v) {
                    if out_ch != ch.reverse(in_ch) && !self.is_allowed(cg, in_ch, out_ch) {
                        out.push((in_ch, out_ch));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_topology::{CoordinatedTree, PreorderPolicy, Topology};

    fn sample_cg() -> CommGraph {
        let topo = Topology::new(
            5,
            4,
            [(0, 2), (0, 4), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)],
        )
        .unwrap();
        let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        CommGraph::build(&topo, &tree)
    }

    #[test]
    fn all_allowed_blocks_only_u_turns() {
        let cg = sample_cg();
        let tt = TurnTable::all_allowed(&cg);
        let ch = cg.channels();
        for v in 0..cg.num_nodes() {
            for &in_ch in ch.inputs(v) {
                for &out_ch in ch.outputs(v) {
                    let expect = out_ch != ch.reverse(in_ch);
                    assert_eq!(tt.is_allowed(&cg, in_ch, out_ch), expect);
                }
            }
        }
        assert_eq!(tt.num_prohibited_turns(&cg), 0);
    }

    #[test]
    fn direction_rule_is_applied_per_pair() {
        let cg = sample_cg();
        // Prohibit every turn that ends on a tree channel toward the root.
        let tt = TurnTable::from_direction_rule(&cg, |_, dout| dout != Direction::LuTree);
        let ch = cg.channels();
        for v in 0..cg.num_nodes() {
            for &in_ch in ch.inputs(v) {
                for &out_ch in ch.outputs(v) {
                    if out_ch == ch.reverse(in_ch) {
                        continue;
                    }
                    let same = cg.direction(in_ch) == cg.direction(out_ch);
                    let expect = same || cg.direction(out_ch) != Direction::LuTree;
                    assert_eq!(tt.is_allowed(&cg, in_ch, out_ch), expect);
                }
            }
        }
    }

    #[test]
    fn prohibit_and_release_roundtrip() {
        let cg = sample_cg();
        let mut tt = TurnTable::all_allowed(&cg);
        let ch = cg.channels();
        // Find some non-180° pair.
        let v = (0..cg.num_nodes())
            .find(|&v| ch.inputs(v).len() >= 2)
            .unwrap();
        let in_ch = ch.inputs(v)[0];
        let out_ch = *ch
            .outputs(v)
            .iter()
            .find(|&&c| c != ch.reverse(in_ch))
            .unwrap();
        assert!(tt.is_allowed(&cg, in_ch, out_ch));
        tt.prohibit(&cg, in_ch, out_ch);
        assert!(!tt.is_allowed(&cg, in_ch, out_ch));
        assert_eq!(tt.num_prohibited_turns(&cg), 1);
        assert_eq!(tt.prohibited_pairs(&cg), vec![(in_ch, out_ch)]);
        tt.release(&cg, in_ch, out_ch);
        assert!(tt.is_allowed(&cg, in_ch, out_ch));
    }

    #[test]
    #[should_panic(expected = "180-degree")]
    fn releasing_a_u_turn_panics() {
        let cg = sample_cg();
        let mut tt = TurnTable::all_allowed(&cg);
        let ch = cg.channels();
        let in_ch = ch.inputs(0)[0];
        tt.release(&cg, in_ch, ch.reverse(in_ch));
    }

    #[test]
    fn opposite_prohibited_pairs_detected() {
        // Nothing prohibited -> no opposite pairs, on any topology.
        let cg = sample_cg();
        let open = TurnTable::all_allowed(&cg);
        assert_eq!(open.nodes_with_opposite_prohibited_pairs(&cg), 0);

        // The paper's §1 claim: up*/down* (prohibiting every down->up
        // turn) leaves nodes with opposite prohibited turn pairs on
        // realistic irregular networks. Check it fires on at least one of
        // a batch of random 8-port topologies, and that an everything-
        // prohibited table is never below the up*/down* count.
        let mut total = 0u32;
        for seed in 0..6 {
            let topo = irnet_topology::gen::random_irregular(
                irnet_topology::gen::IrregularParams::paper(24, 8),
                seed,
            )
            .unwrap();
            let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
            let cg = CommGraph::build(&topo, &tree);
            let updown = TurnTable::from_direction_rule(&cg, |din, dout| {
                !(din.goes_down() && dout.goes_up())
            });
            let closed = TurnTable::from_direction_rule(&cg, |_, _| false);
            let u = updown.nodes_with_opposite_prohibited_pairs(&cg);
            let c = closed.nodes_with_opposite_prohibited_pairs(&cg);
            assert!(c >= u, "seed {seed}: closed {c} < up*/down* {u}");
            total += u;
        }
        assert!(
            total > 0,
            "up*/down* never produced an opposite prohibited pair"
        );
    }

    #[test]
    fn channel_rule_has_no_same_direction_override() {
        let cg = sample_cg();
        let ch = cg.channels();
        // A channel rule that denies everything really denies everything
        // (from_direction_rule would keep same-direction transitions).
        let closed = TurnTable::from_channel_rule(&cg, |_, _| false);
        assert_eq!(closed.num_allowed_turns(), 0);
        // An always-true channel rule matches all_allowed exactly.
        let open = TurnTable::from_channel_rule(&cg, |_, _| true);
        assert_eq!(open, TurnTable::all_allowed(&cg));
        // Per-pair control: prohibit exactly one pair.
        let v = (0..cg.num_nodes())
            .find(|&v| ch.inputs(v).len() >= 2)
            .unwrap();
        let in_ch = ch.inputs(v)[0];
        let out_ch = *ch
            .outputs(v)
            .iter()
            .find(|&&c| c != ch.reverse(in_ch))
            .unwrap();
        let tt = TurnTable::from_channel_rule(&cg, |i, o| (i, o) != (in_ch, out_ch));
        assert!(!tt.is_allowed(&cg, in_ch, out_ch));
        assert_eq!(tt.num_prohibited_turns(&cg), 1);
    }

    #[test]
    fn same_direction_transitions_survive_any_rule() {
        let cg = sample_cg();
        let tt = TurnTable::from_direction_rule(&cg, |_, _| false);
        let ch = cg.channels();
        for v in 0..cg.num_nodes() {
            for &in_ch in ch.inputs(v) {
                for &out_ch in ch.outputs(v) {
                    if out_ch != ch.reverse(in_ch) && cg.direction(in_ch) == cg.direction(out_ch) {
                        assert!(tt.is_allowed(&cg, in_ch, out_ch));
                    }
                }
            }
        }
    }
}
