//! Deadlock forensics: waits-for capture, cycle minimization, and the
//! self-contained JSON incident report.

use irnet_sim::{BlockedWorm, Simulator};
use irnet_topology::ChannelId;
use irnet_turns::ChannelDepGraph;
use irnet_verify::{certify_dep, Certificate, Verdict};
use serde::{Serialize, Value};
use std::collections::BTreeSet;

/// A self-contained record of a stalled run, built by
/// [`deadlock_incident`] when the simulator's watchdog fires.
///
/// The `certificate` is the existing Dally–Seitz certifier run over the
/// *runtime* waits-for graph: a `Deadlock` verdict carries the minimized
/// circular wait (`witness`), while a `DeadlockFree` verdict means the
/// stall is acyclic — worms are waiting on dead or permanently-owned
/// resources rather than on each other.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Clock the incident was captured on.
    pub cycle: u32,
    /// Last clock any flit moved.
    pub last_progress: u32,
    /// Packets injected but not delivered at capture time.
    pub live_packets: u64,
    /// Flits wedged in buffers network-wide.
    pub buffered_flits: u64,
    /// Channels dead at capture time (killed by fault epochs).
    pub dead_channels: Vec<ChannelId>,
    /// Every worm that cannot advance, with its held and wanted channels.
    pub worms: Vec<BlockedWorm>,
    /// The deduplicated waits-for edges `held → wanted` over all worms.
    pub edges: Vec<(ChannelId, ChannelId)>,
    /// The certifier's verdict on the waits-for graph, with a minimized
    /// witness cycle when one exists.
    pub certificate: Certificate,
}

impl Incident {
    /// True when the waits-for graph contains a circular wait.
    pub fn is_circular_wait(&self) -> bool {
        !self.certificate.is_deadlock_free()
    }

    /// The minimized witness cycle, when the stall is circular.
    pub fn witness(&self) -> Option<&[ChannelId]> {
        match &self.certificate.verdict {
            Verdict::Deadlock { witness } => Some(witness),
            Verdict::DeadlockFree { .. } => None,
        }
    }

    /// Serializes the incident to pretty-printed JSON (schema in
    /// DESIGN.md §14).
    pub fn to_json(&self) -> String {
        let worms: Vec<Value> = self
            .worms
            .iter()
            .map(|w| {
                Value::Map(vec![
                    ("pkt".to_string(), Value::U64(u64::from(w.pkt))),
                    ("src".to_string(), Value::U64(u64::from(w.src))),
                    ("dst".to_string(), Value::U64(u64::from(w.dst))),
                    ("node".to_string(), Value::U64(u64::from(w.node))),
                    (
                        "input_channel".to_string(),
                        w.input_channel
                            .map_or(Value::Null, |c| Value::U64(u64::from(c))),
                    ),
                    ("holds".to_string(), ids(&w.holds)),
                    ("wants".to_string(), ids(&w.wants)),
                    ("wants_ejection".to_string(), Value::Bool(w.wants_ejection)),
                    (
                        "blocked_cycles".to_string(),
                        Value::U64(u64::from(w.blocked_cycles)),
                    ),
                ])
            })
            .collect();
        let edges: Vec<Value> = self
            .edges
            .iter()
            .map(|&(held, wanted)| {
                Value::Seq(vec![
                    Value::U64(u64::from(held)),
                    Value::U64(u64::from(wanted)),
                ])
            })
            .collect();
        let report = Value::Map(vec![
            (
                "kind".to_string(),
                Value::Str("deadlock_incident".to_string()),
            ),
            ("cycle".to_string(), Value::U64(u64::from(self.cycle))),
            (
                "last_progress".to_string(),
                Value::U64(u64::from(self.last_progress)),
            ),
            ("live_packets".to_string(), Value::U64(self.live_packets)),
            (
                "buffered_flits".to_string(),
                Value::U64(self.buffered_flits),
            ),
            ("dead_channels".to_string(), ids(&self.dead_channels)),
            ("blocked_worms".to_string(), Value::Seq(worms)),
            ("waits_for_edges".to_string(), Value::Seq(edges)),
            (
                "circular_wait".to_string(),
                Value::Bool(self.is_circular_wait()),
            ),
            ("certificate".to_string(), self.certificate.to_value()),
        ]);
        serde_json::to_string_pretty(&report).expect("incident serialization cannot fail")
    }
}

fn ids(channels: &[ChannelId]) -> Value {
    Value::Seq(channels.iter().map(|&c| Value::U64(u64::from(c))).collect())
}

/// Captures the forensic state of a stalled [`Simulator`]: the blocked
/// worms, the waits-for graph over their held/wanted channels, and the
/// certifier's verdict on it (minimized witness cycle for a circular
/// wait).
///
/// Intended to be called when [`Simulator::run_in_place`] reports a fired
/// watchdog, but valid at any point of a run — on a healthy network it
/// simply reports few or no blocked worms and an acyclic waits-for graph.
pub fn deadlock_incident(sim: &Simulator) -> Incident {
    let worms = sim.blocked_worms();
    let mut edge_set: BTreeSet<(ChannelId, ChannelId)> = BTreeSet::new();
    for worm in &worms {
        for &wanted in &worm.wants {
            // A want the worm itself holds is an intra-worm dependency
            // (body flits stalled behind their own claimed channel; the
            // real wait is at the worm's head) — only inter-worm waits
            // belong in the waits-for graph.
            if worm.holds.contains(&wanted) {
                continue;
            }
            for &held in &worm.holds {
                edge_set.insert((held, wanted));
            }
        }
    }
    let edges: Vec<(ChannelId, ChannelId)> = edge_set.into_iter().collect();
    let dep = ChannelDepGraph::from_edges(sim.num_physical_channels(), &edges);
    let certificate = certify_dep(&dep);
    Incident {
        cycle: sim.now(),
        last_progress: sim.last_progress_cycle(),
        live_packets: sim.live_packet_count(),
        buffered_flits: sim.buffered_flit_count(),
        dead_channels: sim.dead_channel_ids(),
        worms,
        edges,
        certificate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_core::DownUp;
    use irnet_sim::{SimConfig, Simulator};
    use irnet_topology::gen;

    #[test]
    fn healthy_run_yields_acyclic_incident() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 5).unwrap();
        let routing = DownUp::new().construct(&topo).unwrap();
        let cfg = SimConfig {
            packet_len: 8,
            injection_rate: 0.05,
            warmup_cycles: 0,
            measure_cycles: 400,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(routing.comm_graph(), routing.routing_tables(), cfg, 11);
        for _ in 0..200 {
            sim.tick();
        }
        let incident = deadlock_incident(&sim);
        // DOWN/UP is deadlock-free: any momentary blocking must be acyclic.
        assert!(!incident.is_circular_wait());
        assert!(incident.witness().is_none());
        let json = incident.to_json();
        let value: Value = serde_json::from_str(&json).expect("incident JSON parses");
        assert!(value.get("blocked_worms").is_some());
        assert!(value.get("waits_for_edges").is_some());
        assert!(value.get("certificate").is_some());
    }
}
