//! The one-shot "busiest resources" view behind `irnet top`.

use irnet_sim::SimStats;
use irnet_topology::CommGraph;
use std::fmt::Write as _;

/// Renders a `top`-style summary of a finished run: the `k` busiest
/// physical channels (with their endpoints and utilisation) and the `k`
/// busiest nodes by delivered flits.
///
/// Utilisation is flits moved divided by measured cycles — a channel moves
/// at most one flit per clock, so 1.000 is saturation.
pub fn render_top(stats: &SimStats, cg: &CommGraph, k: usize) -> String {
    let cycles = stats.cycles.max(1) as f64;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cycles {}  packets {}/{}  flits {}  deadlocked {}",
        stats.cycles,
        stats.packets_delivered,
        stats.packets_generated,
        stats.flits_delivered,
        stats.deadlocked
    );

    let mut channels: Vec<(u32, u64)> = stats
        .channel_flits
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(c, &f)| (c as u32, f))
        .collect();
    channels.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    channels.truncate(k);
    let _ = writeln!(
        out,
        "\nbusiest channels (of {}):",
        stats.channel_flits.len()
    );
    let _ = writeln!(
        out,
        "{:>8} {:>6} {:>6} {:>10} {:>7}",
        "channel", "from", "to", "flits", "util"
    );
    if channels.is_empty() {
        let _ = writeln!(out, "  (no channel moved a flit)");
    }
    for (c, flits) in channels {
        let ch = cg.channels();
        let _ = writeln!(
            out,
            "{:>8} {:>6} {:>6} {:>10} {:>7.3}",
            c,
            ch.start(c),
            ch.sink(c),
            flits,
            flits as f64 / cycles
        );
    }

    let mut nodes: Vec<(u32, u64)> = stats
        .node_flits_delivered
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(v, &f)| (v as u32, f))
        .collect();
    nodes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    nodes.truncate(k);
    let _ = writeln!(out, "\nbusiest nodes (of {}):", stats.num_nodes);
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>7}",
        "node", "flits_in", "pkts_out", "util"
    );
    if nodes.is_empty() {
        let _ = writeln!(out, "  (no node delivered a flit)");
    }
    for (v, flits) in nodes {
        let _ = writeln!(
            out,
            "{:>8} {:>12} {:>12} {:>7.3}",
            v,
            flits,
            stats
                .node_packets_generated
                .get(v as usize)
                .copied()
                .unwrap_or(0),
            flits as f64 / cycles
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_core::DownUp;
    use irnet_sim::{SimConfig, Simulator};
    use irnet_topology::gen;

    #[test]
    fn top_lists_busiest_resources() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 2).unwrap();
        let routing = DownUp::new().construct(&topo).unwrap();
        let cfg = SimConfig {
            packet_len: 8,
            injection_rate: 0.05,
            warmup_cycles: 100,
            measure_cycles: 1_000,
            ..SimConfig::default()
        };
        let stats = Simulator::new(routing.comm_graph(), routing.routing_tables(), cfg, 3).run();
        let text = render_top(&stats, routing.comm_graph(), 5);
        assert!(text.contains("busiest channels"));
        assert!(text.contains("busiest nodes"));
        // At 5% load something must have moved.
        assert!(!text.contains("no channel moved a flit"));
        // k bounds the listing: header + ≤5 channel rows before the blank line.
        let channel_rows = text
            .lines()
            .skip_while(|l| !l.starts_with("busiest channels"))
            .skip(2)
            .take_while(|l| !l.is_empty())
            .count();
        assert!(channel_rows <= 5, "{channel_rows} rows");
    }
}
