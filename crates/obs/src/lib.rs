#![warn(missing_docs)]
//! Observability for the irnet simulator and construction pipeline
//! (DESIGN.md §14).
//!
//! Three layers, all strictly non-perturbing — attaching any of them to a
//! run leaves its statistics and RNG stream bit-exact:
//!
//! * [`FlightRecorder`] — a bounded ring buffer of structured
//!   [`SimEvent`](irnet_sim::SimEvent)s (the last *N* events of a run, not
//!   the first *N*), exportable as JSONL for offline analysis.
//! * [`IntervalSampler`] — a pull-based time series: every *N* cycles it
//!   snapshots per-channel occupancy, per-channel/per-node flit deltas,
//!   active-worm and live-packet counts.
//! * [`deadlock_incident`] — forensics for a fired stall watchdog: captures
//!   the waits-for graph of every blocked worm (worm → held channels →
//!   wanted channels), runs the certifier's cycle minimizer over it, and
//!   packages a self-contained JSON incident report distinguishing a true
//!   circular wait from an acyclic stall on dead resources.
//!
//! [`render_top`] is the presentation layer behind `irnet top`: a one-shot
//! busiest-channels / busiest-nodes view of a finished run.

mod forensics;
mod recorder;
mod sampler;
mod top;

pub use forensics::{deadlock_incident, Incident};
pub use recorder::{event_jsonl_line, FlightRecorder};
pub use sampler::{IntervalSampler, Sample};
pub use top::render_top;
