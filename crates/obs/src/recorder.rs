//! The bounded-ring-buffer flight recorder and its JSONL export.

use irnet_sim::{Recorder, SimEvent};
use std::fmt::Write as _;

/// A [`Recorder`] that keeps the **last** `capacity` events of a run in a
/// fixed-size ring buffer.
///
/// The ring never reallocates once full, so attaching a recorder adds a
/// bounded, allocation-free cost per recorded event and cannot perturb the
/// simulation (events are copied in; the engine's state and RNG are never
/// touched). Keeping the tail rather than the head is deliberate: the
/// interesting window of a wedged or misbehaving run is the part right
/// before the watchdog fires.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buf: Vec<SimEvent>,
    capacity: usize,
    /// Next write position once the ring is saturated.
    next: usize,
    total: u64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events (`capacity > 0`).
    pub fn new(capacity: usize) -> FlightRecorder {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            buf: Vec::new(),
            capacity,
            next: 0,
            total: 0,
        }
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring size this recorder was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events seen over the recorder's lifetime, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events that fell out of the ring (`total_recorded - len`).
    pub fn evicted(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// The retained events in arrival order (oldest first).
    pub fn events(&self) -> Vec<SimEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        if self.buf.len() == self.capacity {
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
        } else {
            out.extend_from_slice(&self.buf);
        }
        out
    }

    /// Empties the ring (capacity and lifetime counters are kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
    }

    /// Exports the retained events as JSON Lines, one event per line in
    /// arrival order (schema in DESIGN.md §14).
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.events() {
            out.push_str(&event_jsonl_line(&event));
            out.push('\n');
        }
        out
    }
}

impl Recorder for FlightRecorder {
    fn record(&mut self, event: &SimEvent) {
        self.total += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(*event);
        } else {
            self.buf[self.next] = *event;
            self.next = (self.next + 1) % self.capacity;
        }
    }
}

/// Renders one [`SimEvent`] as its canonical single-line JSON form (no
/// trailing newline). Key order is fixed — `cycle`, `event`, then the
/// kind-specific fields — so exports are byte-stable and diffable.
pub fn event_jsonl_line(event: &SimEvent) -> String {
    let mut line = String::with_capacity(96);
    let _ = write!(
        line,
        "{{\"cycle\":{},\"event\":\"{}\"",
        event.cycle(),
        event.kind()
    );
    match *event {
        SimEvent::Inject {
            pkt, src, dst, len, ..
        } => {
            let _ = write!(
                line,
                ",\"pkt\":{pkt},\"src\":{src},\"dst\":{dst},\"len\":{len}"
            );
        }
        SimEvent::HeaderAdvance {
            pkt, channel, vc, ..
        }
        | SimEvent::VcAlloc {
            pkt, channel, vc, ..
        } => {
            let _ = write!(line, ",\"pkt\":{pkt},\"channel\":{channel},\"vc\":{vc}");
        }
        SimEvent::Block {
            pkt, node, waited, ..
        } => {
            let _ = write!(line, ",\"pkt\":{pkt},\"node\":{node},\"waited\":{waited}");
        }
        SimEvent::Eject {
            pkt, node, latency, ..
        } => {
            let _ = write!(line, ",\"pkt\":{pkt},\"node\":{node},\"latency\":{latency}");
        }
        SimEvent::Drop {
            pkt, flits_lost, ..
        } => {
            let _ = write!(line, ",\"pkt\":{pkt},\"flits_lost\":{flits_lost}");
        }
        SimEvent::EpochSwap {
            epoch,
            dead_channels,
            dead_nodes,
            revived_channels,
            revived_nodes,
            ..
        } => {
            let _ = write!(
                line,
                ",\"epoch\":{epoch},\"dead_channels\":{dead_channels},\"dead_nodes\":{dead_nodes},\"revived_channels\":{revived_channels},\"revived_nodes\":{revived_nodes}"
            );
        }
    }
    line.push('}');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u32) -> SimEvent {
        SimEvent::Block {
            cycle,
            pkt: cycle,
            node: 0,
            waited: 1,
        }
    }

    #[test]
    fn ring_keeps_the_tail_in_order() {
        let mut rec = FlightRecorder::new(3);
        assert!(rec.is_empty());
        for c in 0..5 {
            rec.record(&ev(c));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.total_recorded(), 5);
        assert_eq!(rec.evicted(), 2);
        let cycles: Vec<u32> = rec.events().iter().map(SimEvent::cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        rec.clear();
        assert!(rec.is_empty());
        rec.record(&ev(9));
        assert_eq!(rec.events().len(), 1);
    }

    #[test]
    fn jsonl_lines_are_valid_json_for_every_kind() {
        let events = [
            SimEvent::Inject {
                cycle: 1,
                pkt: 0,
                src: 2,
                dst: 3,
                len: 32,
            },
            SimEvent::HeaderAdvance {
                cycle: 2,
                pkt: 0,
                channel: 7,
                vc: 0,
            },
            SimEvent::VcAlloc {
                cycle: 2,
                pkt: 0,
                channel: 8,
                vc: 1,
            },
            SimEvent::Block {
                cycle: 3,
                pkt: 0,
                node: 4,
                waited: 2,
            },
            SimEvent::Eject {
                cycle: 9,
                pkt: 0,
                node: 3,
                latency: 8,
            },
            SimEvent::Drop {
                cycle: 5,
                pkt: 1,
                flits_lost: 12,
            },
            SimEvent::EpochSwap {
                cycle: 6,
                epoch: 1,
                dead_channels: 2,
                dead_nodes: 0,
                revived_channels: 0,
                revived_nodes: 0,
            },
        ];
        for event in &events {
            let line = event_jsonl_line(event);
            let value: serde::Value = serde_json::from_str(&line).expect("line parses as JSON");
            assert!(value.as_map().is_some(), "line is not an object: {line}");
            assert!(value.get("event").is_some(), "missing event tag in {line}");
            assert!(value.get("cycle").is_some(), "missing cycle in {line}");
        }
        assert_eq!(
            event_jsonl_line(&events[0]),
            "{\"cycle\":1,\"event\":\"inject\",\"pkt\":0,\"src\":2,\"dst\":3,\"len\":32}"
        );
        assert_eq!(
            event_jsonl_line(&events[6]),
            "{\"cycle\":6,\"event\":\"epoch_swap\",\"epoch\":1,\"dead_channels\":2,\
             \"dead_nodes\":0,\"revived_channels\":0,\"revived_nodes\":0}"
        );
    }
}
