//! Pull-based interval sampling of live simulator state.

use irnet_sim::Simulator;
use std::fmt::Write as _;

/// One snapshot of the simulator taken by an [`IntervalSampler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Clock the snapshot was taken on.
    pub cycle: u32,
    /// Packets injected but not yet fully delivered.
    pub live_packets: u64,
    /// Worms currently holding at least one claimed output channel.
    pub active_worms: u32,
    /// Flits buffered in input FIFOs and staging registers network-wide.
    pub buffered_flits: u64,
    /// Buffered flits per physical channel (FIFO + staged), indexed by
    /// channel id.
    pub channel_occupancy: Vec<u32>,
    /// Flits moved per physical channel since the previous sample.
    pub channel_flits_delta: Vec<u64>,
    /// Flits delivered per node since the previous sample.
    pub node_flits_delta: Vec<u64>,
}

impl Sample {
    /// The busiest channel of this interval: `(channel, flits)` with the
    /// lowest id winning ties; `None` when nothing moved.
    pub fn busiest_channel(&self) -> Option<(u32, u64)> {
        busiest(&self.channel_flits_delta)
    }

    /// The deepest per-channel backlog: `(channel, buffered flits)`;
    /// `None` when every buffer is empty.
    pub fn peak_occupancy(&self) -> Option<(u32, u32)> {
        busiest(&self.channel_occupancy)
    }
}

fn busiest<T: Copy + Ord + Default>(values: &[T]) -> Option<(u32, T)> {
    let (i, &v) = values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))?;
    (v > T::default()).then_some((i as u32, v))
}

/// Samples live counters from a [`Simulator`] every `every` cycles into a
/// time series.
///
/// The sampler is pull-based: the driving loop calls
/// [`IntervalSampler::maybe_sample`] once per step (or as often as it
/// likes) and the sampler decides whether the interval has elapsed. It
/// only ever *reads* the simulator, so sampling cannot perturb a run.
#[derive(Debug, Clone)]
pub struct IntervalSampler {
    every: u32,
    due: u32,
    prev_channel_flits: Vec<u64>,
    prev_node_flits: Vec<u64>,
    samples: Vec<Sample>,
}

impl IntervalSampler {
    /// A sampler firing every `every` cycles (`every > 0`), starting with
    /// the first call at or after cycle `every`.
    pub fn new(every: u32) -> IntervalSampler {
        assert!(every > 0, "sampling interval must be positive");
        IntervalSampler {
            every,
            due: every,
            prev_channel_flits: Vec::new(),
            prev_node_flits: Vec::new(),
            samples: Vec::new(),
        }
    }

    /// The configured interval.
    pub fn interval(&self) -> u32 {
        self.every
    }

    /// Takes a snapshot if the interval has elapsed; returns whether one
    /// was taken.
    pub fn maybe_sample(&mut self, sim: &Simulator) -> bool {
        if sim.now() < self.due {
            return false;
        }
        self.force_sample(sim);
        true
    }

    /// Takes a snapshot unconditionally and rearms the interval (used for
    /// a final end-of-run sample).
    pub fn force_sample(&mut self, sim: &Simulator) {
        let mut occupancy = Vec::new();
        sim.channel_occupancy(&mut occupancy);
        let channel_flits = sim.channel_flits_so_far();
        let node_flits = sim.node_flits_so_far();
        self.prev_channel_flits.resize(channel_flits.len(), 0);
        self.prev_node_flits.resize(node_flits.len(), 0);
        let channel_delta: Vec<u64> = channel_flits
            .iter()
            .zip(&self.prev_channel_flits)
            .map(|(now, prev)| now - prev)
            .collect();
        let node_delta: Vec<u64> = node_flits
            .iter()
            .zip(&self.prev_node_flits)
            .map(|(now, prev)| now - prev)
            .collect();
        self.prev_channel_flits.copy_from_slice(channel_flits);
        self.prev_node_flits.copy_from_slice(node_flits);
        self.samples.push(Sample {
            cycle: sim.now(),
            live_packets: sim.live_packet_count(),
            active_worms: sim.active_worm_count(),
            buffered_flits: sim.buffered_flit_count(),
            channel_occupancy: occupancy,
            channel_flits_delta: channel_delta,
            node_flits_delta: node_delta,
        });
        self.due = sim.now().saturating_add(self.every);
    }

    /// The collected time series, oldest first.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Renders the series as CSV: one summary row per sample
    /// (`cycle,live_packets,active_worms,buffered_flits,peak_occupancy,`
    /// `peak_occupancy_channel,busiest_channel_flits,busiest_channel`;
    /// the channel columns are `-1` when every counter in the interval is
    /// zero).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "cycle,live_packets,active_worms,buffered_flits,\
             peak_occupancy,peak_occupancy_channel,busiest_channel_flits,busiest_channel\n",
        );
        for s in &self.samples {
            let (peak_ch, peak) = s.peak_occupancy().map_or((-1, 0), |(c, v)| (c as i64, v));
            let (busy_ch, busy) = s.busiest_channel().map_or((-1, 0), |(c, v)| (c as i64, v));
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{}",
                s.cycle,
                s.live_packets,
                s.active_worms,
                s.buffered_flits,
                peak,
                peak_ch,
                busy,
                busy_ch
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_core::DownUp;
    use irnet_sim::{SimConfig, Simulator};
    use irnet_topology::gen;

    #[test]
    fn sampler_tracks_deltas_and_intervals() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 3).unwrap();
        let routing = DownUp::new().construct(&topo).unwrap();
        let cfg = SimConfig {
            packet_len: 8,
            injection_rate: 0.05,
            warmup_cycles: 0,
            measure_cycles: 600,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(routing.comm_graph(), routing.routing_tables(), cfg, 7);
        let mut sampler = IntervalSampler::new(100);
        for _ in 0..600 {
            sim.tick();
            sampler.maybe_sample(&sim);
        }
        assert_eq!(sampler.samples().len(), 6);
        assert!(sampler
            .samples()
            .windows(2)
            .all(|w| w[1].cycle - w[0].cycle == 100));
        // Deltas across samples telescope back to the cumulative counters.
        let total: u64 = sampler
            .samples()
            .iter()
            .map(|s| s.channel_flits_delta.iter().sum::<u64>())
            .sum();
        assert_eq!(total, sim.channel_flits_so_far().iter().sum::<u64>());
        let stats = sim.finish();
        assert!(stats.packets_delivered > 0);
        let csv = sampler.to_csv();
        assert_eq!(csv.lines().count(), 7);
        assert!(csv.starts_with("cycle,"));
    }

    #[test]
    fn busiest_ignores_all_zero_vectors() {
        assert_eq!(busiest::<u64>(&[0, 0, 0]), None);
        assert_eq!(busiest::<u64>(&[]), None);
        assert_eq!(busiest::<u64>(&[1, 5, 5, 2]), Some((1, 5)));
    }
}
