//! The L-turn routing (Jouraku, Funahashi, Amano, Koibuchi — ICPP 2001 /
//! I-SPAN 2002), the baseline the DOWN/UP paper compares against.
//!
//! # Reconstruction notes (see DESIGN.md §5)
//!
//! The original prohibited-turn figure is not retrievable in this offline
//! environment, so this module implements a documented reconstruction with
//! every property the 2004 paper attributes to L-turn:
//!
//! * **Uniform link treatment** — tree links and cross links share one
//!   channel classification (the very uniformity §1 of the DOWN/UP paper
//!   criticises). Channels are classified into the four 2-D directions of
//!   the L-R tree: vertical `Up` (level decreases) / `Down` (level
//!   increases, *with same-level channels counted as Down*), crossed with
//!   horizontal `Left`/`Right` by preorder coordinate.
//! * **Prohibited turns**: every turn from a right-moving channel
//!   (`UR`, `DR`) to a left-moving channel (`UL`, `DL`) — four of the
//!   twelve direction turns. This set is *maximal*: all remaining direction
//!   cycles are X-monotone (every direction strictly moves X), so no turn
//!   cycle can form, and adding any of the four back admits one.
//! * **Up-then-down connectivity** — climbing to the LCA uses `UL`
//!   channels (tree child→parent is always left-up), the turnaround
//!   `UL → DR` is allowed, and the descent uses `DR`.
//! * **Down→up adaptivity** — unlike up\*/down\*, the turns `DL → UL`,
//!   `DL → UR` and `DR → UR` remain allowed, which shortens paths but (as
//!   the 2004 paper observes) still lets traffic concentrate near the root.
//! * **Per-node release** — like the original (reference \[4\] of the paper runs a cycle-detection
//!   pass of its own), redundant prohibited turns are released per node.
//!
//! Every constructed instance is additionally machine-checked deadlock-free
//! and connected by the test-suite (and by `irnet_turns::verify_routing` in
//! downstream property tests).

use crate::{BaselineError, BaselineRouting};
use irnet_topology::{ChannelId, CommGraph, CoordinatedTree, PreorderPolicy, Quadrant, Topology};
use irnet_turns::{release_redundant_turns, TurnTable};

/// The four 2-D directions of the L-R tree classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir4 {
    /// Up and to the left (includes all tree child→parent channels).
    UpLeft,
    /// Up and to the right.
    UpRight,
    /// Down or level and to the left.
    DownLeft,
    /// Down or level and to the right (includes tree parent→child).
    DownRight,
}

impl Dir4 {
    /// Whether the direction moves right in `X`.
    pub fn is_right(self) -> bool {
        matches!(self, Dir4::UpRight | Dir4::DownRight)
    }

    /// Whether the direction moves toward the root (`Y` strictly
    /// decreases). Same-level channels count as down.
    pub fn is_up(self) -> bool {
        matches!(self, Dir4::UpLeft | Dir4::UpRight)
    }
}

/// Classifies a channel into its [`Dir4`] with respect to a coordinated
/// tree. Same-level channels are classified as `Down` (the L-R tree
/// convention: moving sideways does not approach the root).
pub fn classify(tree: &CoordinatedTree, cg: &CommGraph, c: ChannelId) -> Dir4 {
    let ch = cg.channels();
    let q = Quadrant::of(tree, ch.start(c), ch.sink(c));
    match (q.goes_up(), q.goes_left()) {
        (true, true) => Dir4::UpLeft,
        (true, false) => Dir4::UpRight,
        (false, true) => Dir4::DownLeft,
        (false, false) => Dir4::DownRight,
    }
}

/// Whether the L-turn rule allows the direction turn `from → to`
/// (same-direction transitions are always allowed).
pub fn turn_allowed(from: Dir4, to: Dir4) -> bool {
    from == to || !from.is_right() || to.is_right()
}

/// Options for the L-turn constructor.
#[derive(Debug, Clone, Copy)]
pub struct LTurnOptions {
    /// Preorder policy for the underlying coordinated (L-R) tree.
    pub policy: PreorderPolicy,
    /// Seed for the `M2` policy.
    pub seed: u64,
    /// Run the per-node redundant-turn release pass (default: true).
    pub release: bool,
}

impl Default for LTurnOptions {
    fn default() -> Self {
        LTurnOptions {
            policy: PreorderPolicy::M1,
            seed: 0,
            release: true,
        }
    }
}

/// Constructs the L-turn routing over `topo` with default options.
pub fn construct(topo: &Topology) -> Result<BaselineRouting, BaselineError> {
    construct_with(topo, LTurnOptions::default())
}

/// Constructs the L-turn routing with explicit options.
pub fn construct_with(
    topo: &Topology,
    opts: LTurnOptions,
) -> Result<BaselineRouting, BaselineError> {
    let tree = CoordinatedTree::build(topo, opts.policy, opts.seed)?;
    let cg = CommGraph::build(topo, &tree);
    let mut table = TurnTable::all_allowed(&cg);
    let ch = cg.channels();
    for v in 0..cg.num_nodes() {
        for &in_ch in ch.inputs(v) {
            let din = classify(&tree, &cg, in_ch);
            for &out_ch in ch.outputs(v) {
                if out_ch == ch.reverse(in_ch) {
                    continue;
                }
                let dout = classify(&tree, &cg, out_ch);
                if !turn_allowed(din, dout) {
                    table.prohibit(&cg, in_ch, out_ch);
                }
            }
        }
    }
    if opts.release {
        release_redundant_turns(&cg, &mut table, |_, _| true);
    }
    BaselineRouting::build(tree, cg, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_topology::gen;
    use irnet_turns::{verify_routing, DirGraph, Movement};

    #[test]
    fn rule_prohibits_exactly_right_to_left() {
        use Dir4::*;
        let dirs = [UpLeft, UpRight, DownLeft, DownRight];
        let mut prohibited = Vec::new();
        for &a in &dirs {
            for &b in &dirs {
                if a != b && !turn_allowed(a, b) {
                    prohibited.push((a, b));
                }
            }
        }
        assert_eq!(
            prohibited,
            vec![
                (UpRight, UpLeft),
                (UpRight, DownLeft),
                (DownRight, UpLeft),
                (DownRight, DownLeft)
            ]
        );
    }

    #[test]
    fn direction_level_set_is_safe_and_maximal() {
        // Model the strict-movement subcase (DL/DR strictly down) and the
        // flat subcase separately: both must be cycle-free, and adding any
        // prohibited turn must create a realizable cycle in at least one.
        use Dir4::*;
        let dirs = [UpLeft, UpRight, DownLeft, DownRight];
        let idx = |d: Dir4| dirs.iter().position(|&x| x == d).unwrap();
        let mut g = DirGraph::empty(4);
        for &a in &dirs {
            for &b in &dirs {
                if a != b && turn_allowed(a, b) {
                    g.add_edge(idx(a), idx(b));
                }
            }
        }
        let strict = [
            Movement::new(-1, -1),
            Movement::new(1, -1),
            Movement::new(-1, 1),
            Movement::new(1, 1),
        ];
        let flat_down = [
            Movement::new(-1, -1),
            Movement::new(1, -1),
            Movement::new(-1, 0),
            Movement::new(1, 0),
        ];
        assert!(g.is_safe(&strict));
        assert!(g.is_safe(&flat_down));
        // Maximality: each prohibited turn, when added, creates a
        // realizable cycle under at least one movement model.
        for (a, b) in [
            (UpRight, UpLeft),
            (UpRight, DownLeft),
            (DownRight, UpLeft),
            (DownRight, DownLeft),
        ] {
            let mut probe = g.clone();
            probe.add_edge(idx(a), idx(b));
            assert!(
                !probe.is_safe(&strict) || !probe.is_safe(&flat_down),
                "adding {a:?}->{b:?} creates no realizable cycle"
            );
        }
    }

    #[test]
    fn verifies_on_random_networks_all_policies() {
        for seed in 0..4 {
            for ports in [4u32, 8] {
                let topo =
                    gen::random_irregular(gen::IrregularParams::paper(28, ports), seed).unwrap();
                for policy in PreorderPolicy::ALL {
                    for release in [false, true] {
                        let r = construct_with(
                            &topo,
                            LTurnOptions {
                                policy,
                                seed,
                                release,
                            },
                        )
                        .unwrap();
                        let report = verify_routing(r.comm_graph(), r.turn_table());
                        assert!(
                            report.is_ok(),
                            "seed {seed} ports {ports} {policy} release={release}: \
                             cycle={:?} disc={:?}",
                            report.cycle,
                            report.disconnected
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tree_channels_classify_as_ul_and_dr() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), 1).unwrap();
        let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        let cg = CommGraph::build(&topo, &tree);
        for c in 0..cg.num_channels() {
            if cg.direction(c).is_tree() {
                let d = classify(&tree, &cg, c);
                if cg.direction(c) == irnet_topology::Direction::LuTree {
                    assert_eq!(d, Dir4::UpLeft);
                } else {
                    assert_eq!(d, Dir4::DownRight);
                }
            }
        }
    }

    #[test]
    fn release_shortens_or_keeps_routes() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), 9).unwrap();
        let with = construct_with(
            &topo,
            LTurnOptions {
                release: true,
                ..Default::default()
            },
        )
        .unwrap();
        let without = construct_with(
            &topo,
            LTurnOptions {
                release: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            with.routing_tables().avg_route_len(with.comm_graph())
                <= without.routing_tables().avg_route_len(without.comm_graph()) + 1e-12
        );
    }
}
