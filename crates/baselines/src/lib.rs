#![warn(missing_docs)]
//! Baseline deadlock-free routings for irregular networks.
//!
//! * [`updown`] — the classic up\*/down\* routing (Schroeder et al.,
//!   Autonet), in its original BFS-spanning-tree form and the DFS variant of
//!   Robles/Sancho/Duato.
//! * [`lturn`] — the L-turn routing of Jouraku, Funahashi, Amano and
//!   Koibuchi, the comparison baseline of the DOWN/UP paper. Implemented as
//!   a documented reconstruction on the 2-D turn model (the original
//!   prohibited-turn figure is not retrievable offline); every constructed
//!   instance is machine-verifiable deadlock-free and connected. See
//!   DESIGN.md §5.
//!
//! All constructors produce the same artifacts as `irnet-core::DownUp`
//! (a [`irnet_turns::TurnTable`] plus [`irnet_turns::RoutingTables`]), so
//! the simulator and harness treat every algorithm uniformly.

pub mod lturn;
pub mod updown;

use irnet_topology::{CommGraph, CoordinatedTree, Topology, TopologyError};
use irnet_turns::{RoutingError, RoutingTables, TurnTable};

/// Construction failure for a baseline routing.
#[derive(Debug)]
pub enum BaselineError {
    /// Spanning-tree construction failed.
    Topology(TopologyError),
    /// The turn restrictions disconnected some pair (would indicate a bug).
    Routing(RoutingError),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Topology(e) => write!(f, "topology error: {e}"),
            BaselineError::Routing(e) => write!(f, "routing error: {e}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<TopologyError> for BaselineError {
    fn from(e: TopologyError) -> Self {
        BaselineError::Topology(e)
    }
}

impl From<RoutingError> for BaselineError {
    fn from(e: RoutingError) -> Self {
        BaselineError::Routing(e)
    }
}

/// A constructed baseline routing: the coordinated tree it was built on,
/// the communication graph, the turn table, and shortest-path tables.
#[derive(Debug, Clone)]
pub struct BaselineRouting {
    tree: CoordinatedTree,
    cg: CommGraph,
    table: TurnTable,
    tables: RoutingTables,
}

impl BaselineRouting {
    fn build(
        tree: CoordinatedTree,
        cg: CommGraph,
        table: TurnTable,
    ) -> Result<BaselineRouting, BaselineError> {
        let tables = RoutingTables::build(&cg, &table)?;
        Ok(BaselineRouting {
            tree,
            cg,
            table,
            tables,
        })
    }

    /// The spanning tree used for channel classification.
    pub fn tree(&self) -> &CoordinatedTree {
        &self.tree
    }

    /// The communication graph.
    pub fn comm_graph(&self) -> &CommGraph {
        &self.cg
    }

    /// The per-node turn permissions.
    pub fn turn_table(&self) -> &TurnTable {
        &self.table
    }

    /// Shortest-legal-path routing tables.
    pub fn routing_tables(&self) -> &RoutingTables {
        &self.tables
    }

    /// Decomposes into owned parts `(tree, comm graph, turn table,
    /// routing tables)` — used by harness code that stores the artifacts
    /// uniformly across algorithms.
    pub fn into_parts(self) -> (CoordinatedTree, CommGraph, TurnTable, RoutingTables) {
        (self.tree, self.cg, self.table, self.tables)
    }
}

/// Convenience alias used by generic harness code: any constructor from a
/// topology to a routing.
pub type Constructor = fn(&Topology) -> Result<BaselineRouting, BaselineError>;
