//! The up\*/down\* routing (Schroeder et al., DEC SRC Autonet, 1990).
//!
//! Every channel is labelled *up* or *down* with respect to a spanning
//! tree; a legal route traverses zero or more up channels followed by zero
//! or more down channels — i.e. every down→up turn is prohibited. This
//! crate provides the two standard spanning-tree flavours:
//!
//! * **BFS** (the original): `up` points to the endpoint with the smaller
//!   `(BFS level, node id)` pair.
//! * **DFS** (Robles/Sancho/Duato, ISHPC 2000): `up` points to the endpoint
//!   with the smaller DFS preorder number, which empirically spreads the
//!   prohibited turns away from the root.
//!
//! Deadlock freedom: each channel strictly decreases (up) or increases
//! (down) its endpoint order, and down→up is prohibited, so a dependency
//! cycle would have to be order-monotone — impossible. Connectivity: the
//! tree path climbs to the LCA (all up) and descends (all down).

use crate::{BaselineError, BaselineRouting};
use irnet_topology::{ChannelId, CommGraph, CoordinatedTree, NodeId, PreorderPolicy, Topology};
use irnet_turns::TurnTable;

/// Spanning-tree flavour for up\*/down\*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeKind {
    /// Breadth-first tree, root = node 0 (the original Autonet scheme).
    Bfs,
    /// Depth-first tree, root = node 0 (Robles et al.).
    Dfs,
}

/// Constructs the up\*/down\* routing over `topo` with the given tree kind.
pub fn construct(topo: &Topology, kind: TreeKind) -> Result<BaselineRouting, BaselineError> {
    // The coordinated tree doubles as our BFS tree and supplies the
    // communication graph (channel table). Channel labels below do not use
    // its X coordinates except as documentation; `up` is defined by `order`.
    let tree = CoordinatedTree::build(topo, PreorderPolicy::M1, 0)?;
    let cg = CommGraph::build(topo, &tree);
    let order = node_order(topo, &tree, kind);

    let up = |c: ChannelId| -> bool {
        let ch = cg.channels();
        order[ch.sink(c) as usize] < order[ch.start(c) as usize]
    };

    // Prohibit every down→up pair, channel by channel.
    let mut table = TurnTable::all_allowed(&cg);
    let ch = cg.channels();
    for v in 0..cg.num_nodes() {
        for &in_ch in ch.inputs(v) {
            if up(in_ch) {
                continue;
            }
            for &out_ch in ch.outputs(v) {
                if out_ch != ch.reverse(in_ch) && up(out_ch) {
                    table.prohibit(&cg, in_ch, out_ch);
                }
            }
        }
    }
    BaselineRouting::build(tree, cg, table)
}

/// BFS up\*/down\* (the original).
pub fn construct_bfs(topo: &Topology) -> Result<BaselineRouting, BaselineError> {
    construct(topo, TreeKind::Bfs)
}

/// DFS up\*/down\* (Robles et al.).
pub fn construct_dfs(topo: &Topology) -> Result<BaselineRouting, BaselineError> {
    construct(topo, TreeKind::Dfs)
}

/// Total order on nodes: smaller = closer to "up".
fn node_order(topo: &Topology, tree: &CoordinatedTree, kind: TreeKind) -> Vec<u64> {
    let n = topo.num_nodes() as usize;
    match kind {
        TreeKind::Bfs => {
            // Lexicographic (level, id).
            (0..n)
                .map(|v| ((tree.y(v as NodeId) as u64) << 32) | v as u64)
                .collect()
        }
        TreeKind::Dfs => {
            // DFS preorder from node 0, scanning neighbors in id order.
            let mut order = vec![u64::MAX; n];
            let mut next = 0u64;
            let mut stack = vec![0 as NodeId];
            let mut seen = vec![false; n];
            seen[0] = true;
            while let Some(v) = stack.pop() {
                order[v as usize] = next;
                next += 1;
                // Push in reverse so the smallest-id neighbor is visited
                // first.
                for &(w, _) in topo.neighbors(v).iter().rev() {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
            order
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_topology::gen;
    use irnet_turns::verify_routing;

    #[test]
    fn both_flavours_verify_on_random_networks() {
        for seed in 0..6 {
            let topo = gen::random_irregular(gen::IrregularParams::paper(28, 4), seed).unwrap();
            for kind in [TreeKind::Bfs, TreeKind::Dfs] {
                let r = construct(&topo, kind).unwrap();
                let report = verify_routing(r.comm_graph(), r.turn_table());
                assert!(
                    report.is_ok(),
                    "{kind:?} seed {seed}: cycle={:?} disc={:?}",
                    report.cycle,
                    report.disconnected
                );
            }
        }
    }

    #[test]
    fn routes_never_go_down_then_up() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), 2).unwrap();
        let r = construct_bfs(&topo).unwrap();
        let cg = r.comm_graph();
        let ch = cg.channels();
        let tree = r.tree();
        let order = |v: u32| -> u64 { ((tree.y(v) as u64) << 32) | v as u64 };
        for s in 0..topo.num_nodes() {
            for t in 0..topo.num_nodes() {
                if s == t {
                    continue;
                }
                let path = r.routing_tables().route(cg, s, t);
                let mut gone_down = false;
                for &c in &path {
                    let goes_up = order(ch.sink(c)) < order(ch.start(c));
                    if !goes_up {
                        gone_down = true;
                    }
                    assert!(!(gone_down && goes_up), "route {s}->{t} went down then up");
                }
            }
        }
    }

    #[test]
    fn dfs_variant_usually_differs_from_bfs() {
        let mut differs = false;
        for seed in 0..4 {
            let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), seed).unwrap();
            let bfs = construct_bfs(&topo).unwrap();
            let dfs = construct_dfs(&topo).unwrap();
            if bfs.turn_table() != dfs.turn_table() {
                differs = true;
            }
        }
        assert!(differs, "BFS and DFS up*/down* coincided on every topology");
    }

    #[test]
    fn works_on_regular_topologies() {
        for topo in [
            gen::ring(8).unwrap(),
            gen::mesh(4, 4).unwrap(),
            gen::torus(3, 3).unwrap(),
        ] {
            let r = construct_bfs(&topo).unwrap();
            assert!(verify_routing(r.comm_graph(), r.turn_table()).is_ok());
        }
    }
}
