//! Deadlock-freedom certificates: a machine-checkable artifact proving (or
//! refuting) acyclicity of a channel dependency graph.
//!
//! For an acyclic CDG the certificate is a **total numbering** of the
//! channels such that every dependency edge strictly increases — the
//! Dally–Seitz argument in its checkable form: any packet chain must climb
//! the numbering, so no waiting cycle can close. For a cyclic CDG the
//! certificate is a **minimized witness cycle**: the shortest closed walk of
//! allowed turns, found by per-node BFS restricted to the cyclic core (the
//! channels Kahn's algorithm can never pop).
//!
//! Checking a certificate requires none of the machinery that produced it:
//! [`recheck`] only reads the certificate and walks the CDG edges once.

use irnet_topology::{ChannelId, CommGraph};
use irnet_turns::{ChannelDepGraph, TurnTable};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::VecDeque;
use std::fmt;

/// The outcome a certificate attests to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The CDG is acyclic: `numbering[c]` is a topological rank and every
    /// dependency edge `u → v` satisfies `numbering[u] < numbering[v]`.
    DeadlockFree {
        /// Total numbering of channels (a permutation of `0..num_channels`).
        numbering: Vec<u32>,
    },
    /// The CDG contains a cycle: `witness` is a shortest turn cycle
    /// `c0 → c1 → … → c0`, every consecutive (cyclic) pair an allowed turn.
    Deadlock {
        /// The minimized witness cycle.
        witness: Vec<ChannelId>,
    },
}

/// A deadlock-freedom certificate for one `(CommGraph, TurnTable)` pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Certificate {
    /// Channels in the analyzed dependency graph.
    pub num_channels: u32,
    /// Dependency edges (allowed channel-to-channel turns).
    pub num_edges: usize,
    /// The attested outcome with its evidence.
    pub verdict: Verdict,
}

impl Certificate {
    /// Whether the certificate attests deadlock freedom.
    pub fn is_deadlock_free(&self) -> bool {
        matches!(self.verdict, Verdict::DeadlockFree { .. })
    }

    /// Serialize to pretty-printed JSON (schema documented in DESIGN.md).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("certificate serialization cannot fail")
    }

    /// Parse a certificate back from its JSON form.
    pub fn from_json(json: &str) -> Result<Certificate, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

impl Serialize for Verdict {
    fn to_value(&self) -> Value {
        match self {
            Verdict::DeadlockFree { numbering } => Value::Map(vec![
                (
                    "status".to_string(),
                    Value::Str("deadlock_free".to_string()),
                ),
                ("numbering".to_string(), numbering.to_value()),
            ]),
            Verdict::Deadlock { witness } => Value::Map(vec![
                ("status".to_string(), Value::Str("deadlock".to_string())),
                ("witness".to_string(), witness.to_value()),
            ]),
        }
    }
}

impl Deserialize for Verdict {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let status: String = match v.get("status") {
            Some(s) => Deserialize::from_value(s)?,
            None => return Err(DeError::custom("verdict missing `status`")),
        };
        match status.as_str() {
            "deadlock_free" => {
                let numbering = v
                    .get("numbering")
                    .ok_or_else(|| DeError::custom("deadlock_free verdict missing `numbering`"))?;
                Ok(Verdict::DeadlockFree {
                    numbering: Deserialize::from_value(numbering)?,
                })
            }
            "deadlock" => {
                let witness = v
                    .get("witness")
                    .ok_or_else(|| DeError::custom("deadlock verdict missing `witness`"))?;
                Ok(Verdict::Deadlock {
                    witness: Deserialize::from_value(witness)?,
                })
            }
            other => Err(DeError::custom(format!("unknown verdict status `{other}`"))),
        }
    }
}

/// Certify a turn table over a communication graph.
pub fn certify(cg: &CommGraph, table: &TurnTable) -> Certificate {
    certify_dep(&ChannelDepGraph::build(cg, table))
}

/// Certify a prebuilt channel dependency graph.
pub fn certify_dep(dep: &ChannelDepGraph) -> Certificate {
    let n = dep.num_channels() as usize;
    let mut indeg = vec![0u32; n];
    for c in 0..n {
        for &s in dep.successors(c as ChannelId) {
            indeg[s as usize] += 1;
        }
    }
    // Kahn's algorithm; FIFO pop order is a topological order of the
    // acyclic part, recorded directly as the numbering.
    let mut queue: VecDeque<ChannelId> =
        (0..n as u32).filter(|&c| indeg[c as usize] == 0).collect();
    let mut numbering = vec![u32::MAX; n];
    let mut next = 0u32;
    while let Some(c) = queue.pop_front() {
        numbering[c as usize] = next;
        next += 1;
        for &s in dep.successors(c) {
            indeg[s as usize] -= 1;
            if indeg[s as usize] == 0 {
                queue.push_back(s);
            }
        }
    }
    let verdict = if next as usize == n {
        Verdict::DeadlockFree { numbering }
    } else {
        // Channels never popped form the cyclic core: every cycle lies
        // entirely inside it, so a shortest-cycle search restricted to the
        // core finds the globally shortest witness.
        let core: Vec<bool> = numbering.iter().map(|&r| r == u32::MAX).collect();
        Verdict::Deadlock {
            witness: shortest_core_cycle(dep, &core),
        }
    };
    Certificate {
        num_channels: dep.num_channels(),
        num_edges: dep.num_edges(),
        verdict,
    }
}

/// Shortest directed cycle within the marked core: BFS from each core node
/// `r`, pruned by the best length found so far; the first edge back into
/// `r` closes a candidate cycle.
fn shortest_core_cycle(dep: &ChannelDepGraph, core: &[bool]) -> Vec<ChannelId> {
    let n = core.len();
    let mut best: Option<Vec<ChannelId>> = None;
    let mut dist = vec![u32::MAX; n];
    let mut parent = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    for r in 0..n as u32 {
        if !core[r as usize] {
            continue;
        }
        let best_len = best.as_ref().map_or(u32::MAX, |b| b.len() as u32);
        if best_len == 2 {
            break; // cannot beat a 2-cycle
        }
        dist.fill(u32::MAX);
        parent.fill(u32::MAX);
        queue.clear();
        dist[r as usize] = 0;
        queue.push_back(r);
        'bfs: while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            if du + 1 >= best_len {
                break; // deeper layers cannot improve on `best`
            }
            for &w in dep.successors(u) {
                if !core[w as usize] {
                    continue;
                }
                if w == r {
                    // Cycle r → … → u → r of length du + 1.
                    let mut cyc = Vec::with_capacity(du as usize + 1);
                    let mut x = u;
                    while x != u32::MAX {
                        cyc.push(x);
                        x = parent[x as usize];
                    }
                    cyc.reverse();
                    best = Some(cyc);
                    break 'bfs;
                }
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = du + 1;
                    parent[w as usize] = u;
                    queue.push_back(w);
                }
            }
        }
    }
    best.expect("cyclic core must contain a cycle")
}

/// Why a certificate failed independent validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecheckError {
    /// Certificate channel count disagrees with the graph.
    WrongChannelCount {
        /// Channels claimed by the certificate.
        claimed: u32,
        /// Channels in the dependency graph.
        actual: u32,
    },
    /// The numbering is not a permutation of `0..num_channels`.
    NotAPermutation,
    /// An edge does not strictly increase under the numbering.
    NonIncreasingEdge {
        /// Edge source channel.
        from: ChannelId,
        /// Edge target channel.
        to: ChannelId,
    },
    /// The witness is empty.
    EmptyWitness,
    /// A claimed witness step is not an edge of the dependency graph.
    NotAnEdge {
        /// Step source channel.
        from: ChannelId,
        /// Step target channel.
        to: ChannelId,
    },
}

impl fmt::Display for RecheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecheckError::WrongChannelCount { claimed, actual } => {
                write!(
                    f,
                    "certificate covers {claimed} channels, graph has {actual}"
                )
            }
            RecheckError::NotAPermutation => {
                write!(f, "numbering is not a permutation of 0..num_channels")
            }
            RecheckError::NonIncreasingEdge { from, to } => {
                write!(
                    f,
                    "edge {from} -> {to} does not increase under the numbering"
                )
            }
            RecheckError::EmptyWitness => write!(f, "deadlock witness is empty"),
            RecheckError::NotAnEdge { from, to } => {
                write!(f, "witness step {from} -> {to} is not a dependency edge")
            }
        }
    }
}

impl std::error::Error for RecheckError {}

/// Validate a certificate against a dependency graph **without** invoking
/// any certifier code: only the certificate fields and the CDG edge lists
/// are read.
pub fn recheck(cert: &Certificate, dep: &ChannelDepGraph) -> Result<(), RecheckError> {
    let n = dep.num_channels();
    if cert.num_channels != n {
        return Err(RecheckError::WrongChannelCount {
            claimed: cert.num_channels,
            actual: n,
        });
    }
    match &cert.verdict {
        Verdict::DeadlockFree { numbering } => {
            if numbering.len() != n as usize {
                return Err(RecheckError::NotAPermutation);
            }
            let mut seen = vec![false; n as usize];
            for &r in numbering {
                if r >= n || seen[r as usize] {
                    return Err(RecheckError::NotAPermutation);
                }
                seen[r as usize] = true;
            }
            for c in 0..n {
                for &s in dep.successors(c) {
                    if numbering[c as usize] >= numbering[s as usize] {
                        return Err(RecheckError::NonIncreasingEdge { from: c, to: s });
                    }
                }
            }
            Ok(())
        }
        Verdict::Deadlock { witness } => {
            if witness.is_empty() {
                return Err(RecheckError::EmptyWitness);
            }
            for i in 0..witness.len() {
                let from = witness[i];
                let to = witness[(i + 1) % witness.len()];
                if !dep.successors(from).contains(&to) {
                    return Err(RecheckError::NotAnEdge { from, to });
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_topology::{gen, CommGraph, CoordinatedTree, PreorderPolicy};
    use irnet_turns::TurnTable;

    fn cg_of(topo: &irnet_topology::Topology) -> CommGraph {
        let tree = CoordinatedTree::build(topo, PreorderPolicy::M1, 0).unwrap();
        CommGraph::build(topo, &tree)
    }

    #[test]
    fn tree_certificate_is_deadlock_free_and_rechecks() {
        let topo = gen::kary_tree(15, 2).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::all_allowed(&cg);
        let dep = ChannelDepGraph::build(&cg, &table);
        let cert = certify_dep(&dep);
        assert!(cert.is_deadlock_free());
        recheck(&cert, &dep).unwrap();
    }

    #[test]
    fn ring_certificate_carries_minimal_witness() {
        let topo = gen::ring(6).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::all_allowed(&cg);
        let dep = ChannelDepGraph::build(&cg, &table);
        let cert = certify_dep(&dep);
        let Verdict::Deadlock { witness } = &cert.verdict else {
            panic!("unrestricted ring must deadlock");
        };
        recheck(&cert, &dep).unwrap();
        // Minimality: no shorter closed walk exists. On a 6-ring each
        // orientation's cycle has length 6 and witnesses cannot be shorter.
        assert_eq!(witness.len(), 6);
        // The raw DFS witness is never shorter than the minimized one.
        let raw = dep.find_cycle().unwrap();
        assert!(witness.len() <= raw.len());
    }

    #[test]
    fn tampered_certificates_are_rejected() {
        let topo = gen::kary_tree(10, 3).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::all_allowed(&cg);
        let dep = ChannelDepGraph::build(&cg, &table);
        let mut cert = certify_dep(&dep);

        // Swap two ranks on channels joined by an edge: must be caught.
        if let Verdict::DeadlockFree { numbering } = &mut cert.verdict {
            let c = (0..dep.num_channels())
                .find(|&c| !dep.successors(c).is_empty())
                .unwrap();
            let s = dep.successors(c)[0];
            numbering.swap(c as usize, s as usize);
        }
        assert!(matches!(
            recheck(&cert, &dep),
            Err(RecheckError::NonIncreasingEdge { .. })
        ));

        // A constant numbering is not a permutation.
        let cert = Certificate {
            num_channels: dep.num_channels(),
            num_edges: dep.num_edges(),
            verdict: Verdict::DeadlockFree {
                numbering: vec![0; dep.num_channels() as usize],
            },
        };
        assert_eq!(recheck(&cert, &dep), Err(RecheckError::NotAPermutation));

        // A fabricated witness must name real edges.
        let cert = Certificate {
            num_channels: dep.num_channels(),
            num_edges: dep.num_edges(),
            verdict: Verdict::Deadlock {
                witness: vec![0, 0],
            },
        };
        assert!(matches!(
            recheck(&cert, &dep),
            Err(RecheckError::NotAnEdge { .. })
        ));
    }

    #[test]
    fn json_roundtrip_preserves_certificates() {
        let topo = gen::ring(5).unwrap();
        let cg = cg_of(&topo);
        for table in [
            TurnTable::all_allowed(&cg),
            TurnTable::from_direction_rule(&cg, |din, dout| !(din.goes_down() && dout.goes_up())),
        ] {
            let cert = certify(&cg, &table);
            let back = Certificate::from_json(&cert.to_json()).unwrap();
            assert_eq!(cert, back);
        }
    }
}
