//! Reconfiguration-epoch certification.
//!
//! A repaired routing function is only half the story: the *transition* to
//! it must also be deadlock-free. Following UPR (Crespo et al.,
//! arXiv:2006.02332), a live reconfiguration is safe when the union of the
//! old and new channel-dependency graphs is acyclic — during the drain,
//! packets routed under either function hold and request channels, so a
//! deadlock can thread dependencies from both.
//!
//! [`certify_transition`] therefore issues *two* Dally–Seitz certificates
//! per epoch, both restricted to the surviving channels:
//!
//! * **degraded** — the repaired turn table alone (steady state after the
//!   drain);
//! * **union** — the old∪new dependency union (the live transition
//!   window).
//!
//! Each is a standard [`Certificate`]: a total channel numbering when
//! acyclic, a minimized witness cycle otherwise — independently
//! re-checkable with [`crate::recheck`].

use crate::certificate::{certify_dep, Certificate};
use irnet_topology::{ChannelId, CommGraph};
use irnet_turns::{ChannelDepGraph, PathOracle, TurnTable};
use serde::{Deserialize, Serialize};

/// The two deadlock-freedom certificates of one reconfiguration epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochCertificates {
    /// Certificate for the repaired (degraded) turn table alone.
    pub degraded: Certificate,
    /// Certificate for the UPR-style old∪new dependency union.
    pub union: Certificate,
}

impl EpochCertificates {
    /// True when both the steady state and the transition are certified
    /// deadlock-free.
    pub fn is_deadlock_free(&self) -> bool {
        self.degraded.is_deadlock_free() && self.union.is_deadlock_free()
    }
}

/// Certifies the transition from `old` to `new` on `cg` with
/// `dead_channel` flagging the channels dead in the **new** epoch.
///
/// Both tables are restricted to the surviving channels first: packets on
/// a dead channel were dropped, not drained, so dependencies through dead
/// channels cannot participate in a deadlock (and the repaired table
/// already prohibits them).
///
/// The same call certifies a **recovery (up) transition** — pass the
/// channels still dead *after* the revival. A channel revived by the
/// transition was prohibited by the old epoch's table (it was dead then),
/// so it is isolated in the old dependency graph and only acquires
/// dependencies from `new`; the union therefore soundly covers worms
/// routed under either function while the revived capacity comes online.
pub fn certify_transition(
    cg: &CommGraph,
    old: &TurnTable,
    new: &TurnTable,
    dead_channel: &[bool],
) -> EpochCertificates {
    assert_eq!(dead_channel.len(), cg.num_channels() as usize);
    let alive = |i: ChannelId, o: ChannelId| !dead_channel[i as usize] && !dead_channel[o as usize];
    let old_live = TurnTable::from_channel_rule(cg, |i, o| alive(i, o) && old.is_allowed(cg, i, o));
    let new_live = TurnTable::from_channel_rule(cg, |i, o| alive(i, o) && new.is_allowed(cg, i, o));
    let old_dep = ChannelDepGraph::build(cg, &old_live);
    let new_dep = ChannelDepGraph::build(cg, &new_live);
    EpochCertificates {
        degraded: certify_dep(&new_dep),
        union: certify_dep(&old_dep.union(&new_dep)),
    }
}

/// Incrementally re-certifies the old∪new transition union by checking only
/// the dependency edges the repair *added*.
///
/// The old (live-restricted) dependency graph is acyclic by the epoch-chain
/// invariant — every table in the chain carries a Dally–Seitz certificate —
/// so the union can only acquire a cycle through an edge present in `new`
/// but not in `old`. A [`PathOracle`] over the old graph answers "does
/// adding `i → o` close a cycle?" in one incremental DFS per added edge;
/// accepted edges join the oracle so later checks see the growing union.
///
/// Returns the number of added dependency edges when the union is acyclic,
/// or the first added turn `(input, output)` that closes a cycle. The full
/// [`certify_transition`] remains the exhaustive oracle; this is the
/// `O(delta)` fast path used by incremental repair.
pub fn union_acyclic_delta(
    cg: &CommGraph,
    old: &TurnTable,
    new: &TurnTable,
    dead_channel: &[bool],
) -> Result<usize, (ChannelId, ChannelId)> {
    assert_eq!(dead_channel.len(), cg.num_channels() as usize);
    let alive = |i: ChannelId, o: ChannelId| !dead_channel[i as usize] && !dead_channel[o as usize];
    let old_live = TurnTable::from_channel_rule(cg, |i, o| alive(i, o) && old.is_allowed(cg, i, o));
    let old_dep = ChannelDepGraph::build(cg, &old_live);
    debug_assert!(old_dep.is_acyclic(), "epoch chain carried a cyclic table");
    let mut oracle = PathOracle::new(&old_dep);
    let ch = cg.channels();
    let mut added = 0usize;
    for v in 0..cg.num_nodes() {
        let outputs = ch.outputs(v);
        for &in_ch in ch.inputs(v) {
            if dead_channel[in_ch as usize] {
                continue;
            }
            for &out_ch in outputs {
                if dead_channel[out_ch as usize]
                    || out_ch == ch.reverse(in_ch)
                    || !new.is_allowed(cg, in_ch, out_ch)
                    || old_live.is_allowed(cg, in_ch, out_ch)
                {
                    continue;
                }
                if oracle.has_path(out_ch, in_ch) {
                    return Err((in_ch, out_ch));
                }
                oracle.add_edge(in_ch, out_ch);
                added += 1;
            }
        }
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certificate::{recheck, Verdict};
    use irnet_topology::{gen, CoordinatedTree, PreorderPolicy};

    fn cg_of(topo: &irnet_topology::Topology) -> CommGraph {
        let tree = CoordinatedTree::build(topo, PreorderPolicy::M1, 0).unwrap();
        CommGraph::build(topo, &tree)
    }

    #[test]
    fn identical_tables_certify_trivially() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), 4).unwrap();
        let cg = cg_of(&topo);
        // A known deadlock-free table: strictly downward routing.
        let table = TurnTable::from_direction_rule(&cg, |din, dout| {
            !din.goes_down()
                && !matches!(
                    din,
                    irnet_topology::Direction::LCross | irnet_topology::Direction::RCross
                )
                || dout.goes_down()
        });
        let dead = vec![false; cg.num_channels() as usize];
        let certs = certify_transition(&cg, &table, &table, &dead);
        assert!(certs.is_deadlock_free());
        // The union of a table with itself has the same dependency count.
        assert_eq!(certs.union.num_edges, certs.degraded.num_edges);
        // Both certificates recheck against independently rebuilt graphs.
        let dep = ChannelDepGraph::build(&cg, &table);
        recheck(&certs.degraded, &dep).unwrap();
        recheck(&certs.union, &dep.union(&dep)).unwrap();
    }

    #[test]
    fn unsafe_transition_yields_union_witness() {
        // On a ring, two "one-way" tables can each be acyclic while their
        // union closes the loop. Build one table that only follows even
        // input channels and one that only follows odd ones.
        let topo = gen::ring(6).unwrap();
        let cg = cg_of(&topo);
        let all = TurnTable::all_allowed(&cg);
        let half_a =
            TurnTable::from_channel_rule(&cg, |i, o| i % 2 == 0 && all.is_allowed(&cg, i, o));
        let half_b =
            TurnTable::from_channel_rule(&cg, |i, o| i % 2 == 1 && all.is_allowed(&cg, i, o));
        let dead = vec![false; cg.num_channels() as usize];
        let certs = certify_transition(&cg, &half_a, &half_b, &dead);
        // Each half alone may be fine; the union must carry a witness.
        assert!(!certs.union.is_deadlock_free());
        match &certs.union.verdict {
            Verdict::Deadlock { witness } => {
                assert!(witness.len() >= 3);
                // Every witness edge exists in old∪new.
                let da = ChannelDepGraph::build(&cg, &half_a);
                let db = ChannelDepGraph::build(&cg, &half_b);
                let u = da.union(&db);
                for k in 0..witness.len() {
                    let x = witness[k];
                    let y = witness[(k + 1) % witness.len()];
                    assert!(u.successors(x).contains(&y));
                }
            }
            Verdict::DeadlockFree { .. } => unreachable!(),
        }
    }

    #[test]
    fn dead_channels_are_excluded_from_both_certificates() {
        let topo = gen::ring(4).unwrap();
        let cg = cg_of(&topo);
        // All turns allowed deadlocks on a ring…
        let table = TurnTable::all_allowed(&cg);
        let live = vec![false; cg.num_channels() as usize];
        assert!(!certify_transition(&cg, &table, &table, &live).is_deadlock_free());
        // …but killing one link's channels breaks the only cycle.
        let mut dead = vec![false; cg.num_channels() as usize];
        dead[0] = true;
        dead[1] = true;
        let certs = certify_transition(&cg, &table, &table, &dead);
        assert!(certs.is_deadlock_free());
    }

    #[test]
    fn delta_recertifier_agrees_with_exhaustive_union() {
        // Safe transition: widening a strictly-down table stays acyclic and
        // the delta count matches the edge-count difference.
        let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), 4).unwrap();
        let cg = cg_of(&topo);
        let down = TurnTable::from_direction_rule(&cg, |_, dout| dout.goes_down());
        let dead = vec![false; cg.num_channels() as usize];
        let certs = certify_transition(&cg, &down, &down, &dead);
        assert!(certs.is_deadlock_free());
        assert_eq!(union_acyclic_delta(&cg, &down, &down, &dead), Ok(0));

        // Unsafe transition: the two ring halves union into a cycle, and the
        // delta recertifier reports an added turn certify_transition also
        // rejects.
        let ring = gen::ring(6).unwrap();
        let rcg = cg_of(&ring);
        let all = TurnTable::all_allowed(&rcg);
        let half_a =
            TurnTable::from_channel_rule(&rcg, |i, o| i % 2 == 0 && all.is_allowed(&rcg, i, o));
        let half_b =
            TurnTable::from_channel_rule(&rcg, |i, o| i % 2 == 1 && all.is_allowed(&rcg, i, o));
        let rdead = vec![false; rcg.num_channels() as usize];
        let (i, o) = union_acyclic_delta(&rcg, &half_a, &half_b, &rdead).unwrap_err();
        assert!(half_b.is_allowed(&rcg, i, o));
        assert!(!half_a.is_allowed(&rcg, i, o));
        assert!(!certify_transition(&rcg, &half_a, &half_b, &rdead).is_deadlock_free());
    }

    #[test]
    fn delta_recertifier_ignores_turns_through_dead_channels() {
        // All-allowed on a ring is cyclic, but once one link's channels die
        // the union restricted to survivors is acyclic; the delta pass must
        // skip the dead pairs certify_transition also excludes.
        let ring = gen::ring(4).unwrap();
        let cg = cg_of(&ring);
        let table = TurnTable::all_allowed(&cg);
        let none = TurnTable::from_channel_rule(&cg, |_, _| false);
        let mut dead = vec![false; cg.num_channels() as usize];
        dead[0] = true;
        dead[1] = true;
        let added = union_acyclic_delta(&cg, &none, &table, &dead).unwrap();
        let live = TurnTable::from_channel_rule(&cg, |i, o| {
            !dead[i as usize] && !dead[o as usize] && table.is_allowed(&cg, i, o)
        });
        let expect = ChannelDepGraph::build(&cg, &live).num_edges();
        assert_eq!(added, expect);
    }

    #[test]
    fn up_transition_certifies_with_revived_channels_isolated_in_old() {
        // A recovery epoch: the old table routed around dead channels 0/1,
        // the new table uses them again, and nothing is dead any more. The
        // revived channels carried no turns under the old table, so the
        // old∪new union adds exactly the new table's dependencies — the
        // certificate must be deadlock-free and the union must not exceed
        // the steady state.
        let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), 4).unwrap();
        let cg = cg_of(&topo);
        let down = TurnTable::from_direction_rule(&cg, |_, dout| dout.goes_down());
        let was_dead = |c: ChannelId| c == 0 || c == 1;
        let old = TurnTable::from_channel_rule(&cg, |i, o| {
            !was_dead(i) && !was_dead(o) && down.is_allowed(&cg, i, o)
        });
        let none_dead = vec![false; cg.num_channels() as usize];
        let certs = certify_transition(&cg, &old, &down, &none_dead);
        assert!(certs.is_deadlock_free());
        // old ⊆ new once restricted to the live set, so the transition
        // union collapses onto the repaired steady state.
        assert_eq!(certs.union.num_edges, certs.degraded.num_edges);
        // And the delta recertifier agrees: every added edge touches a
        // revived channel, none closes a cycle.
        let added = union_acyclic_delta(&cg, &old, &down, &none_dead).unwrap();
        let old_edges = ChannelDepGraph::build(&cg, &old).num_edges();
        assert_eq!(added, certs.union.num_edges - old_edges);
    }

    #[test]
    fn epoch_certificates_serialize() {
        let topo = gen::ring(4).unwrap();
        let cg = cg_of(&topo);
        let table = TurnTable::all_allowed(&cg);
        let dead = vec![false; cg.num_channels() as usize];
        let certs = certify_transition(&cg, &table, &table, &dead);
        let json = serde_json::to_string(&certs).unwrap();
        let back: EpochCertificates = serde_json::from_str(&json).unwrap();
        assert_eq!(certs, back);
    }
}
