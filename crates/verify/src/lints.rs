//! Structural routing lints with stable diagnostic codes.
//!
//! The error-level codes are the machine form of the DOWN/UP safety
//! argument (`crates/core/src/phase2.rs` module docs): nothing may turn
//! into `LU_TREE`, an ascent on cross channels is terminal, and the
//! descent/flat phase is Y-monotone. A *violation of the argument* is not
//! by itself a deadlock — the paper's Phase 3 releases and the up\*/down\*
//! baselines legitimately break these shape rules while staying acyclic —
//! so the structural codes fire only when the offending turn actually lies
//! on a dependency cycle. `IRNET-E001` (with a minimized witness from the
//! certifier) catches any remaining cycle the shape rules cannot classify.
//!
//! | Code | Severity | Meaning |
//! |------|----------|---------|
//! | `IRNET-E001` | error | channel dependency cycle (deadlock) |
//! | `IRNET-E002` | error | turn-legal routing is not connected |
//! | `IRNET-E003` | error | cycle-closing turn into `LU_TREE` |
//! | `IRNET-E004` | error | cycle-closing non-terminal ascent |
//! | `IRNET-E005` | error | cycle-closing non-monotone descent |
//! | `IRNET-W001` | warning | allowed turn used by no minimal route |
//! | `IRNET-W002` | warning | channel used by no minimal route |
//! | `IRNET-E006` | error | reachable in-transit state with no escape (black hole) |
//! | `IRNET-E007` | error | no deadlock-free connected routing exists (infeasible) |
//! | `IRNET-E008` | error | minimal turn-legal route longer than the switch count |
//! | `IRNET-E009` | error | misroute escape edge does not climb the certificate rank |
//! | `IRNET-W003` | warning | route stretch over BFS exceeds the audit threshold |
//! | `IRNET-W004` | warning | prohibited turn is not load-bearing (releasable) |
//!
//! Codes `E001`–`E005` and `W001`/`W002` are produced by [`lint`] in this
//! crate; `E006`–`E009` and `W003`/`W004` are produced by the whole-table
//! property auditor in `irnet-analyze`, which reuses the [`Finding`] /
//! [`LintReport`] plumbing and JSON export defined here.

use crate::certificate::{certify_dep, Certificate, Verdict};
use irnet_topology::{ChannelId, CommGraph, Direction, NodeId};
use irnet_turns::{ChannelDepGraph, RoutingError, RoutingTables, TurnTable, INJECTION_SLOT};
use serde::{Serialize, Value};
use std::collections::HashSet;
use std::fmt;

/// Stable diagnostic codes emitted by the linter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintCode {
    /// `IRNET-E001`: the channel dependency graph has a cycle.
    DeadlockCycle,
    /// `IRNET-E002`: some ordered switch pair has no turn-legal route.
    Disconnected,
    /// `IRNET-E003`: a cycle-closing turn enters an `LU_TREE` channel.
    TurnIntoLuTree,
    /// `IRNET-E004`: a cycle-closing turn leaves an up-cross channel for a
    /// non-up-cross channel (the ascent phase must be terminal).
    NonTerminalAscent,
    /// `IRNET-E005`: a cycle-closing turn goes back up after a down or
    /// horizontal channel (the descent phase must be Y-monotone).
    NonMonotoneDescent,
    /// `IRNET-W001`: an allowed turn lies on no minimal route.
    DeadTurn,
    /// `IRNET-W002`: a channel lies on no minimal route.
    UnreachableChannel,
    /// `IRNET-E006`: a state reachable under the misroute escape masks has
    /// no escape toward its destination (a silent black hole).
    BlackHole,
    /// `IRNET-E007`: the feasibility oracle proved that no deadlock-free
    /// connected routing exists on the (degraded) topology.
    Infeasible,
    /// `IRNET-E008`: a minimal turn-legal route is longer than the switch
    /// count — it revisits a switch, which tree-based routing never needs.
    RouteOverlong,
    /// `IRNET-E009`: a misroute escape edge fails to climb the certificate
    /// numbering, so misrouting admits a static livelock cycle.
    RankViolation,
    /// `IRNET-W003`: the worst route stretch over BFS shortest paths
    /// exceeds the audit threshold.
    ExcessStretch,
    /// `IRNET-W004`: a prohibited turn is not load-bearing — releasing it
    /// alone would keep the dependency graph acyclic.
    RedundantProhibition,
}

/// Finding severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Certification must fail.
    Error,
    /// Suspicious but not a correctness violation.
    Warning,
}

impl LintCode {
    /// The stable textual code (`IRNET-Exxx` / `IRNET-Wxxx`).
    pub fn code(self) -> &'static str {
        match self {
            LintCode::DeadlockCycle => "IRNET-E001",
            LintCode::Disconnected => "IRNET-E002",
            LintCode::TurnIntoLuTree => "IRNET-E003",
            LintCode::NonTerminalAscent => "IRNET-E004",
            LintCode::NonMonotoneDescent => "IRNET-E005",
            LintCode::DeadTurn => "IRNET-W001",
            LintCode::UnreachableChannel => "IRNET-W002",
            LintCode::BlackHole => "IRNET-E006",
            LintCode::Infeasible => "IRNET-E007",
            LintCode::RouteOverlong => "IRNET-E008",
            LintCode::RankViolation => "IRNET-E009",
            LintCode::ExcessStretch => "IRNET-W003",
            LintCode::RedundantProhibition => "IRNET-W004",
        }
    }

    /// Short kebab-case name of the lint.
    pub fn name(self) -> &'static str {
        match self {
            LintCode::DeadlockCycle => "deadlock-cycle",
            LintCode::Disconnected => "disconnected",
            LintCode::TurnIntoLuTree => "turn-into-LU_TREE",
            LintCode::NonTerminalAscent => "non-terminal-ascent",
            LintCode::NonMonotoneDescent => "non-monotone-descent",
            LintCode::DeadTurn => "dead-turn",
            LintCode::UnreachableChannel => "unreachable-channel",
            LintCode::BlackHole => "black-hole",
            LintCode::Infeasible => "infeasible",
            LintCode::RouteOverlong => "route-overlong",
            LintCode::RankViolation => "misroute-rank-violation",
            LintCode::ExcessStretch => "excess-stretch",
            LintCode::RedundantProhibition => "redundant-prohibition",
        }
    }

    /// Severity class of this code.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::DeadTurn
            | LintCode::UnreachableChannel
            | LintCode::ExcessStretch
            | LintCode::RedundantProhibition => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

impl Serialize for LintCode {
    fn to_value(&self) -> Value {
        Value::Str(self.code().to_string())
    }
}

impl Serialize for Severity {
    fn to_value(&self) -> Value {
        Value::Str(
            match self {
                Severity::Error => "error",
                Severity::Warning => "warning",
            }
            .to_string(),
        )
    }
}

/// One diagnostic produced by the lint battery.
#[derive(Debug, Clone, Serialize)]
pub struct Finding {
    /// Stable code.
    pub code: LintCode,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Switch the finding anchors to, if it is node-local.
    pub node: Option<NodeId>,
    /// Channels involved: a turn pair, a witness cycle, or an aggregate
    /// list for the warning codes.
    pub channels: Vec<ChannelId>,
}

/// The full result of linting one `(CommGraph, TurnTable)` pair.
#[derive(Debug, Clone, Serialize)]
pub struct LintReport {
    /// The deadlock-freedom certificate (always produced).
    pub certificate: Certificate,
    /// Findings, errors first, then by code.
    pub findings: Vec<Finding>,
}

impl LintReport {
    /// Whether any error-level finding was produced.
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// Number of findings with the given code.
    pub fn count(&self, code: LintCode) -> usize {
        self.findings.iter().filter(|f| f.code == code).count()
    }

    /// Serialize the report (certificate + findings) to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("lint report serialization cannot fail")
    }
}

/// Classify a direction-level turn against the DOWN/UP safety argument.
/// `None` means the turn fits the argument's shape.
pub fn classify_turn(din: Direction, dout: Direction) -> Option<LintCode> {
    if din == dout {
        return None;
    }
    if dout == Direction::LuTree {
        return Some(LintCode::TurnIntoLuTree);
    }
    let up_cross = |d: Direction| matches!(d, Direction::LuCross | Direction::RuCross);
    if up_cross(din) && !up_cross(dout) {
        return Some(LintCode::NonTerminalAscent);
    }
    if !din.goes_up() && dout.goes_up() {
        return Some(LintCode::NonMonotoneDescent);
    }
    None
}

/// Run the full lint battery over a turn table.
pub fn lint(cg: &CommGraph, table: &TurnTable) -> LintReport {
    let dep = ChannelDepGraph::build(cg, table);
    let certificate = certify_dep(&dep);
    let mut findings = Vec::new();
    let ch = cg.channels();

    if let Verdict::Deadlock { witness } = &certificate.verdict {
        let chain: Vec<&str> = witness.iter().map(|&c| cg.direction(c).name()).collect();
        findings.push(Finding {
            code: LintCode::DeadlockCycle,
            severity: Severity::Error,
            message: format!(
                "channel dependency cycle of length {}: {}",
                witness.len(),
                chain.join(" -> ")
            ),
            node: None,
            channels: witness.clone(),
        });
    }

    // Structural codes: every allowed direction-changing turn that violates
    // the safety argument *and* closes a dependency cycle (out_ch can reach
    // in_ch again). Acyclic violations are exactly the turns Phase 3 is
    // allowed to release.
    for v in 0..cg.num_nodes() {
        for (q, &in_ch) in ch.inputs(v).iter().enumerate() {
            let mask = table.mask(v, q as u8);
            for (p, &out_ch) in ch.outputs(v).iter().enumerate() {
                if (mask >> p) & 1 == 0 {
                    continue;
                }
                let din = cg.direction(in_ch);
                let dout = cg.direction(out_ch);
                let Some(code) = classify_turn(din, dout) else {
                    continue;
                };
                if dep.has_path(out_ch, in_ch) {
                    findings.push(Finding {
                        code,
                        severity: code.severity(),
                        message: format!(
                            "cycle-closing turn {} -> {} at switch {v}",
                            din.name(),
                            dout.name()
                        ),
                        node: Some(v),
                        channels: vec![in_ch, out_ch],
                    });
                }
            }
        }
    }

    match RoutingTables::build(cg, table) {
        Err(RoutingError::Disconnected { src, dst }) => {
            findings.push(Finding {
                code: LintCode::Disconnected,
                severity: Severity::Error,
                message: format!("no turn-legal route from switch {src} to switch {dst}"),
                node: Some(src),
                channels: Vec::new(),
            });
        }
        Ok(rt) => {
            let (used_turns, used_channels) = minimal_route_usage(cg, &rt);
            let mut dead_turns: Vec<ChannelId> = Vec::new();
            let mut dead_count = 0usize;
            for v in 0..cg.num_nodes() {
                for (q, &in_ch) in ch.inputs(v).iter().enumerate() {
                    let mask = table.mask(v, q as u8);
                    for (p, &out_ch) in ch.outputs(v).iter().enumerate() {
                        if (mask >> p) & 1 == 1 && !used_turns.contains(&(in_ch, out_ch)) {
                            dead_count += 1;
                            dead_turns.push(in_ch);
                            dead_turns.push(out_ch);
                        }
                    }
                }
            }
            if dead_count > 0 {
                findings.push(Finding {
                    code: LintCode::DeadTurn,
                    severity: Severity::Warning,
                    message: format!(
                        "{dead_count} allowed turn(s) lie on no minimal route \
                         (channels listed as in/out pairs)"
                    ),
                    node: None,
                    channels: dead_turns,
                });
            }
            let unused: Vec<ChannelId> = (0..cg.num_channels())
                .filter(|&c| !used_channels[c as usize])
                .collect();
            if !unused.is_empty() {
                findings.push(Finding {
                    code: LintCode::UnreachableChannel,
                    severity: Severity::Warning,
                    message: format!("{} channel(s) lie on no minimal route", unused.len()),
                    node: None,
                    channels: unused,
                });
            }
        }
    }

    findings.sort_by_key(|f| (f.severity, f.code, f.node));
    LintReport {
        certificate,
        findings,
    }
}

/// Mark every (turn, channel) that lies on at least one minimal route.
///
/// For each destination `t`, minimal routes form a DAG: the injection masks
/// give the first channels, and each continuation mask
/// `candidates(t, sink(c), in_port(c) + 1)` gives exactly the next channels
/// whose remaining cost decreases by one. A forward traversal of that DAG
/// visits exactly the turns and channels realizable on minimal routes.
fn minimal_route_usage(
    cg: &CommGraph,
    rt: &RoutingTables,
) -> (HashSet<(ChannelId, ChannelId)>, Vec<bool>) {
    let ch = cg.channels();
    let n = cg.num_nodes();
    let nch = cg.num_channels() as usize;
    let mut used_turns = HashSet::new();
    let mut used_channels = vec![false; nch];
    let mut visited = vec![false; nch];
    let mut stack: Vec<ChannelId> = Vec::new();
    for t in 0..n {
        visited.fill(false);
        stack.clear();
        for v in 0..n {
            if v == t {
                continue;
            }
            let mask = rt.candidates(t, v, INJECTION_SLOT);
            for (p, &c) in ch.outputs(v).iter().enumerate() {
                if (mask >> p) & 1 == 1 && !visited[c as usize] {
                    visited[c as usize] = true;
                    stack.push(c);
                }
            }
        }
        while let Some(c) = stack.pop() {
            used_channels[c as usize] = true;
            let v = ch.sink(c);
            if v == t {
                continue;
            }
            let slot = ch.in_port(c) as usize + 1;
            let mask = rt.candidates(t, v, slot);
            for (p, &c2) in ch.outputs(v).iter().enumerate() {
                if (mask >> p) & 1 == 1 {
                    used_turns.insert((c, c2));
                    if !visited[c2 as usize] {
                        visited[c2 as usize] = true;
                        stack.push(c2);
                    }
                }
            }
        }
    }
    (used_turns, used_channels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_topology::{gen, CommGraph, CoordinatedTree, PreorderPolicy};

    fn cg_of(topo: &irnet_topology::Topology) -> CommGraph {
        let tree = CoordinatedTree::build(topo, PreorderPolicy::M1, 0).unwrap();
        CommGraph::build(topo, &tree)
    }

    #[test]
    fn unrestricted_ring_fails_with_deadlock_and_structure_errors() {
        let topo = gen::ring(6).unwrap();
        let cg = cg_of(&topo);
        let report = lint(&cg, &TurnTable::all_allowed(&cg));
        assert!(report.has_errors());
        assert_eq!(report.count(LintCode::DeadlockCycle), 1);
        assert!(!report.certificate.is_deadlock_free());
    }

    #[test]
    fn pure_tree_is_clean_of_errors() {
        let topo = gen::kary_tree(15, 2).unwrap();
        let cg = cg_of(&topo);
        let report = lint(&cg, &TurnTable::all_allowed(&cg));
        assert!(!report.has_errors(), "findings: {:?}", report.findings);
        assert!(report.certificate.is_deadlock_free());
    }

    #[test]
    fn fully_blocked_switch_reports_disconnection() {
        let topo = irnet_topology::Topology::new(3, 2, [(0, 1), (1, 2)]).unwrap();
        let cg = cg_of(&topo);
        let ch = cg.channels();
        let mut table = TurnTable::all_allowed(&cg);
        for &in_ch in ch.inputs(1) {
            for &out_ch in ch.outputs(1) {
                if out_ch != ch.reverse(in_ch) {
                    table.prohibit(&cg, in_ch, out_ch);
                }
            }
        }
        let report = lint(&cg, &table);
        assert_eq!(report.count(LintCode::Disconnected), 1);
        assert!(report.has_errors());
    }

    #[test]
    fn classification_covers_the_safety_argument() {
        use Direction::*;
        // Turning into LU_TREE is always E003.
        assert_eq!(
            classify_turn(RdTree, LuTree),
            Some(LintCode::TurnIntoLuTree)
        );
        assert_eq!(
            classify_turn(RuCross, LuTree),
            Some(LintCode::TurnIntoLuTree)
        );
        // Leaving an up-cross for anything not up-cross is E004.
        assert_eq!(
            classify_turn(LuCross, RdTree),
            Some(LintCode::NonTerminalAscent)
        );
        assert_eq!(
            classify_turn(RuCross, LCross),
            Some(LintCode::NonTerminalAscent)
        );
        assert_eq!(classify_turn(LuCross, RuCross), None);
        // Going back up after down/flat is E005.
        assert_eq!(
            classify_turn(RdTree, RuCross),
            Some(LintCode::NonMonotoneDescent)
        );
        assert_eq!(
            classify_turn(LCross, LuCross),
            Some(LintCode::NonMonotoneDescent)
        );
        // Monotone continuations are clean.
        assert_eq!(classify_turn(LuTree, RdTree), None);
        assert_eq!(classify_turn(RdTree, LCross), None);
        assert_eq!(classify_turn(LCross, RdCross), None);
    }

    #[test]
    fn report_serializes_to_json() {
        let topo = gen::ring(4).unwrap();
        let cg = cg_of(&topo);
        let report = lint(&cg, &TurnTable::all_allowed(&cg));
        let json = report.to_json();
        assert!(json.contains("IRNET-E001"));
        assert!(json.contains("\"status\": \"deadlock\""));
    }
}
