//! # irnet-verify — static deadlock-freedom certification and linting
//!
//! Analyzes any `(CommGraph, TurnTable)` pair **without running the
//! simulator** and produces two artifacts:
//!
//! * a [`Certificate`] — for an acyclic channel dependency graph, a total
//!   channel numbering every allowed turn strictly increases (Dally–Seitz
//!   in checkable form); for a cyclic one, a *minimized* witness cycle.
//!   Certificates serialize to JSON and are validated by [`recheck`], which
//!   shares no code with the certifier.
//! * a [`LintReport`] — a battery of structural lints with stable codes
//!   (`IRNET-E001` … `IRNET-E005`, `IRNET-W001`/`W002`) machine-checking
//!   the DOWN/UP safety argument; see [`lints`] for the code table.
//!
//! ```
//! use irnet_topology::{gen, CommGraph, CoordinatedTree, PreorderPolicy};
//! use irnet_turns::TurnTable;
//! use irnet_verify::{certify, lint, recheck};
//!
//! let topo = gen::kary_tree(15, 2).unwrap();
//! let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
//! let cg = CommGraph::build(&topo, &tree);
//! let table = TurnTable::all_allowed(&cg);
//!
//! let cert = certify(&cg, &table);
//! assert!(cert.is_deadlock_free());
//! let dep = irnet_turns::ChannelDepGraph::build(&cg, &table);
//! recheck(&cert, &dep).unwrap();
//! assert!(!lint(&cg, &table).has_errors());
//! ```

pub mod certificate;
pub mod lints;
pub mod reconfig;

pub use certificate::{certify, certify_dep, recheck, Certificate, RecheckError, Verdict};
pub use lints::{classify_turn, lint, Finding, LintCode, LintReport, Severity};
pub use reconfig::{certify_transition, union_acyclic_delta, EpochCertificates};
