//! The feasibility oracle: does *any* deadlock-free connected routing
//! exist on this (possibly degraded) network?
//!
//! Mendlovic & Matias (arXiv:2503.04583) characterize the digraphs that
//! admit deadlock-free connected routing at all — a pure existence
//! question, independent of any concrete routing algorithm. This module
//! implements that condition in two tiers:
//!
//! * **Topology tier** ([`analyze_faulted`] / [`analyze_topology`]): the
//!   channel digraph of a [`Topology`] is *symmetric* (every link
//!   contributes both directed channels), and for symmetric channel sets
//!   the condition collapses to connectivity of the surviving graph. The
//!   sufficient half is constructive: a BFS-levelled up\*/down\* channel
//!   numbering — every up\*/down\*-legal turn strictly climbs it, and the
//!   tree path through the lowest common ancestor is legal for every pair
//!   — is returned as the [`Witness`]. The necessary half is immediate:
//!   a disconnected survivor set leaves some pair unroutable by *any*
//!   routing, and the [`Obstruction`] is the minimized partition evidence
//!   (the smallest component; no link crosses its cut).
//! * **Digraph tier** ([`analyze_digraph`]): for arbitrary channel
//!   digraphs (asymmetric, hand-built) the oracle decides the common
//!   cases: strong connectivity is necessary; a symmetric connected
//!   digraph or one whose turn-dependency graph is already acyclic is
//!   feasible; and a directed cycle of *forced* dependencies — turns that
//!   every route between some pair must take, so they appear in the
//!   dependency graph of every connected routing — is a sound
//!   infeasibility certificate (this is exactly what kills the
//!   unidirectional ring, the classic infeasible family). Digraphs the
//!   three rules cannot decide return [`DigraphFeasibility::Open`] rather
//!   than guess.
//!
//! All results carry stable JSON forms via the vendored serde; obstruction
//! witnesses are minimized (smallest partition component, shortest forced
//! cycle) before they are reported.

use irnet_topology::{ChannelId, DegradedTopology, FaultError, FaultPlan, NodeId, Topology};
use irnet_turns::ChannelDepGraph;
use serde::{Serialize, Value};
use std::fmt;

/// Sentinel rank/level for dead nodes and channels inside a [`Witness`].
pub const DEAD: u32 = u32::MAX;

/// The oracle's verdict for a (possibly degraded) topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Feasibility {
    /// A deadlock-free connected routing exists; `Witness` is constructive.
    Feasible(Witness),
    /// No deadlock-free connected routing exists; the obstruction proves it.
    Infeasible(Obstruction),
}

impl Feasibility {
    /// Whether the verdict is [`Feasibility::Feasible`].
    pub fn is_feasible(&self) -> bool {
        matches!(self, Feasibility::Feasible(_))
    }

    /// The obstruction, if infeasible.
    pub fn obstruction(&self) -> Option<&Obstruction> {
        match self {
            Feasibility::Feasible(_) => None,
            Feasibility::Infeasible(o) => Some(o),
        }
    }

    /// Pretty JSON form (stable schema, witness as a sketch).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }
}

/// Constructive evidence of feasibility: a BFS-levelled up\*/down\*
/// channel numbering over the surviving graph. Every up\*/down\*-legal
/// turn strictly increases `numbering`, and the spanning-tree path through
/// the lowest common ancestor is legal for every surviving pair — the
/// Dally–Seitz argument in checkable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// BFS root (lowest-numbered surviving switch, original id).
    pub root: NodeId,
    /// Surviving switches.
    pub alive_nodes: u32,
    /// Surviving directed channels.
    pub alive_channels: u32,
    /// BFS level per original node ([`DEAD`] for dead switches).
    pub levels: Vec<u32>,
    /// Escape rank per original channel `2l + d` ([`DEAD`] for dead ones).
    pub numbering: Vec<u32>,
}

impl Witness {
    /// Independently re-checks the witness against `topo`: every
    /// up\*/down\*-legal turn between surviving channels must strictly
    /// climb the numbering, and ranks must be distinct.
    pub fn check(&self, topo: &Topology) -> Result<(), String> {
        let key = |v: NodeId| (self.levels[v as usize], v);
        let endpoints = |c: ChannelId| {
            let (a, b) = topo.link(c / 2);
            if c & 1 == 0 {
                (a, b)
            } else {
                (b, a)
            }
        };
        let alive = |c: ChannelId| self.numbering[c as usize] != DEAD;
        let goes_up = |c: ChannelId| {
            let (s, t) = endpoints(c);
            key(t) < key(s)
        };
        let mut seen = vec![false; self.numbering.len()];
        for c in 0..self.numbering.len() as u32 {
            if !alive(c) {
                continue;
            }
            let r = self.numbering[c as usize] as usize;
            if r >= seen.len() || seen[r] {
                return Err(format!(
                    "rank {r} of channel {c} is out of range or repeated"
                ));
            }
            seen[r] = true;
            let (_, mid) = endpoints(c);
            if self.levels[mid as usize] == DEAD {
                return Err(format!("alive channel {c} ends at dead switch {mid}"));
            }
            // Every legal continuation c -> c2 (no u-turn, and not a
            // down-then-up turn) must climb.
            for &(_, l) in topo.neighbors(mid) {
                for d in 0..2u32 {
                    let c2 = 2 * l + d;
                    if !alive(c2) || endpoints(c2).0 != mid || c2 == (c ^ 1) {
                        continue;
                    }
                    // Only down-then-up is illegal under up*/down*.
                    let legal = goes_up(c) || !goes_up(c2);
                    if legal && self.numbering[c as usize] >= self.numbering[c2 as usize] {
                        return Err(format!("legal turn {c} -> {c2} does not climb"));
                    }
                }
            }
        }
        Ok(())
    }
}

impl Serialize for Witness {
    fn to_value(&self) -> Value {
        // A sketch, not the full arrays: the JSON schema stays small and
        // stable while the in-memory witness keeps full detail for checks.
        Value::Map(vec![
            (
                "kind".to_string(),
                Value::Str("updown_numbering".to_string()),
            ),
            ("root".to_string(), Value::U64(u64::from(self.root))),
            (
                "alive_switches".to_string(),
                Value::U64(u64::from(self.alive_nodes)),
            ),
            (
                "alive_channels".to_string(),
                Value::U64(u64::from(self.alive_channels)),
            ),
        ])
    }
}

/// A minimized proof that no deadlock-free connected routing exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Obstruction {
    /// Every switch failed.
    NoSurvivors,
    /// The surviving graph is split; `component` is the smallest connected
    /// component (no surviving link crosses its boundary), and
    /// `witness_pair` is an unroutable (inside, outside) switch pair.
    Partitioned {
        /// Surviving switches overall.
        alive: u32,
        /// Number of connected components.
        components: u32,
        /// The smallest component, original switch ids in increasing order.
        component: Vec<NodeId>,
        /// Lowest-id switch inside the component and outside it.
        witness_pair: (NodeId, NodeId),
    },
    /// Digraph tier: `dst` is unreachable from `src` along directed arcs,
    /// so no routing — deadlock-free or not — can connect the pair.
    Unreachable {
        /// The source node.
        src: NodeId,
        /// The unreachable destination.
        dst: NodeId,
        /// Nodes reachable from `src`.
        reached: u32,
    },
    /// Digraph tier: a shortest directed cycle of *forced* dependencies —
    /// every connected routing's dependency graph contains each listed
    /// consecutive arc pair, so every connected routing deadlocks.
    ForcedCycle {
        /// The arc ids of the cycle, rotated to start at the lowest id.
        arcs: Vec<u32>,
    },
}

impl fmt::Display for Obstruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Obstruction::NoSurvivors => write!(f, "every switch failed; nothing survives"),
            Obstruction::Partitioned {
                alive,
                components,
                component,
                witness_pair,
            } => write!(
                f,
                "survivors split into {components} components ({alive} alive); \
                 smallest component has {} switch(es), e.g. {} cannot reach {}",
                component.len(),
                witness_pair.0,
                witness_pair.1
            ),
            Obstruction::Unreachable { src, dst, reached } => write!(
                f,
                "node {dst} is unreachable from node {src} \
                 (only {reached} node(s) reachable)"
            ),
            Obstruction::ForcedCycle { arcs } => write!(
                f,
                "forced-dependency cycle through {} arc(s): every connected \
                 routing must take each of these consecutive turns",
                arcs.len()
            ),
        }
    }
}

impl Serialize for Obstruction {
    fn to_value(&self) -> Value {
        match self {
            Obstruction::NoSurvivors => Value::Map(vec![(
                "kind".to_string(),
                Value::Str("no_survivors".to_string()),
            )]),
            Obstruction::Partitioned {
                alive,
                components,
                component,
                witness_pair,
            } => Value::Map(vec![
                ("kind".to_string(), Value::Str("partitioned".to_string())),
                ("alive".to_string(), Value::U64(u64::from(*alive))),
                ("components".to_string(), Value::U64(u64::from(*components))),
                (
                    "component".to_string(),
                    Value::Seq(
                        component
                            .iter()
                            .map(|&v| Value::U64(u64::from(v)))
                            .collect(),
                    ),
                ),
                (
                    "witness_pair".to_string(),
                    Value::Seq(vec![
                        Value::U64(u64::from(witness_pair.0)),
                        Value::U64(u64::from(witness_pair.1)),
                    ]),
                ),
            ]),
            Obstruction::Unreachable { src, dst, reached } => Value::Map(vec![
                ("kind".to_string(), Value::Str("unreachable".to_string())),
                ("src".to_string(), Value::U64(u64::from(*src))),
                ("dst".to_string(), Value::U64(u64::from(*dst))),
                ("reached".to_string(), Value::U64(u64::from(*reached))),
            ]),
            Obstruction::ForcedCycle { arcs } => Value::Map(vec![
                ("kind".to_string(), Value::Str("forced_cycle".to_string())),
                (
                    "arcs".to_string(),
                    Value::Seq(arcs.iter().map(|&a| Value::U64(u64::from(a))).collect()),
                ),
            ]),
        }
    }
}

impl Serialize for Feasibility {
    fn to_value(&self) -> Value {
        match self {
            Feasibility::Feasible(w) => Value::Map(vec![
                ("status".to_string(), Value::Str("feasible".to_string())),
                ("witness".to_string(), w.to_value()),
            ]),
            Feasibility::Infeasible(o) => Value::Map(vec![
                ("status".to_string(), Value::Str("infeasible".to_string())),
                ("obstruction".to_string(), o.to_value()),
            ]),
        }
    }
}

/// Runs the oracle on an intact topology. [`Topology`] construction
/// enforces connectivity, so this is always feasible — the value of the
/// call is the constructive witness (and uniformity with the faulted
/// path for callers like `irnet analyze`).
pub fn analyze_topology(topo: &Topology) -> Feasibility {
    analyze_faulted(topo, &FaultPlan::scripted([])).expect("an empty plan names no unknown element")
}

/// Runs the oracle on `topo` degraded by every event of `plan`.
///
/// Unlike [`Topology::degrade`], a partitioned or empty survivor set is a
/// *verdict* here, not an error: only plans naming unknown links or
/// switches fail. The answer costs one BFS plus a channel sort —
/// milliseconds even at thousands of switches — which is what lets the
/// repair path reject hopeless degradations before rebuilding anything.
pub fn analyze_faulted(topo: &Topology, plan: &FaultPlan) -> Result<Feasibility, FaultError> {
    let (node_dead, link_dead) = topo.fault_masks(plan)?;
    Ok(analyze_survivors(topo, &node_dead, &link_dead))
}

/// The oracle verdict together with the degradation it was computed from.
///
/// Historically `repair_epoch` ran [`analyze_faulted`]'s BFS as a gate and
/// then [`Topology::degrade_detailed`] re-resolved the same plan into the
/// same survivor masks a second time. This entry point resolves the plan
/// once: a feasible verdict hands back both the constructive witness and
/// the compact [`DegradedTopology`] the rebuild needs.
#[derive(Debug, Clone)]
pub enum AnalyzedDegrade {
    /// The survivors admit a deadlock-free connected routing; carries the
    /// oracle's witness and the compacted surviving graph with its id maps.
    Feasible {
        /// The constructive up\*/down\* numbering certifying feasibility.
        witness: Witness,
        /// The compact surviving topology plus original↔compact id maps
        /// (boxed: it dwarfs the [`Obstruction`] variant).
        degraded: Box<DegradedTopology>,
    },
    /// Provably unroutable, with the minimized obstruction.
    Infeasible(Obstruction),
}

/// Runs the oracle on `topo` degraded by `plan` and, when feasible, also
/// compacts the survivors — resolving the fault plan exactly once for both
/// answers (see [`AnalyzedDegrade`]).
///
/// # Errors
///
/// Only plans naming unknown links or switches fail; partitioned or empty
/// survivor sets are an [`AnalyzedDegrade::Infeasible`] verdict.
pub fn analyze_and_degrade(
    topo: &Topology,
    plan: &FaultPlan,
) -> Result<AnalyzedDegrade, FaultError> {
    let (node_dead, link_dead) = topo.fault_masks(plan)?;
    match analyze_survivors(topo, &node_dead, &link_dead) {
        Feasibility::Infeasible(o) => Ok(AnalyzedDegrade::Infeasible(o)),
        Feasibility::Feasible(witness) => {
            // The oracle just proved the survivors connected and non-empty,
            // so compaction cannot fail; propagate rather than panic to
            // keep the contract honest.
            let degraded = Box::new(topo.degrade_from_masks(&node_dead, &link_dead)?);
            Ok(AnalyzedDegrade::Feasible { witness, degraded })
        }
    }
}

/// Runs the oracle on explicit survivor masks (as carried by a
/// `TimelineStep` of a recovery-aware plan). This is the entry point for
/// bidirectional reconfiguration, where the live set at an epoch is *not*
/// the cumulative result of a plan prefix: the caller owns the masks and
/// the oracle only judges them.
///
/// # Panics
///
/// Panics if the mask lengths disagree with `topo`.
pub fn analyze_masks(topo: &Topology, node_dead: &[bool], link_dead: &[bool]) -> Feasibility {
    assert_eq!(node_dead.len(), topo.num_nodes() as usize);
    assert_eq!(link_dead.len(), topo.num_links() as usize);
    analyze_survivors(topo, node_dead, link_dead)
}

/// Mask-based twin of [`analyze_and_degrade`]: judges explicit survivor
/// masks and, when feasible, compacts the survivors in the same pass.
///
/// # Errors
///
/// Infeasible masks are a verdict, not an error; the only error path is
/// the (unreachable-by-construction) compaction failure, propagated to
/// keep the contract honest.
///
/// # Panics
///
/// Panics if the mask lengths disagree with `topo`.
pub fn analyze_and_degrade_masks(
    topo: &Topology,
    node_dead: &[bool],
    link_dead: &[bool],
) -> Result<AnalyzedDegrade, FaultError> {
    match analyze_masks(topo, node_dead, link_dead) {
        Feasibility::Infeasible(o) => Ok(AnalyzedDegrade::Infeasible(o)),
        Feasibility::Feasible(witness) => {
            let degraded = Box::new(topo.degrade_from_masks(node_dead, link_dead)?);
            Ok(AnalyzedDegrade::Feasible { witness, degraded })
        }
    }
}

/// The oracle core over explicit survivor masks.
fn analyze_survivors(topo: &Topology, node_dead: &[bool], link_dead: &[bool]) -> Feasibility {
    let n = topo.num_nodes() as usize;
    let alive: u32 = node_dead.iter().filter(|&&d| !d).count() as u32;
    if alive == 0 {
        return Feasibility::Infeasible(Obstruction::NoSurvivors);
    }

    // Component labelling by repeated BFS over surviving links.
    let mut comp = vec![u32::MAX; n];
    let mut levels = vec![DEAD; n];
    let mut queue = std::collections::VecDeque::new();
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    for start in 0..n {
        if node_dead[start] || comp[start] != u32::MAX {
            continue;
        }
        let id = components.len() as u32;
        let mut members = vec![start as NodeId];
        comp[start] = id;
        levels[start] = 0;
        queue.clear();
        queue.push_back(start as NodeId);
        while let Some(v) = queue.pop_front() {
            for &(w, l) in topo.neighbors(v) {
                if link_dead[l as usize] || node_dead[w as usize] || comp[w as usize] != u32::MAX {
                    continue;
                }
                comp[w as usize] = id;
                levels[w as usize] = levels[v as usize] + 1;
                members.push(w);
                queue.push_back(w);
            }
        }
        members.sort_unstable();
        components.push(members);
    }

    if components.len() > 1 {
        // Minimized obstruction: the smallest component (ties to the one
        // containing the lowest switch id). No surviving link crosses its
        // boundary, so its lowest member cannot reach the lowest outsider.
        let smallest = components
            .iter()
            .min_by_key(|c| (c.len(), c[0]))
            .expect("at least two components")
            .clone();
        let inside = smallest[0];
        let outside = (0..n as u32)
            .find(|&v| !node_dead[v as usize] && comp[v as usize] != comp[inside as usize])
            .expect("a second component exists");
        return Feasibility::Infeasible(Obstruction::Partitioned {
            alive,
            components: components.len() as u32,
            component: smallest,
            witness_pair: (inside, outside),
        });
    }

    // Connected: build the constructive up*/down* numbering. A channel is
    // "up" when its sink has the smaller (level, id) key; in any
    // up*/down*-legal path the keys first strictly fall, then strictly
    // rise, so ranking up channels by descending sink key and down
    // channels (all ranked above every up channel) by ascending sink key
    // makes every legal turn climb.
    let root = components[0][0];
    let key = |v: NodeId| (levels[v as usize], v);
    let mut numbering = vec![DEAD; 2 * topo.num_links() as usize];
    let mut up: Vec<ChannelId> = Vec::new();
    let mut down: Vec<ChannelId> = Vec::new();
    for (l, &(a, b)) in topo.links().iter().enumerate() {
        if link_dead[l] {
            continue;
        }
        for (c, s, t) in [(2 * l as u32, a, b), (2 * l as u32 + 1, b, a)] {
            if key(t) < key(s) {
                up.push(c);
            } else {
                down.push(c);
            }
        }
    }
    let endpoints = |c: ChannelId| {
        let (a, b) = topo.link(c / 2);
        if c & 1 == 0 {
            (a, b)
        } else {
            (b, a)
        }
    };
    up.sort_by_key(|&c| std::cmp::Reverse(key(endpoints(c).1)));
    down.sort_by_key(|&c| key(endpoints(c).1));
    let alive_channels = (up.len() + down.len()) as u32;
    for (rank, &c) in up.iter().chain(down.iter()).enumerate() {
        numbering[c as usize] = rank as u32;
    }
    Feasibility::Feasible(Witness {
        root,
        alive_nodes: alive,
        alive_channels,
        levels,
        numbering,
    })
}

// ---------------------------------------------------------------------------
// Digraph tier
// ---------------------------------------------------------------------------

/// A directed channel graph: nodes are switches, arcs are unidirectional
/// channels. This is the general object the Mendlovic–Matias condition is
/// stated over; hand-built instances feed the infeasible-family tests.
#[derive(Debug, Clone)]
pub struct Digraph {
    num_nodes: u32,
    arcs: Vec<(NodeId, NodeId)>,
}

impl Digraph {
    /// Builds a digraph over `num_nodes` nodes from directed arcs.
    /// Duplicate arcs are merged; self-loops are rejected.
    ///
    /// # Panics
    ///
    /// Panics if an arc references a node `>= num_nodes` or is a self-loop.
    pub fn new(num_nodes: u32, arcs: impl IntoIterator<Item = (NodeId, NodeId)>) -> Digraph {
        let mut arcs: Vec<(NodeId, NodeId)> = arcs.into_iter().collect();
        for &(u, v) in &arcs {
            assert!(
                u < num_nodes && v < num_nodes,
                "arc ({u}, {v}) out of range"
            );
            assert_ne!(u, v, "self-loop arc ({u}, {v})");
        }
        arcs.sort_unstable();
        arcs.dedup();
        Digraph { num_nodes, arcs }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// The arcs, sorted and deduplicated; the index is the arc id.
    pub fn arcs(&self) -> &[(NodeId, NodeId)] {
        &self.arcs
    }
}

/// The oracle's verdict for an arbitrary channel digraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DigraphFeasibility {
    /// A deadlock-free connected routing exists; `rule` names the
    /// sufficient condition that fired.
    Feasible {
        /// `"trivial"`, `"symmetric-updown"`, or `"dependency-acyclic"`.
        rule: &'static str,
    },
    /// No deadlock-free connected routing exists.
    Infeasible(Obstruction),
    /// Neither the sufficient rules nor the obstruction search decided the
    /// instance; the oracle stays honest instead of guessing.
    Open,
}

/// Decides feasibility for an arbitrary channel digraph (consecutive-arc
/// turns, immediate reversal disallowed as in the wormhole model).
///
/// Decision ladder, each step sound:
/// 1. strong connectivity is necessary (an unreachable pair defeats every
///    routing);
/// 2. symmetric connected digraphs are feasible (up\*/down\* numbering);
/// 3. digraphs whose full turn-dependency graph is acyclic are feasible
///    (any connected routing works — shortest paths exist by step 1);
/// 4. a directed cycle of *forced* dependencies is a proof of
///    infeasibility: a dependency `a → b` is forced when every walk from
///    `tail(a)` to `head(b)` takes `a` then `b` consecutively, so it
///    appears in the dependency graph of **every** connected routing, and
///    a cycle of such edges deadlocks them all. The reported cycle is the
///    shortest one, rotated to start at the lowest arc id.
///
/// Anything the ladder cannot decide returns [`DigraphFeasibility::Open`].
pub fn analyze_digraph(g: &Digraph) -> DigraphFeasibility {
    let n = g.num_nodes;
    if n == 0 {
        return DigraphFeasibility::Infeasible(Obstruction::NoSurvivors);
    }
    if n == 1 {
        return DigraphFeasibility::Feasible { rule: "trivial" };
    }

    // 1. Strong connectivity.
    if let Some(obs) = connectivity_obstruction(g) {
        return DigraphFeasibility::Infeasible(obs);
    }

    // 2. Symmetric and connected: up*/down* always works.
    let symmetric = g
        .arcs
        .iter()
        .all(|&(u, v)| g.arcs.binary_search(&(v, u)).is_ok());
    if symmetric {
        return DigraphFeasibility::Feasible {
            rule: "symmetric-updown",
        };
    }

    // 3. The full dependency graph (every consecutive-arc turn, u-turns
    // excluded). Acyclic means even the all-allowed routing is safe.
    let na = g.arcs.len() as u32;
    let mut deps: Vec<(u32, u32)> = Vec::new();
    for (i, &(_, vi)) in g.arcs.iter().enumerate() {
        for (j, &(uj, vj)) in g.arcs.iter().enumerate() {
            if uj == vi && (vj, uj) != g.arcs[i] {
                deps.push((i as u32, j as u32));
            }
        }
    }
    let dep_graph = ChannelDepGraph::from_edges(na, &deps);
    if dep_graph.is_acyclic() {
        return DigraphFeasibility::Feasible {
            rule: "dependency-acyclic",
        };
    }

    // 4. Forced-dependency cycle.
    let forced: Vec<(u32, u32)> = deps
        .iter()
        .copied()
        .filter(|&d| dependency_is_forced(g, &deps, d))
        .collect();
    if let Some(cycle) = shortest_cycle(na, &forced) {
        return DigraphFeasibility::Infeasible(Obstruction::ForcedCycle { arcs: cycle });
    }
    DigraphFeasibility::Open
}

/// Returns a minimized unreachable-pair obstruction, or `None` when `g` is
/// strongly connected.
fn connectivity_obstruction(g: &Digraph) -> Option<Obstruction> {
    let n = g.num_nodes as usize;
    let reach_from = |src: NodeId, reverse: bool| -> Vec<bool> {
        let mut seen = vec![false; n];
        seen[src as usize] = true;
        let mut stack = vec![src];
        while let Some(v) = stack.pop() {
            for &(a, b) in &g.arcs {
                let (from, to) = if reverse { (b, a) } else { (a, b) };
                if from == v && !seen[to as usize] {
                    seen[to as usize] = true;
                    stack.push(to);
                }
            }
        }
        seen
    };
    let fwd = reach_from(0, false);
    if let Some(dst) = fwd.iter().position(|&r| !r) {
        return Some(Obstruction::Unreachable {
            src: 0,
            dst: dst as NodeId,
            reached: fwd.iter().filter(|&&r| r).count() as u32,
        });
    }
    let bwd = reach_from(0, true);
    if let Some(src) = bwd.iter().position(|&r| !r) {
        let from_src = reach_from(src as NodeId, false);
        let dst = from_src
            .iter()
            .position(|&r| !r)
            .expect("src cannot reach 0");
        return Some(Obstruction::Unreachable {
            src: src as NodeId,
            dst: dst as NodeId,
            reached: from_src.iter().filter(|&&r| r).count() as u32,
        });
    }
    None
}

/// Whether dependency `d = (a, b)` is forced: no walk from `tail(a)` to
/// `head(b)` avoids taking arc `a` immediately followed by arc `b`.
/// Checked by BFS over arc states with the single transition `d` removed.
fn dependency_is_forced(g: &Digraph, deps: &[(u32, u32)], d: (u32, u32)) -> bool {
    let s = g.arcs[d.0 as usize].0;
    let t = g.arcs[d.1 as usize].1;
    let mut seen = vec![false; g.arcs.len()];
    let mut stack: Vec<u32> = Vec::new();
    for (i, &(u, _)) in g.arcs.iter().enumerate() {
        if u == s {
            seen[i] = true;
            stack.push(i as u32);
        }
    }
    while let Some(a) = stack.pop() {
        if g.arcs[a as usize].1 == t {
            return false; // a walk reaches t without the removed transition
        }
        for &(x, y) in deps {
            if x == a && (x, y) != d && !seen[y as usize] {
                seen[y as usize] = true;
                stack.push(y);
            }
        }
    }
    true
}

/// Shortest directed cycle in the graph over `n` arc-nodes with `edges`,
/// rotated to start at its lowest node id; `None` when acyclic.
fn shortest_cycle(n: u32, edges: &[(u32, u32)]) -> Option<Vec<u32>> {
    let mut best: Option<Vec<u32>> = None;
    for start in 0..n {
        // BFS from `start` back to `start`.
        let mut parent = vec![u32::MAX; n as usize];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        let mut found = false;
        'bfs: while let Some(v) = queue.pop_front() {
            for &(x, y) in edges {
                if x != v {
                    continue;
                }
                if y == start {
                    parent[start as usize] = v;
                    found = true;
                    break 'bfs;
                }
                if parent[y as usize] == u32::MAX && y != start {
                    parent[y as usize] = v;
                    queue.push_back(y);
                }
            }
        }
        if !found {
            continue;
        }
        let mut cycle = vec![start];
        let mut v = parent[start as usize];
        while v != start {
            cycle.push(v);
            v = parent[v as usize];
        }
        cycle.reverse();
        if best.as_ref().is_none_or(|b| cycle.len() < b.len()) {
            best = Some(cycle);
        }
    }
    best.map(|mut cycle| {
        // Rotate to the lowest arc id for a deterministic report.
        let pivot = cycle
            .iter()
            .enumerate()
            .min_by_key(|&(_, &a)| a)
            .map_or(0, |(i, _)| i);
        cycle.rotate_left(pivot);
        cycle
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_topology::{gen, FaultEvent, FaultKind};

    fn link(cycle: u32, a: NodeId, b: NodeId) -> FaultEvent {
        FaultEvent::down(cycle, FaultKind::Link { a, b })
    }

    fn switch(cycle: u32, node: NodeId) -> FaultEvent {
        FaultEvent::down(cycle, FaultKind::Switch { node })
    }

    #[test]
    fn mask_entry_agrees_with_the_plan_entry() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), 3).unwrap();
        let (a, b) = topo.link(0);
        let plan = irnet_topology::FaultPlan::scripted([link(5, a, b)]);
        let (nd, ld) = topo.fault_masks(&plan).unwrap();
        match (
            analyze_faulted(&topo, &plan).unwrap(),
            analyze_masks(&topo, &nd, &ld),
        ) {
            (Feasibility::Feasible(x), Feasibility::Feasible(y)) => {
                assert_eq!(x.alive_nodes, y.alive_nodes);
                assert_eq!(x.alive_channels, y.alive_channels);
            }
            (Feasibility::Infeasible(x), Feasibility::Infeasible(y)) => {
                assert_eq!(format!("{x}"), format!("{y}"));
            }
            _ => panic!("plan and mask entries disagree"),
        }
        match analyze_and_degrade_masks(&topo, &nd, &ld).unwrap() {
            AnalyzedDegrade::Feasible { degraded, .. } => {
                assert_eq!(degraded.topology.num_links(), topo.num_links() - 1);
            }
            AnalyzedDegrade::Infeasible(o) => panic!("unexpected obstruction: {o}"),
        }
    }

    #[test]
    fn intact_topologies_are_feasible_with_checkable_witness() {
        for seed in 0..6 {
            let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), seed).unwrap();
            match analyze_topology(&topo) {
                Feasibility::Feasible(w) => {
                    assert_eq!(w.alive_nodes, topo.num_nodes());
                    assert_eq!(w.alive_channels, 2 * topo.num_links());
                    w.check(&topo).unwrap();
                }
                Feasibility::Infeasible(o) => panic!("intact topology infeasible: {o}"),
            }
        }
    }

    #[test]
    fn partition_yields_minimized_component() {
        // Path 0-1-2-3: cutting (1,2) splits 2/2; the smallest component
        // is {0, 1} (ties resolved toward the lowest id).
        let topo = Topology::new(4, 4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let plan = FaultPlan::scripted([link(0, 1, 2)]);
        let verdict = analyze_faulted(&topo, &plan).unwrap();
        assert_eq!(
            verdict.obstruction(),
            Some(&Obstruction::Partitioned {
                alive: 4,
                components: 2,
                component: vec![0, 1],
                witness_pair: (0, 2),
            })
        );
    }

    #[test]
    fn all_switches_dead_is_no_survivors() {
        let topo = Topology::new(2, 4, [(0, 1)]).unwrap();
        let plan = FaultPlan::scripted([switch(0, 0), switch(0, 1)]);
        let verdict = analyze_faulted(&topo, &plan).unwrap();
        assert_eq!(verdict.obstruction(), Some(&Obstruction::NoSurvivors));
    }

    #[test]
    fn oracle_matches_degrade_on_random_plans() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(32, 4), 3).unwrap();
        for seed in 0..32 {
            let plan = FaultPlan::random(&topo, 4, 1, (0, 100), seed).unwrap();
            let verdict = analyze_faulted(&topo, &plan).unwrap();
            match topo.degrade(&plan) {
                Ok(_) => assert!(verdict.is_feasible(), "degrade ok but oracle said no"),
                Err(FaultError::Partitioned { .. } | FaultError::NoSurvivors) => {
                    assert!(!verdict.is_feasible(), "degrade failed but oracle said yes");
                }
                Err(e) => panic!("unexpected degrade error: {e}"),
            }
        }
    }

    #[test]
    fn unknown_faults_error_out() {
        let topo = Topology::new(3, 4, [(0, 1), (1, 2)]).unwrap();
        assert_eq!(
            analyze_faulted(&topo, &FaultPlan::scripted([link(0, 0, 2)])).unwrap_err(),
            FaultError::UnknownLink { a: 0, b: 2 }
        );
        assert_eq!(
            analyze_faulted(&topo, &FaultPlan::scripted([switch(0, 7)])).unwrap_err(),
            FaultError::UnknownSwitch {
                node: 7,
                num_nodes: 3
            }
        );
    }

    #[test]
    fn unidirectional_ring_is_infeasible_with_forced_cycle() {
        // The classic Mendlovic–Matias infeasible family: a directed ring
        // is strongly connected, yet every routing must use every
        // consecutive arc pair, closing the dependency cycle.
        let g = Digraph::new(3, [(0, 1), (1, 2), (2, 0)]);
        match analyze_digraph(&g) {
            DigraphFeasibility::Infeasible(Obstruction::ForcedCycle { arcs }) => {
                assert_eq!(arcs, vec![0, 1, 2]);
            }
            other => panic!("expected forced cycle, got {other:?}"),
        }
    }

    #[test]
    fn ring_with_chord_escapes_the_forced_cycle() {
        // Adding one reverse chord breaks the forcing: 0 -> 2 can go
        // directly, so the dependency (0->1, 1->2) is no longer forced.
        let g = Digraph::new(3, [(0, 1), (1, 2), (2, 0), (0, 2)]);
        assert!(!matches!(
            analyze_digraph(&g),
            DigraphFeasibility::Infeasible(_)
        ));
    }

    #[test]
    fn digraph_tier_decides_the_simple_shapes() {
        // Empty and single-node.
        assert_eq!(
            analyze_digraph(&Digraph::new(0, [])),
            DigraphFeasibility::Infeasible(Obstruction::NoSurvivors)
        );
        assert_eq!(
            analyze_digraph(&Digraph::new(1, [])),
            DigraphFeasibility::Feasible { rule: "trivial" }
        );
        // Not strongly connected: one-way pair.
        match analyze_digraph(&Digraph::new(2, [(0, 1)])) {
            DigraphFeasibility::Infeasible(Obstruction::Unreachable { src, dst, .. }) => {
                assert_eq!((src, dst), (1, 0));
            }
            other => panic!("expected unreachable, got {other:?}"),
        }
        // Symmetric square.
        let square = Digraph::new(
            4,
            [
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (2, 3),
                (3, 2),
                (3, 0),
                (0, 3),
            ],
        );
        assert_eq!(
            analyze_digraph(&square),
            DigraphFeasibility::Feasible {
                rule: "symmetric-updown"
            }
        );
    }

    #[test]
    fn feasibility_json_is_stable() {
        let g = Digraph::new(3, [(0, 1), (1, 2), (2, 0)]);
        let DigraphFeasibility::Infeasible(obs) = analyze_digraph(&g) else {
            panic!("ring must be infeasible");
        };
        let verdict = Feasibility::Infeasible(obs);
        assert_eq!(
            verdict.to_json(),
            "{\n  \"status\": \"infeasible\",\n  \"obstruction\": {\n    \
             \"kind\": \"forced_cycle\",\n    \"arcs\": [\n      0,\n      1,\n      2\n    ]\n  }\n}"
        );
    }
}
