//! The combined analysis report: one feasibility verdict plus (when the
//! target is feasible and a table was built) one audit report, under a
//! versioned JSON schema that CI asserts against.

use crate::{AuditReport, Feasibility};
use serde::{Serialize, Value};

/// Version tag embedded in every exported report. Bump only on breaking
/// schema changes; additive fields keep the tag.
pub const SCHEMA: &str = "irnet-analyze-v1";

/// One analysis target: the oracle's verdict plus, when a routing instance
/// was built on top of a feasible target, the whole-table audit.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Human-readable target label (topology source, algorithm, policy).
    pub target: String,
    /// The feasibility oracle's verdict.
    pub feasibility: Feasibility,
    /// Audit results; `None` when the target is infeasible (nothing to
    /// audit) or the caller ran the oracle only.
    pub audit: Option<AuditReport>,
}

impl AnalysisReport {
    /// Whether the target is feasible and every run audit passed.
    pub fn passed(&self) -> bool {
        self.feasibility.is_feasible() && self.audit.as_ref().is_none_or(AuditReport::passed)
    }

    /// Pretty JSON under the [`SCHEMA`] tag.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_default()
    }
}

impl Serialize for AnalysisReport {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("schema".to_string(), Value::Str(SCHEMA.to_string())),
            ("target".to_string(), Value::Str(self.target.clone())),
            ("passed".to_string(), Value::Bool(self.passed())),
            ("feasibility".to_string(), self.feasibility.to_value()),
            (
                "audit".to_string(),
                self.audit.as_ref().map_or(Value::Null, Serialize::to_value),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_topology;
    use irnet_topology::Topology;

    #[test]
    fn report_json_carries_the_schema_tag() {
        let topo = Topology::new(3, 4, [(0, 1), (1, 2), (0, 2)]).unwrap();
        let report = AnalysisReport {
            target: "triangle".to_string(),
            feasibility: analyze_topology(&topo),
            audit: None,
        };
        assert!(report.passed());
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"irnet-analyze-v1\""));
        assert!(json.contains("\"status\": \"feasible\""));
        assert!(json.contains("\"audit\": null"));
    }
}
