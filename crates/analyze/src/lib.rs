//! Static routability analysis, independent of the simulator.
//!
//! Two halves (see DESIGN.md §15):
//!
//! * The **feasibility oracle** ([`analyze_topology`], [`analyze_faulted`],
//!   [`analyze_digraph`]) answers the existence question of Mendlovic &
//!   Matias (arXiv:2503.04583): does *any* deadlock-free connected routing
//!   exist on this (possibly degraded) network? [`Feasibility::Feasible`]
//!   carries a constructive up\*/down\* numbering [`Witness`];
//!   [`Feasibility::Infeasible`] carries a minimized [`Obstruction`]. The
//!   oracle costs one BFS, which lets `repair_epoch` (crates/core) and
//!   `irnet faults` reject hopeless degradations in milliseconds instead
//!   of after a failed rebuild.
//! * The **whole-table auditor** ([`audit`]) statically proves four
//!   properties of a built routing instance — no black holes, bounded
//!   stretch, load-bearing prohibitions, and rank-bounded misrouting —
//!   reporting through the stable lint codes `IRNET-E006..E009` /
//!   `W003..W004` shared with `irnet-verify`.
//!
//! [`AnalysisReport`] bundles both halves under the versioned JSON
//! [`SCHEMA`] consumed by `irnet analyze` and CI.

#![warn(missing_docs)]

mod audits;
mod feasibility;
mod report;

pub use audits::{audit, AuditReport, StretchHistogram, STRETCH_WARN};
pub use feasibility::{
    analyze_and_degrade, analyze_and_degrade_masks, analyze_digraph, analyze_faulted,
    analyze_masks, analyze_topology, AnalyzedDegrade, Digraph, DigraphFeasibility, Feasibility,
    Obstruction, Witness, DEAD,
};
pub use report::{AnalysisReport, SCHEMA};
