//! Whole-table property audits: static proofs over a built routing
//! instance that the per-turn lint battery in `irnet-verify` does not
//! cover. Four properties are checked:
//!
//! 1. **Reachability / black holes** (`IRNET-E006`): every misroute-closure
//!    state a packet can reach — `(destination, switch, input slot)` tuples
//!    expanded through the non-minimal escape sets — has at least one legal
//!    escape port. A reachable state with an empty escape set is a silent
//!    black hole the simulator would only find by losing a packet.
//! 2. **Stretch** (`IRNET-E008` / `IRNET-W003`): minimal legal route
//!    lengths versus BFS shortest paths. A route longer than the switch
//!    count provably revisits a switch (error); pairs stretched beyond
//!    [`STRETCH_WARN`] are aggregated into one warning, and the full
//!    distribution is exported as a [`StretchHistogram`].
//! 3. **Turn-prohibition minimality** (`IRNET-W004`): a prohibited turn is
//!    *load-bearing* when releasing it would close a channel-dependency
//!    cycle, i.e. the dependency graph already has a path from the turn's
//!    out-channel back to its in-channel ([`PathOracle`] query). Turns that
//!    are not load-bearing could be released for free adaptivity.
//! 4. **Livelock freedom** (`IRNET-E009`): every edge of every escape set
//!    must strictly climb the certificate's channel numbering. Then any
//!    sequence of misroutes is a strictly increasing walk in a finite
//!    order, so misrouting terminates — a static no-livelock proof.
//!
//! Findings reuse the [`Finding`] / severity plumbing from `irnet-verify`,
//! so JSON export and exit-code policy are uniform with `irnet lint`.

use irnet_topology::{ChannelId, CommGraph, NodeId};
use irnet_turns::{ChannelDepGraph, PathOracle, RoutingTables, TurnTable, INJECTION_SLOT};
use irnet_verify::{Certificate, Finding, LintCode, Severity, Verdict};
use serde::{Serialize, Value};

/// Pairs stretched beyond this ratio are reported under `IRNET-W003`.
pub const STRETCH_WARN: f64 = 2.0;

/// Cap on per-state detail findings for one code; the remainder collapses
/// into a single aggregate finding so broken tables cannot flood reports.
const MAX_DETAIL: usize = 8;

/// Distribution of minimal-route stretch (route length / BFS distance)
/// over all audited ordered pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StretchHistogram {
    /// Ordered pairs audited (active source and destination, `s != t`).
    pub pairs: u64,
    /// Worst stretch ratio observed.
    pub max: f64,
    /// Mean stretch ratio.
    pub mean: f64,
    /// Buckets: `= 1`, `(1, 1.25]`, `(1.25, 1.5]`, `(1.5, 2]`, `> 2`.
    pub buckets: [u64; 5],
}

impl StretchHistogram {
    fn record(&mut self, stretch: f64) {
        self.pairs += 1;
        self.max = self.max.max(stretch);
        self.mean += stretch;
        let b = if stretch <= 1.0 {
            0
        } else if stretch <= 1.25 {
            1
        } else if stretch <= 1.5 {
            2
        } else if stretch <= STRETCH_WARN {
            3
        } else {
            4
        };
        self.buckets[b] += 1;
    }

    fn finish(&mut self) {
        if self.pairs > 0 {
            self.mean /= self.pairs as f64;
        }
    }
}

impl Serialize for StretchHistogram {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("pairs".to_string(), Value::U64(self.pairs)),
            ("max".to_string(), Value::F64(self.max)),
            ("mean".to_string(), Value::F64(self.mean)),
            (
                "buckets".to_string(),
                Value::Map(
                    ["eq_1", "le_1_25", "le_1_5", "le_2", "gt_2"]
                        .iter()
                        .zip(self.buckets.iter())
                        .map(|(k, &n)| ((*k).to_string(), Value::U64(n)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// The result of running all four audits over one routing instance.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Findings across all four audits, errors first, then by code.
    pub findings: Vec<Finding>,
    /// Stretch distribution over audited pairs.
    pub stretch: StretchHistogram,
    /// Total prohibited turns in the table.
    pub prohibited_turns: u32,
    /// Prohibited turns that are *not* load-bearing (releasable).
    pub redundant_prohibitions: u32,
    /// Reachable misroute states with no escape (black holes).
    pub black_hole_states: u64,
}

impl AuditReport {
    /// Whether all four audits passed, i.e. no error-level finding.
    /// Warnings (`W003`/`W004`) are informational and do not fail an audit.
    pub fn passed(&self) -> bool {
        !self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// Number of findings with the given code.
    pub fn count(&self, code: LintCode) -> usize {
        self.findings.iter().filter(|f| f.code == code).count()
    }
}

impl Serialize for AuditReport {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("passed".to_string(), Value::Bool(self.passed())),
            (
                "findings".to_string(),
                Value::Seq(self.findings.iter().map(Serialize::to_value).collect()),
            ),
            ("stretch".to_string(), self.stretch.to_value()),
            (
                "prohibited_turns".to_string(),
                Value::U64(u64::from(self.prohibited_turns)),
            ),
            (
                "redundant_prohibitions".to_string(),
                Value::U64(u64::from(self.redundant_prohibitions)),
            ),
            (
                "black_hole_states".to_string(),
                Value::U64(self.black_hole_states),
            ),
        ])
    }
}

fn finding(
    code: LintCode,
    message: String,
    node: Option<NodeId>,
    channels: Vec<ChannelId>,
) -> Finding {
    Finding {
        code,
        severity: code.severity(),
        message,
        node,
        channels,
    }
}

/// Runs the four whole-table audits over one routing instance.
///
/// `cert` is the deadlock-freedom certificate for the same `(cg, table)`
/// pair (normally `certify(cg, table)`); its numbering anchors the
/// livelock audit. Inactive destinations — switches whose injection masks
/// are zero everywhere, as produced for dead nodes by masked builds — are
/// skipped, so the auditor works unchanged on degraded instances.
pub fn audit(
    cg: &CommGraph,
    table: &TurnTable,
    tables: &RoutingTables,
    cert: &Certificate,
) -> AuditReport {
    let ch = cg.channels();
    let n = tables.num_nodes();
    let slots = tables.slots();
    let mut findings = Vec::new();

    // An "active" destination receives traffic from at least one source.
    let active: Vec<bool> = (0..n)
        .map(|t| (0..n).any(|s| s != t && tables.candidates(t, s, INJECTION_SLOT) != 0))
        .collect();

    // --- Audit 1: reachability / black holes (E006) --------------------
    let mut black_holes = 0u64;
    let mut detail = Vec::new();
    let mut seen = vec![false; n as usize * slots];
    for t in 0..n {
        if !active[t as usize] {
            continue;
        }
        seen.fill(false);
        let mut stack: Vec<(NodeId, usize)> = Vec::new();
        for s in 0..n {
            if s != t && tables.candidates_any(t, s, INJECTION_SLOT) != 0 {
                seen[s as usize * slots + INJECTION_SLOT] = true;
                stack.push((s, INJECTION_SLOT));
            }
        }
        while let Some((v, slot)) = stack.pop() {
            let mask = tables.candidates_any(t, v, slot);
            if mask == 0 {
                // Reachable state with no legal escape: a black hole.
                black_holes += 1;
                if detail.len() < MAX_DETAIL {
                    detail.push(finding(
                        LintCode::BlackHole,
                        format!(
                            "packet to {t} at switch {v} (input slot {slot}) has no \
                             legal escape port"
                        ),
                        Some(v),
                        Vec::new(),
                    ));
                }
                continue;
            }
            for (p, &c) in ch.outputs(v).iter().enumerate() {
                if (mask >> p) & 1 == 0 {
                    continue;
                }
                let w = ch.sink(c);
                let next = ch.in_port(c) as usize + 1;
                if w != t && !seen[w as usize * slots + next] {
                    seen[w as usize * slots + next] = true;
                    stack.push((w, next));
                }
            }
        }
    }
    let shown = detail.len() as u64;
    findings.append(&mut detail);
    if black_holes > shown {
        findings.push(finding(
            LintCode::BlackHole,
            format!("{} more black-hole state(s) elided", black_holes - shown),
            None,
            Vec::new(),
        ));
    }

    // --- Audit 2: stretch vs BFS shortest paths (E008 / W003) ----------
    let mut stretch = StretchHistogram::default();
    let mut overlong = Vec::new();
    let mut worst: Option<(NodeId, NodeId, f64)> = None;
    let mut stretched_pairs = 0u64;
    let mut dist = vec![u32::MAX; n as usize];
    let mut queue = std::collections::VecDeque::new();
    for t in 0..n {
        if !active[t as usize] {
            continue;
        }
        // BFS distance *to* t over the symmetric channel graph.
        dist.fill(u32::MAX);
        dist[t as usize] = 0;
        queue.clear();
        queue.push_back(t);
        while let Some(v) = queue.pop_front() {
            for &c in ch.outputs(v) {
                let w = ch.sink(c);
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
            }
        }
        for s in 0..n {
            if s == t {
                continue;
            }
            let mask = tables.candidates(t, s, INJECTION_SLOT);
            if mask == 0 || dist[s as usize] == u32::MAX {
                continue; // inactive source, or pair outside the fabric
            }
            let mut len = u16::MAX;
            for (p, &c) in ch.outputs(s).iter().enumerate() {
                if (mask >> p) & 1 == 1 {
                    len = len.min(tables.cost(t, c));
                }
            }
            if len == u16::MAX {
                continue; // unreachable pairs are the black-hole audit's job
            }
            if u32::from(len) >= n && overlong.len() < MAX_DETAIL {
                overlong.push(finding(
                    LintCode::RouteOverlong,
                    format!(
                        "minimal route {s} -> {t} takes {len} hops across {n} \
                         switches, so it revisits a switch"
                    ),
                    Some(s),
                    Vec::new(),
                ));
            }
            let ratio = f64::from(len) / f64::from(dist[s as usize]);
            stretch.record(ratio);
            if ratio > STRETCH_WARN {
                stretched_pairs += 1;
                if worst.is_none_or(|(_, _, w)| ratio > w) {
                    worst = Some((s, t, ratio));
                }
            }
        }
    }
    stretch.finish();
    findings.append(&mut overlong);
    if let Some((s, t, ratio)) = worst {
        findings.push(finding(
            LintCode::ExcessStretch,
            format!(
                "{stretched_pairs} pair(s) stretched beyond {STRETCH_WARN}x their BFS \
                 distance; worst is {s} -> {t} at {ratio:.2}x"
            ),
            Some(s),
            Vec::new(),
        ));
    }

    // --- Audit 3: turn-prohibition minimality (W004) -------------------
    let dep = ChannelDepGraph::build(cg, table);
    let mut oracle = PathOracle::new(&dep);
    let prohibited = table.prohibited_pairs(cg);
    let mut redundant = 0u32;
    let mut examples: Vec<ChannelId> = Vec::new();
    for &(in_ch, out_ch) in &prohibited {
        // Load-bearing iff releasing in_ch -> out_ch would close a cycle,
        // i.e. the dependency graph already walks out_ch back to in_ch.
        if !oracle.has_path(out_ch, in_ch) {
            redundant += 1;
            if examples.len() < 2 * MAX_DETAIL {
                examples.push(in_ch);
                examples.push(out_ch);
            }
        }
    }
    if redundant > 0 {
        findings.push(finding(
            LintCode::RedundantProhibition,
            format!(
                "{redundant} of {} prohibited turn(s) are not load-bearing: \
                 releasing them keeps the dependency graph acyclic",
                prohibited.len()
            ),
            None,
            examples,
        ));
    }

    // --- Audit 4: livelock freedom via certificate rank (E009) ---------
    match &cert.verdict {
        Verdict::DeadlockFree { numbering } => {
            let mut violations = Vec::new();
            let mut total = 0u64;
            for t in 0..n {
                if !active[t as usize] {
                    continue;
                }
                for v in 0..n {
                    if v == t {
                        continue;
                    }
                    for slot in 1..slots {
                        let mask = tables.candidates_any(t, v, slot);
                        if mask == 0 || slot > ch.inputs(v).len() {
                            continue;
                        }
                        let in_ch = ch.input_at(v, (slot - 1) as u8);
                        for (p, &c) in ch.outputs(v).iter().enumerate() {
                            if (mask >> p) & 1 == 0 {
                                continue;
                            }
                            if numbering[in_ch as usize] >= numbering[c as usize] {
                                total += 1;
                                if violations.len() < MAX_DETAIL {
                                    violations.push(finding(
                                        LintCode::RankViolation,
                                        format!(
                                            "escape turn {in_ch} -> {c} at switch {v} \
                                             (destination {t}) does not climb the \
                                             certificate numbering"
                                        ),
                                        Some(v),
                                        vec![in_ch, c],
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            let shown = violations.len() as u64;
            findings.append(&mut violations);
            if total > shown {
                findings.push(finding(
                    LintCode::RankViolation,
                    format!("{} more rank violation(s) elided", total - shown),
                    None,
                    Vec::new(),
                ));
            }
        }
        Verdict::Deadlock { witness } => {
            findings.push(finding(
                LintCode::RankViolation,
                "certificate reports deadlock: no acyclic rank exists to bound \
                 misrouting"
                    .to_string(),
                None,
                witness.clone(),
            ));
        }
    }

    findings.sort_by(|a, b| {
        let k = |f: &Finding| (f.severity == Severity::Warning, f.code.code(), f.node);
        k(a).cmp(&k(b))
    });
    AuditReport {
        findings,
        stretch,
        prohibited_turns: prohibited.len() as u32,
        redundant_prohibitions: redundant,
        black_hole_states: black_holes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_core::DownUp;
    use irnet_topology::gen;
    use irnet_verify::certify;

    #[test]
    fn well_built_instances_pass_all_four_audits() {
        for seed in 0..4 {
            let topo = gen::random_irregular(gen::IrregularParams::paper(20, 4), seed).unwrap();
            let built = DownUp::new().construct(&topo).unwrap();
            let (_, cg, table, tables) = built.into_parts();
            let cert = certify(&cg, &table);
            let report = audit(&cg, &table, &tables, &cert);
            assert!(report.passed(), "audit failed: {:?}", report.findings);
            assert_eq!(report.black_hole_states, 0);
            assert_eq!(report.count(LintCode::RouteOverlong), 0);
            assert_eq!(report.count(LintCode::RankViolation), 0);
            assert_eq!(
                report.stretch.pairs,
                u64::from(topo.num_nodes()) * u64::from(topo.num_nodes() - 1)
            );
            assert!(report.stretch.max >= 1.0);
        }
    }

    #[test]
    fn scrambled_numbering_trips_the_rank_audit() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 1).unwrap();
        let built = DownUp::new().construct(&topo).unwrap();
        let (_, cg, table, tables) = built.into_parts();
        let mut cert = certify(&cg, &table);
        if let Verdict::DeadlockFree { numbering } = &mut cert.verdict {
            numbering.reverse();
        }
        let report = audit(&cg, &table, &tables, &cert);
        assert!(!report.passed());
        assert!(report.count(LintCode::RankViolation) > 0);
    }

    #[test]
    fn minimality_counts_agree_with_a_direct_recount() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 2).unwrap();
        let built = DownUp::new().release(false).construct(&topo).unwrap();
        let (_, cg, table, tables) = built.into_parts();
        let cert = certify(&cg, &table);
        let report = audit(&cg, &table, &tables, &cert);
        let dep = ChannelDepGraph::build(&cg, &table);
        let recount = table
            .prohibited_pairs(&cg)
            .iter()
            .filter(|&&(i, o)| !dep.has_path(o, i))
            .count() as u32;
        assert_eq!(report.redundant_prohibitions, recount);
        assert_eq!(
            report.prohibited_turns as usize,
            table.prohibited_pairs(&cg).len()
        );
    }
}
