//! Ablation A7: adaptivity and traffic-direction analysis.
//!
//! Measures, per algorithm: the degree of adaptivity (average number of
//! minimal legal output candidates at injection and in transit), minimal-
//! path diversity, and the measured share of flit traffic per direction
//! class (up / down / horizontal) — the mechanism behind the paper's
//! "push the traffic downward to the leaves" claim.
//!
//! Usage: `adaptivity [--quick|--full] [--samples N] ...`

use irnet_bench::{parse_args, ExperimentConfig};
use irnet_metrics::direction::DirectionBreakdown;
use irnet_metrics::report::TextTable;
use irnet_metrics::Algo;
use irnet_sim::{SimConfig, Simulator};
use irnet_topology::{gen, PreorderPolicy};
use irnet_turns::adaptivity;

const USAGE: &str = "adaptivity — adaptivity degree, path diversity, and direction shares (A7)
options: same as fig8 (see `fig8 --help`)";

fn main() {
    let cli = parse_args(std::env::args(), USAGE);
    let cfg = ExperimentConfig::from_cli(&cli);
    let algos = [
        Algo::UpDownBfs,
        Algo::UpDownDfs,
        Algo::LTurn { release: true },
        Algo::DownUp { release: false },
        Algo::DownUp { release: true },
    ];
    let sim_cfg = SimConfig {
        injection_rate: 0.15,
        ..cfg.sim
    };

    let mut table = TextTable::new(&[
        "algorithm",
        "inj choices",
        "transit choices",
        "path div (gmean)",
        "up %",
        "down %",
        "horiz %",
    ]);
    for algo in algos {
        let mut inj = 0.0;
        let mut transit = 0.0;
        let mut div = 0.0;
        let mut up = 0.0;
        let mut down = 0.0;
        let mut horiz = 0.0;
        for s in 0..cfg.samples {
            let topo = gen::random_irregular(
                gen::IrregularParams::paper(cfg.num_switches, cfg.ports[0]),
                cfg.topo_seed + s as u64,
            )
            .unwrap();
            let inst = algo.construct(&topo, PreorderPolicy::M1, s as u64).unwrap();
            let a = adaptivity(&inst.cg, &inst.tables);
            inj += a.injection_choices;
            transit += a.transit_choices;
            div += a.path_diversity_gmean;
            let stats =
                Simulator::new(&inst.cg, &inst.tables, sim_cfg, cfg.sim_seed + s as u64).run();
            let b = DirectionBreakdown::compute(&stats, &inst.cg);
            up += b.up;
            down += b.down;
            horiz += b.horizontal;
        }
        let n = cfg.samples as f64;
        table.row(vec![
            algo.to_string(),
            format!("{:.2}", inj / n),
            format!("{:.2}", transit / n),
            format!("{:.2}", div / n),
            format!("{:.1}", 100.0 * up / n),
            format!("{:.1}", 100.0 * down / n),
            format!("{:.1}", 100.0 * horiz / n),
        ]);
    }
    println!(
        "\nAdaptivity and direction shares — {} switches, {}-port, {} samples, \
         offered load {:.2}:\n",
        cfg.num_switches, cfg.ports[0], cfg.samples, sim_cfg.injection_rate
    );
    println!("{}", table.render());
}
