//! Ablation A3: the full baseline field — up*/down* (BFS and DFS), L-turn,
//! and DOWN/UP — on the same networks. Extends the paper's two-way
//! comparison with the related-work algorithms of its §2.
//!
//! Usage: `ablation_baselines [--quick|--full] [--samples N] ...`

use irnet_bench::{parse_args, run_grid, ExperimentConfig};
use irnet_metrics::report::TextTable;
use irnet_metrics::Algo;

const USAGE: &str = "ablation_baselines — up*/down* vs L-turn vs DOWN/UP (A3)
options: same as fig8 (see `fig8 --help`)";

fn main() {
    let cli = parse_args(std::env::args(), USAGE);
    let mut cfg = ExperimentConfig::from_cli(&cli);
    cfg.algos = vec![
        Algo::UpDownBfs,
        Algo::UpDownDfs,
        Algo::LTurn { release: true },
        Algo::DownUp { release: true },
    ];
    let results = run_grid(&cfg);

    for &ports in &cfg.ports {
        let mut table = TextTable::new(&[
            "algorithm",
            "max throughput",
            "latency @ sat",
            "node util",
            "traffic load",
            "hot spot %",
            "leaf util",
        ]);
        for &algo in &cfg.algos {
            let m = results
                .cell(ports, cfg.policies[0], algo)
                .unwrap()
                .saturation;
            table.row(vec![
                algo.to_string(),
                format!("{:.4}", m.accepted_traffic),
                format!("{:.0}", m.avg_latency),
                format!("{:.4}", m.node_utilization),
                format!("{:.4}", m.traffic_load),
                format!("{:.1}", m.hot_spot_degree),
                format!("{:.4}", m.leaf_utilization),
            ]);
        }
        println!(
            "\nBaseline field at maximal throughput — {} switches, {}-port, {} samples ({}):\n",
            cfg.num_switches, ports, cfg.samples, cfg.policies[0]
        );
        println!("{}", table.render());
    }
}
