//! `perf` — the simulator-core performance harness behind `BENCH_sim.json`.
//!
//! Measures wall-clock cycles/second and flit-hops/second of the wormhole
//! simulator at low / mid / saturation offered load on fabrics from 32 up
//! to 4096 switches, for both scheduling cores (the occupancy-driven
//! active-set core and the dense reference scan), plus the construction
//! cost (topology generation and DOWN/UP routing construction) of each
//! fabric, and writes a machine-readable report so later PRs can prove
//! perf non-regression.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p irnet-bench --bin perf -- [--quick] \
//!     [--sizes 32,1024] [--out BENCH_sim.json] [--seed 7] [--reps 2]
//! ```
//!
//! `--quick` restricts the sweep to the 32-switch fabric (the CI
//! `perf-smoke` job); the default sweep covers 32/128/512/1024/2048/4096
//! switches. `--sizes` overrides either preset with an explicit
//! comma-separated list of switch counts. Timing is reported, never
//! asserted — CI fails only on panic or invalid JSON.
//!
//! ## `BENCH_sim.json` schema (`schema_version` 5)
//!
//! ```json
//! {
//!   "schema_version": 5,
//!   "bench": "sim_core",
//!   "backend": "flit",
//!   "quick": false,
//!   "packet_len": 32,
//!   "seed": 7,
//!   "reps": 2,
//!   "construction": [
//!     {
//!       "switches": 128, "ports": 8, "channels": 1004,
//!       "topology_seconds": 0.0008,
//!       "construct_seconds": 0.0231,
//!       "construct_micros_per_switch": 180.5,
//!       "phase1_seconds": 0.0009,
//!       "phase2_seconds": 0.0004,
//!       "phase3_seconds": 0.0122,
//!       "tables_seconds": 0.0096
//!     }
//!   ],
//!   "results": [
//!     {
//!       "switches": 128, "ports": 8,
//!       "load": "low", "injection_rate": 0.002,
//!       "core": "active_set",
//!       "warmup_cycles": 1000, "measure_cycles": 8000,
//!       "total_cycles": 9000, "wall_seconds": 0.0042,
//!       "cycles_per_sec": 2142857.1,
//!       "flit_hops": 20816, "flit_hops_per_sec": 4956190.5,
//!       "packets_delivered": 638, "deadlocked": false
//!     }
//!   ],
//!   "speedups": [
//!     {
//!       "switches": 128, "ports": 8,
//!       "load": "low", "injection_rate": 0.002,
//!       "active_cycles_per_sec": 2142857.1,
//!       "dense_cycles_per_sec": 301003.3,
//!       "speedup": 7.12
//!     }
//!   ],
//!   "repair": [
//!     {
//!       "switches": 128, "ports": 8, "strategy": "incremental",
//!       "classify_seconds": 0.00002, "phases_seconds": 0.0011,
//!       "patch_seconds": 0.0006, "recertify_seconds": 0.0001,
//!       "total_seconds": 0.0018,
//!       "touched_switches": 9, "touched_rows": 1204,
//!       "patched_in_place": true
//!     }
//!   ],
//!   "flow": [
//!     {
//!       "switches": 128, "ports": 8,
//!       "predict_seconds": 0.61,
//!       "warm_point_seconds": 0.0009,
//!       "cluster_count": 31,
//!       "representative_sims": 44,
//!       "rep_sim_seconds": 0.55,
//!       "predicted_saturation": 0.3870,
//!       "speedup_vs_exact": 212.4
//!     }
//!   ]
//! }
//! ```
//!
//! * `construction` holds one entry per fabric: `topology_seconds` is the
//!   random-irregular generation time, `construct_seconds` the DOWN/UP
//!   routing construction time (Phases 1–3: spanning tree, prefix
//!   restrictions, release pass), each the fastest of `reps` runs, and
//!   `construct_micros_per_switch` = `construct_seconds / switches` in µs —
//!   the normalized metric regression runs track across sizes. The
//!   `phase*_seconds`/`tables_seconds` spans break the fastest
//!   construction run down by pipeline stage (tree + comm graph, turn
//!   prohibition, release pass, routing-table build).
//! * `results` holds one entry per `(fabric, load, core)`; `wall_seconds`
//!   is the fastest of `reps` identical runs (same seed, so identical
//!   work), which filters scheduler noise.
//! * `flit_hops` is the number of inter-switch link traversals during the
//!   measurement window (`sum(channel_flits)`).
//! * `speedups` pairs the two cores per `(fabric, load)`:
//!   `speedup = active_cycles_per_sec / dense_cycles_per_sec`.
//!
//! Schema v2 is a superset of v1: it adds the `construction` array, so v1
//! consumers that only read `results`/`speedups` keep working. Schema v3
//! adds the per-phase span fields to each `construction` entry (again a
//! pure superset). Schema v4 adds the `repair` array: per fabric, the cost
//! of repairing one cross-link failure (the first non-tree link — never a
//! bridge, since the coordinated tree survives without it) under both the
//! `full` rebuild and the `incremental` patching strategy, each the
//! fastest of `reps` runs, broken down into the four repair-stage spans
//! (`repair/{classify,phases,patch,recertify}` in the telemetry span
//! tree, which is where this harness reads them from).
//!
//! Schema v5 adds the top-level `backend` tag (always `"flit"` for this
//! harness — `perf_compare` refuses to diff reports whose backends differ)
//! and the `flow` array: per fabric, the flow-level backend's whole-ladder
//! prediction cost (`predict_seconds`, including the decomposition,
//! saturation probe, and every representative sim), the steady-state
//! marginal cost of one warm-cache operating-point query
//! (`warm_point_seconds`), the cluster/sim counts behind it, and
//! `speedup_vs_exact` — the exact engine's saturation-load run wall time
//! divided by `warm_point_seconds` (`null` where no exact run exists).

use irnet_bench::fixtures;
use irnet_bench::parse_args;
use irnet_core::DownUp;
use irnet_flow::{FlowConfig, FlowPredictor};
use irnet_sim::{EngineCore, SimConfig, SimStats, Simulator};
use irnet_telemetry::{Snapshot, Telemetry};
use irnet_topology::gen;
use serde::Serialize;
use std::time::Instant;

const USAGE: &str = "perf — simulator-core performance harness (BENCH_sim.json)

options:
  --quick        32-switch fabric only (CI-sized)
  --sizes LIST   comma-separated switch counts (overrides --quick/default)
  --out PATH     output path (default BENCH_sim.json)
  --seed N       topology + simulation seed (default 7)
  --reps N       timed repetitions per point, fastest wins (default 2)
";

/// One timed `(fabric, load, core)` measurement.
#[derive(Serialize)]
struct CoreResult {
    switches: u32,
    ports: u32,
    load: String,
    injection_rate: f64,
    core: String,
    warmup_cycles: u32,
    measure_cycles: u32,
    total_cycles: u64,
    wall_seconds: f64,
    cycles_per_sec: f64,
    flit_hops: u64,
    flit_hops_per_sec: f64,
    packets_delivered: u64,
    deadlocked: bool,
}

/// Active-set vs dense-reference pairing for one `(fabric, load)`.
#[derive(Serialize)]
struct Speedup {
    switches: u32,
    ports: u32,
    load: String,
    injection_rate: f64,
    active_cycles_per_sec: f64,
    dense_cycles_per_sec: f64,
    speedup: f64,
}

/// Construction cost of one fabric (topology generation and DOWN/UP
/// routing construction timed separately; fastest of `reps` runs).
#[derive(Serialize)]
struct ConstructionResult {
    switches: u32,
    ports: u32,
    channels: u32,
    topology_seconds: f64,
    construct_seconds: f64,
    construct_micros_per_switch: f64,
    phase1_seconds: f64,
    phase2_seconds: f64,
    phase3_seconds: f64,
    tables_seconds: f64,
}

/// Cost of repairing one cross-link failure on a fabric under one
/// [`RepairStrategy`](irnet_core::RepairStrategy) (fastest of `reps` runs).
#[derive(Serialize)]
struct RepairResult {
    switches: u32,
    ports: u32,
    strategy: String,
    classify_seconds: f64,
    phases_seconds: f64,
    patch_seconds: f64,
    recertify_seconds: f64,
    total_seconds: f64,
    touched_switches: u32,
    touched_rows: u64,
    patched_in_place: bool,
}

/// Flow-level backend cost on one fabric: whole-ladder prediction wall,
/// warm-cache marginal per-point cost, and the speedup over the exact
/// engine's saturation-load run (`None` when no exact run exists).
#[derive(Serialize)]
struct FlowResult {
    switches: u32,
    ports: u32,
    predict_seconds: f64,
    warm_point_seconds: f64,
    cluster_count: usize,
    representative_sims: usize,
    rep_sim_seconds: f64,
    predicted_saturation: f64,
    speedup_vs_exact: Option<f64>,
}

/// The whole `BENCH_sim.json` document.
#[derive(Serialize)]
struct BenchReport {
    schema_version: u32,
    bench: String,
    backend: String,
    quick: bool,
    packet_len: u32,
    seed: u64,
    reps: u32,
    construction: Vec<ConstructionResult>,
    results: Vec<CoreResult>,
    speedups: Vec<Speedup>,
    repair: Vec<RepairResult>,
    flow: Vec<FlowResult>,
}

/// Offered-load operating points (label, flits/node/clock).
const LOADS: [(&str, f64); 3] = [("low", 0.002), ("mid", 0.02), ("saturation", 0.5)];
const PACKET_LEN: u32 = 32;

fn core_label(core: EngineCore) -> &'static str {
    match core {
        EngineCore::ActiveSet => "active_set",
        EngineCore::DenseReference => "dense_reference",
    }
}

/// Measurement-window length per fabric size (larger fabrics get fewer
/// cycles so the dense reference stays affordable).
fn measure_cycles(switches: u32) -> u32 {
    match switches {
        0..=63 => 16_000,
        64..=255 => 8_000,
        256..=1023 => 4_000,
        _ => 2_000,
    }
}

/// Builds the fabric for `switches`, timing topology generation and
/// DOWN/UP construction separately (fastest of `reps` attempts each). The
/// per-phase breakdown is read from the telemetry span tree each run
/// records (a fresh registry per rep, so "fastest run" picks a coherent
/// set of spans rather than a mix of reps).
fn build_fabric(
    switches: u32,
    ports: u32,
    seed: u64,
    reps: u32,
) -> (fixtures::Fabric, ConstructionResult) {
    let params = gen::IrregularParams::paper(switches, ports);
    let mut topo_best = f64::INFINITY;
    let mut topo = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let t = gen::random_irregular(params, seed).expect("topology generation failed");
        topo_best = topo_best.min(start.elapsed().as_secs_f64());
        topo = Some(t);
    }
    let topo = topo.expect("at least one rep");
    let mut construct_best = f64::INFINITY;
    let mut best_snap: Option<Snapshot> = None;
    let mut routing = None;
    for _ in 0..reps.max(1) {
        let tel = Telemetry::enabled();
        let start = Instant::now();
        let r = DownUp::new()
            .construct_with(&topo, &tel)
            .expect("routing construction failed");
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < construct_best {
            construct_best = elapsed;
            best_snap = Some(tel.snapshot());
        }
        routing = Some(r);
    }
    let routing = routing.expect("at least one rep");
    let snap = best_snap.expect("at least one rep");
    let sec = |path: &str| snap.span_seconds(path).unwrap_or(0.0);
    let stats = ConstructionResult {
        switches,
        ports,
        channels: routing.comm_graph().num_channels(),
        topology_seconds: topo_best,
        construct_seconds: construct_best,
        construct_micros_per_switch: construct_best * 1e6 / f64::from(switches),
        phase1_seconds: sec("construction/phase1"),
        phase2_seconds: sec("construction/phase2"),
        phase3_seconds: sec("construction/phase3"),
        tables_seconds: sec("construction/tables"),
    };
    (fixtures::Fabric { topo, routing }, stats)
}

/// Times the repair of a single cross-link failure (the first non-tree
/// link — never a bridge, because the coordinated tree spans the graph
/// without it) under both repair strategies, fastest of `reps` runs each.
/// Stage timings and touch counts are read back from the telemetry span
/// tree / counters each repair records (one fresh registry per rep keeps
/// the winning rep's numbers coherent). Returns an empty vector on the
/// degenerate all-tree fabric.
fn bench_repair(
    fabric: &fixtures::Fabric,
    switches: u32,
    ports: u32,
    reps: u32,
) -> Vec<RepairResult> {
    use irnet_core::{plan_epochs_instrumented, RepairStrategy};
    use irnet_topology::{FaultEvent, FaultKind, FaultPlan};

    let tree = fabric.routing.tree();
    let mut cross = None;
    for (l, &(a, b)) in fabric.topo.links().iter().enumerate() {
        if !tree.is_tree_link(u32::try_from(l).expect("link count fits u32")) {
            cross = Some((a, b));
            break;
        }
    }
    let Some((a, b)) = cross else {
        return Vec::new();
    };
    let plan = FaultPlan::scripted([FaultEvent::down(1_000, FaultKind::Link { a, b })]);
    let mut out = Vec::new();
    for strategy in [RepairStrategy::Full, RepairStrategy::Incremental] {
        let mut best: Option<Snapshot> = None;
        let mut best_total = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let tel = Telemetry::enabled();
            let epochs = plan_epochs_instrumented(
                &fabric.topo,
                fabric.routing.comm_graph(),
                fabric.routing.turn_table(),
                fabric.routing.routing_tables(),
                &plan,
                DownUp::new(),
                strategy,
                &tel,
            )
            .expect("cross-link repair failed");
            assert_eq!(epochs.len(), 1, "one fault event yields one repair epoch");
            let snap = tel.snapshot();
            let total = snap
                .span_seconds("repair")
                .expect("repair records its span");
            if total < best_total {
                best_total = total;
                best = Some(snap);
            }
        }
        let snap = best.expect("at least one rep");
        let sec = |path: &str| snap.span_seconds(path).unwrap_or(0.0);
        let cnt = |name: &str| snap.counter(name).unwrap_or(0);
        eprintln!(
            "  repair {:>12}: {:>9.4}s  (classify {:.4} + phases {:.4} + \
             patch {:.4} + recertify {:.4}), {} switch(es) / {} row(s)",
            strategy.name(),
            best_total,
            sec("repair/classify"),
            sec("repair/phases"),
            sec("repair/patch"),
            sec("repair/recertify"),
            cnt("repair/touched_switches"),
            cnt("repair/touched_rows"),
        );
        out.push(RepairResult {
            switches,
            ports,
            strategy: strategy.name().to_string(),
            classify_seconds: sec("repair/classify"),
            phases_seconds: sec("repair/phases"),
            patch_seconds: sec("repair/patch"),
            recertify_seconds: sec("repair/recertify"),
            total_seconds: best_total,
            touched_switches: u32::try_from(cnt("repair/touched_switches"))
                .expect("touched switches fit u32"),
            touched_rows: cnt("repair/touched_rows"),
            patched_in_place: cnt("repair/patched_in_place") > 0,
        });
    }
    out
}

/// Measures the flow-level backend on one fabric: predictor build + the
/// full `LOADS` ladder (`predict_seconds`), then the warm-cache marginal
/// cost of three fresh operating points around the predicted saturation
/// knee (`warm_point_seconds`). `exact_sat_wall` is the exact engine's
/// saturation-load active-set wall time, the baseline for
/// `speedup_vs_exact`.
fn bench_flow(
    fabric: &fixtures::Fabric,
    switches: u32,
    ports: u32,
    seed: u64,
    exact_sat_wall: Option<f64>,
) -> FlowResult {
    let base = SimConfig {
        packet_len: PACKET_LEN,
        warmup_cycles: 1_000,
        measure_cycles: measure_cycles(switches),
        ..SimConfig::default()
    };
    let cfg = FlowConfig::default();
    let rates: Vec<f64> = LOADS.iter().map(|&(_, r)| r).collect();
    let start = Instant::now();
    let mut pred = FlowPredictor::build(
        &fabric.topo,
        fabric.routing.tree(),
        fabric.routing.comm_graph(),
        fabric.routing.turn_table(),
        &base,
        seed,
        &cfg,
    );
    let curve = pred.curve(&rates);
    let predict_seconds = start.elapsed().as_secs_f64();
    let sat = pred.saturation();
    let warm_rates = [0.97 * sat, sat, 1.03 * sat];
    let warm_start = Instant::now();
    for r in warm_rates {
        let _ = pred.point(r);
    }
    let warm_point_seconds = warm_start.elapsed().as_secs_f64() / warm_rates.len() as f64;
    FlowResult {
        switches,
        ports,
        predict_seconds,
        warm_point_seconds,
        cluster_count: curve.cluster_count,
        representative_sims: curve.representative_sims,
        rep_sim_seconds: curve.rep_sim_seconds,
        predicted_saturation: sat,
        speedup_vs_exact: exact_sat_wall.map(|w| w / warm_point_seconds.max(1e-9)),
    }
}

fn time_run(fabric: &fixtures::Fabric, cfg: SimConfig, seed: u64, reps: u32) -> (f64, SimStats) {
    let cg = fabric.routing.comm_graph();
    let rt = fabric.routing.routing_tables();
    let mut best = f64::INFINITY;
    let mut stats = None;
    for _ in 0..reps.max(1) {
        let sim = Simulator::new(cg, rt, cfg, seed);
        let start = Instant::now();
        let s = sim.run();
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < best {
            best = elapsed;
        }
        stats = Some(s);
    }
    (best, stats.expect("at least one rep"))
}

fn main() {
    let cli = parse_args(std::env::args(), USAGE);
    let quick = cli.flag("quick");
    let out_path = cli.opt("out").unwrap_or("BENCH_sim.json").to_string();
    let seed: u64 = cli.opt_parse("seed", 7);
    let reps: u32 = cli.opt_parse("reps", 2);

    const PORTS: u32 = 8;
    let sizes: Vec<(u32, u32)> = if let Some(list) = cli.opt("sizes") {
        list.split(',')
            .map(|s| {
                let n = s
                    .trim()
                    .parse::<u32>()
                    .unwrap_or_else(|_| panic!("--sizes: `{s}` is not a switch count"));
                (n, PORTS)
            })
            .collect()
    } else if quick {
        vec![(32, PORTS)]
    } else {
        vec![
            (32, PORTS),
            (128, PORTS),
            (512, PORTS),
            (1024, PORTS),
            (2048, PORTS),
            (4096, PORTS),
        ]
    };

    let mut construction = Vec::new();
    let mut results = Vec::new();
    let mut speedups = Vec::new();
    let mut repair = Vec::new();
    let mut flow = Vec::new();
    for &(switches, ports) in &sizes {
        eprintln!("building {switches}-switch/{ports}-port fabric...");
        let (fabric, built) = build_fabric(switches, ports, seed, reps);
        eprintln!(
            "  topology {:>9.4}s  construct {:>9.4}s  ({:.1} us/switch)",
            built.topology_seconds, built.construct_seconds, built.construct_micros_per_switch,
        );
        eprintln!(
            "  spans: phase1 {:>9.4}s  phase2 {:>9.4}s  phase3 {:>9.4}s  tables {:>9.4}s",
            built.phase1_seconds, built.phase2_seconds, built.phase3_seconds, built.tables_seconds,
        );
        construction.push(built);
        repair.extend(bench_repair(&fabric, switches, ports, reps));
        let mut exact_sat_wall = None;
        for (load, rate) in LOADS {
            let cfg = SimConfig {
                packet_len: PACKET_LEN,
                injection_rate: rate,
                warmup_cycles: 1_000,
                measure_cycles: measure_cycles(switches),
                ..SimConfig::default()
            };
            let mut cps = [0.0f64; 2];
            for (k, core) in [EngineCore::ActiveSet, EngineCore::DenseReference]
                .into_iter()
                .enumerate()
            {
                let run_cfg = SimConfig {
                    engine_core: core,
                    ..cfg
                };
                let (wall, stats) = time_run(&fabric, run_cfg, seed, reps);
                if load == "saturation" && core == EngineCore::ActiveSet {
                    exact_sat_wall = Some(wall);
                }
                let total_cycles = cfg.total_cycles() as u64;
                let flit_hops: u64 = stats.channel_flits.iter().sum();
                let cycles_per_sec = total_cycles as f64 / wall;
                cps[k] = cycles_per_sec;
                eprintln!(
                    "  {switches}sw {load:>10} {:<15} {:>12.0} cycles/s  \
                     {:>12.0} flit-hops/s",
                    core_label(core),
                    cycles_per_sec,
                    flit_hops as f64 / wall,
                );
                results.push(CoreResult {
                    switches,
                    ports,
                    load: load.to_string(),
                    injection_rate: rate,
                    core: core_label(core).to_string(),
                    warmup_cycles: cfg.warmup_cycles,
                    measure_cycles: cfg.measure_cycles,
                    total_cycles,
                    wall_seconds: wall,
                    cycles_per_sec,
                    flit_hops,
                    flit_hops_per_sec: flit_hops as f64 / wall,
                    packets_delivered: stats.packets_delivered,
                    deadlocked: stats.deadlocked,
                });
            }
            speedups.push(Speedup {
                switches,
                ports,
                load: load.to_string(),
                injection_rate: rate,
                active_cycles_per_sec: cps[0],
                dense_cycles_per_sec: cps[1],
                speedup: cps[0] / cps[1],
            });
        }
        let f = bench_flow(&fabric, switches, ports, seed, exact_sat_wall);
        eprintln!(
            "  flow: predict {:>9.4}s  warm point {:>9.6}s  ({} clusters, {} rep sims)",
            f.predict_seconds, f.warm_point_seconds, f.cluster_count, f.representative_sims,
        );
        flow.push(f);
    }

    for c in &construction {
        println!(
            "{:>4} switches  construct {:>9.4}s  ({:.1} us/switch)",
            c.switches, c.construct_seconds, c.construct_micros_per_switch
        );
    }
    for s in &speedups {
        println!(
            "{:>4} switches  {:>10} load  active/dense speedup: {:.2}x",
            s.switches, s.load, s.speedup
        );
    }
    for pair in repair.chunks(2) {
        if let [full, incr] = pair {
            println!(
                "{:>4} switches  cross-link repair  full {:>9.4}s  \
                 incremental {:>9.4}s  ({:.1}x faster)",
                full.switches,
                full.total_seconds,
                incr.total_seconds,
                full.total_seconds / incr.total_seconds
            );
        }
    }
    for f in &flow {
        println!(
            "{:>4} switches  flow predict {:>9.4}s  warm point {:>9.6}s{}",
            f.switches,
            f.predict_seconds,
            f.warm_point_seconds,
            f.speedup_vs_exact
                .map_or_else(String::new, |s| format!("  ({s:.0}x vs exact sat point)")),
        );
    }

    let report = BenchReport {
        schema_version: 5,
        bench: "sim_core".to_string(),
        backend: "flit".to_string(),
        quick,
        packet_len: PACKET_LEN,
        seed,
        reps,
        construction,
        results,
        speedups,
        repair,
        flow,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialization failed");
    std::fs::write(&out_path, json + "\n").expect("failed to write report");
    println!("wrote {out_path}");
}
