//! `perf` — the simulator-core performance harness behind `BENCH_sim.json`.
//!
//! Measures wall-clock cycles/second and flit-hops/second of the wormhole
//! simulator at low / mid / saturation offered load on 32-, 128- and
//! 512-switch fabrics, for both scheduling cores (the occupancy-driven
//! active-set core and the dense reference scan), and writes a
//! machine-readable report so later PRs can prove perf non-regression.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p irnet-bench --bin perf -- [--quick] \
//!     [--out BENCH_sim.json] [--seed 7] [--reps 2]
//! ```
//!
//! `--quick` restricts the sweep to the 32-switch fabric (the CI
//! `perf-smoke` job); the default sweep covers 32/128/512 switches.
//! Timing is reported, never asserted — CI fails only on panic or
//! invalid JSON.
//!
//! ## `BENCH_sim.json` schema (`schema_version` 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bench": "sim_core",
//!   "quick": false,
//!   "packet_len": 32,
//!   "seed": 7,
//!   "reps": 2,
//!   "results": [
//!     {
//!       "switches": 128, "ports": 8,
//!       "load": "low", "injection_rate": 0.002,
//!       "core": "active_set",
//!       "warmup_cycles": 1000, "measure_cycles": 8000,
//!       "total_cycles": 9000, "wall_seconds": 0.0042,
//!       "cycles_per_sec": 2142857.1,
//!       "flit_hops": 20816, "flit_hops_per_sec": 4956190.5,
//!       "packets_delivered": 638, "deadlocked": false
//!     }
//!   ],
//!   "speedups": [
//!     {
//!       "switches": 128, "ports": 8,
//!       "load": "low", "injection_rate": 0.002,
//!       "active_cycles_per_sec": 2142857.1,
//!       "dense_cycles_per_sec": 301003.3,
//!       "speedup": 7.12
//!     }
//!   ]
//! }
//! ```
//!
//! * `results` holds one entry per `(fabric, load, core)`; `wall_seconds`
//!   is the fastest of `reps` identical runs (same seed, so identical
//!   work), which filters scheduler noise.
//! * `flit_hops` is the number of inter-switch link traversals during the
//!   measurement window (`sum(channel_flits)`).
//! * `speedups` pairs the two cores per `(fabric, load)`:
//!   `speedup = active_cycles_per_sec / dense_cycles_per_sec`.

use irnet_bench::fixtures;
use irnet_bench::parse_args;
use irnet_sim::{EngineCore, SimConfig, SimStats, Simulator};
use serde::Serialize;
use std::time::Instant;

const USAGE: &str = "perf — simulator-core performance harness (BENCH_sim.json)

options:
  --quick        32-switch fabric only (CI-sized)
  --out PATH     output path (default BENCH_sim.json)
  --seed N       topology + simulation seed (default 7)
  --reps N       timed repetitions per point, fastest wins (default 2)
";

/// One timed `(fabric, load, core)` measurement.
#[derive(Serialize)]
struct CoreResult {
    switches: u32,
    ports: u32,
    load: String,
    injection_rate: f64,
    core: String,
    warmup_cycles: u32,
    measure_cycles: u32,
    total_cycles: u64,
    wall_seconds: f64,
    cycles_per_sec: f64,
    flit_hops: u64,
    flit_hops_per_sec: f64,
    packets_delivered: u64,
    deadlocked: bool,
}

/// Active-set vs dense-reference pairing for one `(fabric, load)`.
#[derive(Serialize)]
struct Speedup {
    switches: u32,
    ports: u32,
    load: String,
    injection_rate: f64,
    active_cycles_per_sec: f64,
    dense_cycles_per_sec: f64,
    speedup: f64,
}

/// The whole `BENCH_sim.json` document.
#[derive(Serialize)]
struct BenchReport {
    schema_version: u32,
    bench: String,
    quick: bool,
    packet_len: u32,
    seed: u64,
    reps: u32,
    results: Vec<CoreResult>,
    speedups: Vec<Speedup>,
}

/// Offered-load operating points (label, flits/node/clock).
const LOADS: [(&str, f64); 3] = [("low", 0.002), ("mid", 0.02), ("saturation", 0.5)];
const PACKET_LEN: u32 = 32;

fn core_label(core: EngineCore) -> &'static str {
    match core {
        EngineCore::ActiveSet => "active_set",
        EngineCore::DenseReference => "dense_reference",
    }
}

/// Measurement-window length per fabric size (larger fabrics get fewer
/// cycles so the dense reference stays affordable).
fn measure_cycles(switches: u32) -> u32 {
    match switches {
        0..=63 => 16_000,
        64..=255 => 8_000,
        _ => 4_000,
    }
}

fn time_run(fabric: &fixtures::Fabric, cfg: SimConfig, seed: u64, reps: u32) -> (f64, SimStats) {
    let cg = fabric.routing.comm_graph();
    let rt = fabric.routing.routing_tables();
    let mut best = f64::INFINITY;
    let mut stats = None;
    for _ in 0..reps.max(1) {
        let sim = Simulator::new(cg, rt, cfg, seed);
        let start = Instant::now();
        let s = sim.run();
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed < best {
            best = elapsed;
        }
        stats = Some(s);
    }
    (best, stats.expect("at least one rep"))
}

fn main() {
    let cli = parse_args(std::env::args(), USAGE);
    let quick = cli.flag("quick");
    let out_path = cli.opt("out").unwrap_or("BENCH_sim.json").to_string();
    let seed: u64 = cli.opt_parse("seed", 7);
    let reps: u32 = cli.opt_parse("reps", 2);

    let sizes: &[(u32, u32)] = if quick {
        &[(32, 8)]
    } else {
        &[(32, 8), (128, 8), (512, 8)]
    };

    let mut results = Vec::new();
    let mut speedups = Vec::new();
    for &(switches, ports) in sizes {
        eprintln!("building {switches}-switch/{ports}-port fabric...");
        let fabric = fixtures::downup_fabric(switches, ports, seed);
        for (load, rate) in LOADS {
            let cfg = SimConfig {
                packet_len: PACKET_LEN,
                injection_rate: rate,
                warmup_cycles: 1_000,
                measure_cycles: measure_cycles(switches),
                ..SimConfig::default()
            };
            let mut cps = [0.0f64; 2];
            for (k, core) in [EngineCore::ActiveSet, EngineCore::DenseReference]
                .into_iter()
                .enumerate()
            {
                let run_cfg = SimConfig {
                    engine_core: core,
                    ..cfg
                };
                let (wall, stats) = time_run(fabric, run_cfg, seed, reps);
                let total_cycles = cfg.total_cycles() as u64;
                let flit_hops: u64 = stats.channel_flits.iter().sum();
                let cycles_per_sec = total_cycles as f64 / wall;
                cps[k] = cycles_per_sec;
                eprintln!(
                    "  {switches}sw {load:>10} {:<15} {:>12.0} cycles/s  \
                     {:>12.0} flit-hops/s",
                    core_label(core),
                    cycles_per_sec,
                    flit_hops as f64 / wall,
                );
                results.push(CoreResult {
                    switches,
                    ports,
                    load: load.to_string(),
                    injection_rate: rate,
                    core: core_label(core).to_string(),
                    warmup_cycles: cfg.warmup_cycles,
                    measure_cycles: cfg.measure_cycles,
                    total_cycles,
                    wall_seconds: wall,
                    cycles_per_sec,
                    flit_hops,
                    flit_hops_per_sec: flit_hops as f64 / wall,
                    packets_delivered: stats.packets_delivered,
                    deadlocked: stats.deadlocked,
                });
            }
            speedups.push(Speedup {
                switches,
                ports,
                load: load.to_string(),
                injection_rate: rate,
                active_cycles_per_sec: cps[0],
                dense_cycles_per_sec: cps[1],
                speedup: cps[0] / cps[1],
            });
        }
    }

    for s in &speedups {
        println!(
            "{:>4} switches  {:>10} load  active/dense speedup: {:.2}x",
            s.switches, s.load, s.speedup
        );
    }

    let report = BenchReport {
        schema_version: 1,
        bench: "sim_core".to_string(),
        quick,
        packet_len: PACKET_LEN,
        seed,
        reps,
        results,
        speedups,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialization failed");
    std::fs::write(&out_path, json + "\n").expect("failed to write report");
    println!("wrote {out_path}");
}
