//! `flow_validate` — prediction-error harness for the flow-level backend.
//!
//! Runs both backends — the exact flit engine and the `irnet-flow`
//! decompose/cluster/generalize predictor — over the same offered-load
//! ladder on 32–512-switch fabrics, reports per-size saturation-throughput
//! and median-latency error plus the wall-clock speedup, and (under
//! `--quick` / `--enforce`) fails when the mean errors exceed the pinned
//! tolerances. `--huge N` demonstrates the flow backend alone on a fabric
//! the flit engine cannot reach (no routing tables are ever built; the
//! decomposition works from the Phase-1..3 artifacts).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p irnet-bench --bin flow_validate -- \
//!     [--quick] [--enforce] [--sizes 32,128,512] [--seed 7] \
//!     [--steps 8] [--huge 65536]
//! ```

use irnet_bench::parse_args;
use irnet_core::DownUp;
use irnet_flow::{predict, FlowConfig, FlowPredictor};
use irnet_metrics::{sweep, Algo};
use irnet_sim::{SimConfig, Simulator};
use irnet_telemetry::{Progress, ProgressMode, Telemetry};
use irnet_topology::{gen, PreorderPolicy};
use std::time::Instant;

const USAGE: &str = "flow_validate — flow-backend prediction-error harness

options:
  --quick        32/128-switch grid (CI-sized) and enforce tolerances
  --enforce      enforce tolerances on any grid
  --sizes LIST   comma-separated switch counts (default 32,64,128,256,512)
  --seed N       topology + simulation seed (default 7)
  --steps N      offered-load ladder steps (default 8)
  --huge N       also run an N-switch flow-only sweep point (no tables)
  --progress [human|json]  per-size progress lines / JSONL heartbeats
";

/// Pinned mean-error tolerances the CI `flow-smoke` job enforces (fraction
/// of the exact engine's value, averaged over the validated sizes).
pub const SAT_TOLERANCE: f64 = 0.10;
/// Median-latency tolerance, over non-saturated ladder points.
pub const MEDIAN_TOLERANCE: f64 = 0.15;

const PORTS: u32 = 8;
const PACKET_LEN: u32 = 32;

fn measure_cycles(switches: u32) -> u32 {
    match switches {
        0..=63 => 16_000,
        64..=255 => 8_000,
        256..=1023 => 4_000,
        _ => 2_000,
    }
}

struct SizeResult {
    switches: u32,
    exact_sat: f64,
    flow_sat: f64,
    sat_err: f64,
    median_err: Option<f64>,
    exact_seconds: f64,
    exact_sat_point_seconds: f64,
    flow_seconds: f64,
    /// Marginal cost of one warm-cache query at the saturation point —
    /// the steady-state per-point cost of sweeping with the flow backend.
    warm_point_seconds: f64,
    cluster_count: usize,
    representative_sims: usize,
}

/// Validates one fabric size. When `check_caches` is set (the `--quick` /
/// `--enforce` paths), the predictor runs with a local telemetry registry
/// attached and this function asserts the cache counters it exposes are
/// live: representative sims ran, the warm re-query hit the per-signature
/// rep-sim cache, and the route-convolution cache recorded both misses
/// (first build) and hits (reuse).
fn validate_size(switches: u32, seed: u64, steps: usize, check_caches: bool) -> SizeResult {
    let topo = gen::random_irregular(gen::IrregularParams::paper(switches, PORTS), seed)
        .expect("topology generation failed");
    let inst = Algo::DownUp { release: true }
        .construct(&topo, PreorderPolicy::M1, seed)
        .expect("routing construction failed");
    let rates = sweep::default_rates(steps);
    let base = SimConfig {
        packet_len: PACKET_LEN,
        warmup_cycles: 1_000,
        measure_cycles: measure_cycles(switches),
        ..SimConfig::default()
    };

    // Exact backend: one flit run per ladder point, same per-point seed
    // discipline as `sweep::sweep`.
    let mut exact_sat = 0.0f64;
    let mut exact_sat_point_seconds = 0.0f64;
    let mut exact_medians: Vec<Option<f64>> = Vec::with_capacity(rates.len());
    let mut exact_accepted: Vec<f64> = Vec::with_capacity(rates.len());
    let exact_start = Instant::now();
    for (i, &rate) in rates.iter().enumerate() {
        let cfg = SimConfig {
            injection_rate: rate,
            ..base
        };
        let t = Instant::now();
        let stats = Simulator::new(&inst.cg, &inst.tables, cfg, sweep::point_seed(seed, i)).run();
        let wall = t.elapsed().as_secs_f64();
        let accepted = stats.accepted_traffic();
        if accepted > exact_sat {
            exact_sat = accepted;
            exact_sat_point_seconds = wall;
        }
        exact_accepted.push(accepted);
        exact_medians.push(stats.latency_quantile(0.5).map(f64::from));
    }
    let exact_seconds = exact_start.elapsed().as_secs_f64();

    // Flow backend: build the predictor once, query the whole ladder.
    let cfg = FlowConfig::default();
    let tel = Telemetry::enabled();
    let flow_start = Instant::now();
    let mut pred = FlowPredictor::build_instrumented(
        &topo,
        &inst.tree,
        &inst.cg,
        &inst.table,
        &base,
        seed,
        &cfg,
        &tel,
    );
    let curve = pred.curve(&rates);
    let flow_seconds = flow_start.elapsed().as_secs_f64();
    let flow_sat = curve.max_throughput();

    // Steady-state marginal cost: re-query fresh operating points around
    // the saturation knee with the signature cache warm (this is what one
    // more sweep point costs once the predictor exists; any signature the
    // ladder has not yet covered still runs its sim and is charged here).
    let sat = pred.saturation();
    let warm_rates = [0.97 * sat, sat, 1.03 * sat];
    let warm_start = Instant::now();
    for r in warm_rates {
        let _ = pred.point(r);
    }
    let warm_point_seconds = warm_start.elapsed().as_secs_f64() / warm_rates.len() as f64;

    if check_caches {
        let snap = tel.snapshot();
        let cnt = |name: &str| snap.counter(name).unwrap_or(0);
        assert!(
            cnt("flow/rep_sims") > 0,
            "{switches}sw: no representative sims reached the registry"
        );
        assert!(
            cnt("flow/rep_sim_cache_hits") > 0,
            "{switches}sw: warm re-query never hit the per-signature rep-sim cache"
        );
        assert!(
            cnt("flow/route_cache_misses") > 0,
            "{switches}sw: route-convolution cache recorded no misses"
        );
        assert!(
            cnt("flow/route_cache_hits") > 0,
            "{switches}sw: route-convolution cache recorded no hits"
        );
        // The registry view and the predictor's own accessors are two
        // reads of the same events; they must agree exactly.
        assert_eq!(
            cnt("flow/rep_sim_cache_hits"),
            pred.rep_sim_cache_hits() as u64
        );
        assert_eq!(cnt("flow/route_cache_hits"), pred.route_cache_hits() as u64);
        assert_eq!(
            cnt("flow/route_cache_misses"),
            pred.route_cache_misses() as u64
        );
    }

    let sat_err = (flow_sat - exact_sat).abs() / exact_sat.max(1e-12);

    // Median-latency error over clearly non-saturated ladder points (the
    // saturated regime has no stable latency to compare against).
    let mut errs = Vec::new();
    for (i, &rate) in rates.iter().enumerate() {
        if rate > 0.7 * exact_sat {
            continue;
        }
        if let Some(em) = exact_medians[i] {
            let fm = curve.points[i].median_latency;
            errs.push((fm - em).abs() / em.max(1.0));
        }
    }
    let median_err = if errs.is_empty() {
        None
    } else {
        Some(errs.iter().sum::<f64>() / errs.len() as f64)
    };

    SizeResult {
        switches,
        exact_sat,
        flow_sat,
        sat_err,
        median_err,
        exact_seconds,
        exact_sat_point_seconds,
        flow_seconds,
        warm_point_seconds,
        cluster_count: curve.cluster_count,
        representative_sims: curve.representative_sims,
    }
}

fn run_huge(switches: u32, seed: u64) {
    println!("--- huge fabric demo: {switches} switches (flow backend only) ---");
    let t0 = Instant::now();
    let topo = gen::random_irregular(gen::IrregularParams::paper(switches, PORTS), seed)
        .expect("topology generation failed");
    println!(
        "  topology: {} switches / {} links in {:.1}s",
        topo.num_nodes(),
        topo.num_links(),
        t0.elapsed().as_secs_f64()
    );
    let t1 = Instant::now();
    let (tree, cg, table, _released) = DownUp::new()
        .construct_phases(&topo)
        .expect("phase construction failed");
    println!(
        "  phases 1-3 (no routing tables): {:.1}s, {} channels",
        t1.elapsed().as_secs_f64(),
        cg.num_channels()
    );
    let base = SimConfig {
        packet_len: PACKET_LEN,
        ..SimConfig::default()
    };
    let rates = [0.1f64];
    let t2 = Instant::now();
    let curve = predict(
        &topo,
        &tree,
        &cg,
        &table,
        &base,
        &rates,
        seed,
        &FlowConfig::default(),
    );
    let predict_seconds = t2.elapsed().as_secs_f64();
    let p = &curve.points[0];
    println!(
        "  predict: {predict_seconds:.1}s  ({} dests sampled, {} clusters, {} rep sims)",
        curve.dests_sampled, curve.cluster_count, curve.representative_sims
    );
    println!(
        "  point @ offered {:.3}: accepted {:.4}  median {:.1}  p99 {:.1}  \
         saturation {:.4}{}",
        p.offered,
        p.accepted,
        p.median_latency,
        p.p99_latency,
        curve.sat_throughput,
        if p.saturated { "  [saturated]" } else { "" }
    );
    println!("  total end-to-end: {:.1}s", t0.elapsed().as_secs_f64());
}

fn main() {
    let cli = parse_args(std::env::args(), USAGE);
    let quick = cli.flag("quick");
    let enforce = quick || cli.flag("enforce");
    let seed: u64 = cli.opt_parse("seed", 7);
    let steps: usize = cli.opt_parse("steps", 8);
    let default_sizes: &[u32] = if quick {
        &[32, 128]
    } else {
        &[32, 64, 128, 256, 512]
    };
    let sizes: Vec<u32> = cli.opt_list("sizes", default_sizes);
    let progress = (cli.flag("progress") || cli.opt("progress").is_some()).then(|| {
        let mode = cli.opt("progress").map_or(ProgressMode::Human, |raw| {
            ProgressMode::parse(raw).unwrap_or_else(|| {
                eprintln!("unknown progress mode {raw:?} (expected human or json)");
                std::process::exit(2);
            })
        });
        Progress::new("flow_validate", sizes.len(), mode).unit("sizes")
    });

    println!("backend: flow vs flit  (seed {seed}, {steps}-step ladder, {PORTS} ports)");
    println!(
        "{:>6} {:>10} {:>10} {:>8} {:>8} {:>9} {:>9} {:>9} {:>6} {:>5}",
        "size",
        "exact_sat",
        "flow_sat",
        "sat_err",
        "med_err",
        "exact_s",
        "flow_s",
        "satpt_s",
        "clus",
        "sims"
    );
    let mut results = Vec::new();
    for (i, &sw) in sizes.iter().enumerate() {
        let r = validate_size(sw, seed, steps, enforce);
        if let Some(p) = &progress {
            p.tick(i + 1);
        }
        println!(
            "{:>6} {:>10.4} {:>10.4} {:>7.1}% {:>7} {:>9.3} {:>9.3} {:>9.3} {:>6} {:>5}",
            r.switches,
            r.exact_sat,
            r.flow_sat,
            r.sat_err * 100.0,
            r.median_err
                .map_or_else(|| "-".to_string(), |e| format!("{:.1}%", e * 100.0)),
            r.exact_seconds,
            r.flow_seconds,
            r.exact_sat_point_seconds,
            r.cluster_count,
            r.representative_sims,
        );
        results.push(r);
    }

    let mean_sat_err = results.iter().map(|r| r.sat_err).sum::<f64>() / results.len() as f64;
    let med_errs: Vec<f64> = results.iter().filter_map(|r| r.median_err).collect();
    let mean_median_err = med_errs.iter().sum::<f64>() / med_errs.len().max(1) as f64;
    let total_exact: f64 = results.iter().map(|r| r.exact_seconds).sum();
    let total_flow: f64 = results.iter().map(|r| r.flow_seconds).sum();
    println!(
        "mean saturation error {:.1}% (tolerance {:.0}%)  mean median-latency error {:.1}% \
         (tolerance {:.0}%)",
        mean_sat_err * 100.0,
        SAT_TOLERANCE * 100.0,
        mean_median_err * 100.0,
        MEDIAN_TOLERANCE * 100.0
    );
    println!(
        "whole-grid wall: exact {total_exact:.2}s  flow {total_flow:.2}s  ({:.1}x)",
        total_exact / total_flow.max(1e-9)
    );
    if let Some(r) = results.iter().find(|r| r.switches == 512) {
        // Steady-state sweeping: each additional flow point is clustering
        // + cached convolution, vs one full flit run for the exact engine.
        println!(
            "512-switch saturation point: exact {:.3}s/point  flow (warm) {:.5}s/point  ({:.0}x)",
            r.exact_sat_point_seconds,
            r.warm_point_seconds,
            r.exact_sat_point_seconds / r.warm_point_seconds.max(1e-9)
        );
    }

    if let Some(h) = cli.opt("huge") {
        let n: u32 = h.parse().unwrap_or(65_536);
        run_huge(n, seed);
    }

    if enforce {
        let mut failed = false;
        if mean_sat_err > SAT_TOLERANCE {
            eprintln!(
                "FAIL: mean saturation-throughput error {:.1}% exceeds the pinned {:.0}% tolerance",
                mean_sat_err * 100.0,
                SAT_TOLERANCE * 100.0
            );
            failed = true;
        }
        if !med_errs.is_empty() && mean_median_err > MEDIAN_TOLERANCE {
            eprintln!(
                "FAIL: mean median-latency error {:.1}% exceeds the pinned {:.0}% tolerance",
                mean_median_err * 100.0,
                MEDIAN_TOLERANCE * 100.0
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!("tolerances met");
    }
}
