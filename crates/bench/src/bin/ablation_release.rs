//! Ablation A1: how much does the Phase-3 `cycle_detection` release pass
//! buy? Compares DOWN/UP with and without the release (and L-turn with and
//! without its release pass) on route quality and saturation throughput.
//!
//! Usage: `ablation_release [--quick|--full] [--samples N] ...`

use irnet_bench::{parse_args, run_grid, ExperimentConfig};
use irnet_metrics::report::TextTable;
use irnet_metrics::Algo;
use irnet_topology::{gen, PreorderPolicy};

const USAGE: &str = "ablation_release — Phase-3 release on/off (A1)
options: same as fig8 (see `fig8 --help`)";

fn main() {
    let cli = parse_args(std::env::args(), USAGE);
    let mut cfg = ExperimentConfig::from_cli(&cli);
    cfg.algos = vec![
        Algo::DownUp { release: false },
        Algo::DownUp { release: true },
        Algo::LTurn { release: false },
        Algo::LTurn { release: true },
    ];

    // Static route-quality comparison (no simulation): released turns and
    // average route length.
    let mut static_table = TextTable::new(&[
        "algorithm",
        "avg prohibited pairs",
        "avg route len",
        "max route len",
    ]);
    for &algo in &cfg.algos {
        let mut prohibited = 0.0;
        let mut avg_len = 0.0;
        let mut max_len = 0u16;
        for s in 0..cfg.samples {
            let topo = gen::random_irregular(
                gen::IrregularParams::paper(cfg.num_switches, cfg.ports[0]),
                cfg.topo_seed + s as u64,
            )
            .unwrap();
            let inst = algo.construct(&topo, PreorderPolicy::M1, 0).unwrap();
            prohibited += inst.table.num_prohibited_turns(&inst.cg) as f64;
            avg_len += inst.tables.avg_route_len(&inst.cg);
            max_len = max_len.max(inst.tables.max_route_len(&inst.cg));
        }
        static_table.row(vec![
            algo.to_string(),
            format!("{:.1}", prohibited / cfg.samples as f64),
            format!("{:.3}", avg_len / cfg.samples as f64),
            max_len.to_string(),
        ]);
    }
    println!(
        "\nRoute quality, {} switches / {}-port, {} samples:\n",
        cfg.num_switches, cfg.ports[0], cfg.samples
    );
    println!("{}", static_table.render());

    // Dynamic comparison at saturation.
    let results = run_grid(&cfg);
    let mut dyn_table = TextTable::new(&[
        "ports",
        "algorithm",
        "max throughput",
        "latency @ sat",
        "hot spot %",
    ]);
    for &ports in &cfg.ports {
        for &algo in &cfg.algos {
            let m = results
                .cell(ports, cfg.policies[0], algo)
                .unwrap()
                .saturation;
            dyn_table.row(vec![
                ports.to_string(),
                algo.to_string(),
                format!("{:.4}", m.accepted_traffic),
                format!("{:.0}", m.avg_latency),
                format!("{:.1}", m.hot_spot_degree),
            ]);
        }
    }
    println!("At maximal throughput ({}):\n", cfg.policies[0]);
    println!("{}", dyn_table.render());
}
