//! Ablation A6: virtual channels. The paper notes the DOWN/UP routing
//! "can be directly applied to arbitrary topology with (or without) any
//! virtual channel"; this ablation measures what 2 and 4 VCs per physical
//! channel buy both algorithms.
//!
//! Usage: `ablation_vc [--quick|--full] [--samples N] ...`

use irnet_bench::{parse_args, run_grid, ExperimentConfig};
use irnet_metrics::report::TextTable;

const USAGE: &str = "ablation_vc — virtual-channel sweep (A6)
options: same as fig8 (see `fig8 --help`)";

fn main() {
    let cli = parse_args(std::env::args(), USAGE);
    let base = ExperimentConfig::from_cli(&cli);

    let mut table = TextTable::new(&[
        "virtual channels",
        "L-turn thpt",
        "L-turn lat @ sat",
        "DOWN/UP thpt",
        "DOWN/UP lat @ sat",
    ]);
    for vcs in [1u32, 2, 4] {
        let mut cfg = base.clone();
        cfg.sim.virtual_channels = vcs;
        let results = run_grid(&cfg);
        let l = results
            .cell(cfg.ports[0], cfg.policies[0], cfg.algos[0])
            .unwrap()
            .saturation;
        let d = results
            .cell(cfg.ports[0], cfg.policies[0], cfg.algos[1])
            .unwrap()
            .saturation;
        table.row(vec![
            vcs.to_string(),
            format!("{:.4}", l.accepted_traffic),
            format!("{:.0}", l.avg_latency),
            format!("{:.4}", d.accepted_traffic),
            format!("{:.0}", d.avg_latency),
        ]);
    }
    println!(
        "\nVirtual-channel sweep ({} switches, {}-port, {} samples):\n",
        base.num_switches, base.ports[0], base.samples
    );
    println!("{}", table.render());
}
