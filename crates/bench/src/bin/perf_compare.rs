//! `perf_compare` — diff two `BENCH_sim.json` reports (see the `perf` bin
//! for the schema) and flag throughput regressions.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p irnet-bench --bin perf_compare -- \
//!     --old prev/BENCH_sim.json --new BENCH_sim.json [--threshold 20]
//! ```
//!
//! Results are matched by `(switches, ports, load, core)`; for each pair
//! the relative change in `cycles_per_sec` is printed, and any drop larger
//! than the threshold (percent, default 20) is called out as a WARNING.
//! When both reports carry a `construction` array (schema v2), the
//! construction times are diffed the same way, matched by
//! `(switches, ports)`; a v1 report (no such array) still compares
//! cleanly against a v2 one — the construction diff is just skipped.
//! Likewise the `repair` array (schema v4) is matched by
//! `(switches, ports, strategy)` on `total_seconds`, warning on
//! *increases*, and the `flow` array (schema v5) by `(switches, ports)`
//! on `predict_seconds` and `warm_point_seconds` — each skipped when
//! either report predates it.
//!
//! The comparator is **report-only**: it always exits 0 on a successful
//! comparison, so noisy CI runners cannot fail the build — the warnings are
//! for humans reading the job log. Only unreadable/invalid input files are
//! hard errors (exit 1), plus one semantic guard: reports whose `backend`
//! tags differ (schema v5; absent = `"flit"`) measure different engines,
//! so diffing them is meaningless and the comparison is refused.

use irnet_bench::parse_args;
use serde::Value;

const USAGE: &str = "perf_compare — diff two BENCH_sim.json reports (report-only)

options:
  --old PATH       previous report (required)
  --new PATH       current report (required)
  --threshold PCT  warn when cycles/sec drops by more than PCT (default 20)
";

/// One comparable measurement, keyed by `(switches, ports, load, core)`.
struct Entry {
    key: (u64, u64, String, String),
    cycles_per_sec: f64,
    deadlocked: bool,
}

/// One comparable construction timing (schema v2+), keyed by
/// `(switches, ports)`.
struct BuildEntry {
    key: (u64, u64),
    construct_seconds: f64,
}

/// One comparable single-fault repair timing (schema v4+), keyed by
/// `(switches, ports, strategy)`.
struct RepairEntry {
    key: (u64, u64, String),
    total_seconds: f64,
}

/// One comparable flow-backend timing (schema v5+), keyed by
/// `(switches, ports)`.
struct FlowEntry {
    key: (u64, u64),
    predict_seconds: f64,
    warm_point_seconds: f64,
}

/// Everything one report contributes to the diff.
struct Loaded {
    /// Engine behind the report's timings (`"flit"` before schema v5).
    backend: String,
    entries: Vec<Entry>,
    builds: Vec<BuildEntry>,
    repairs: Vec<RepairEntry>,
    flows: Vec<FlowEntry>,
}

fn load_entries(path: &str) -> Result<Loaded, String> {
    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc: Value =
        serde_json::from_str(&raw).map_err(|e| format!("invalid JSON in {path}: {e}"))?;
    let results = doc
        .get("results")
        .and_then(Value::as_seq)
        .ok_or_else(|| format!("{path}: no `results` array (not a BENCH_sim.json report?)"))?;
    let num = |v: &Value, k: &str| -> Result<f64, String> {
        match v.get(k) {
            Some(Value::F64(x)) => Ok(*x),
            Some(Value::U64(x)) => Ok(*x as f64),
            Some(Value::I64(x)) => Ok(*x as f64),
            _ => Err(format!("{path}: result entry missing numeric `{k}`")),
        }
    };
    let text = |v: &Value, k: &str| -> Result<String, String> {
        match v.get(k) {
            Some(Value::Str(s)) => Ok(s.clone()),
            _ => Err(format!("{path}: result entry missing string `{k}`")),
        }
    };
    let entries: Vec<Entry> = results
        .iter()
        .map(|r| {
            Ok(Entry {
                key: (
                    num(r, "switches")? as u64,
                    num(r, "ports")? as u64,
                    text(r, "load")?,
                    text(r, "core")?,
                ),
                cycles_per_sec: num(r, "cycles_per_sec")?,
                deadlocked: matches!(r.get("deadlocked"), Some(Value::Bool(true))),
            })
        })
        .collect::<Result<_, String>>()?;
    // Schema v1 reports have no `construction` array; treat it as empty so
    // old and new reports of different schema versions still compare.
    let builds: Vec<BuildEntry> = match doc.get("construction").and_then(Value::as_seq) {
        Some(seq) => seq
            .iter()
            .map(|r| {
                Ok(BuildEntry {
                    key: (num(r, "switches")? as u64, num(r, "ports")? as u64),
                    construct_seconds: num(r, "construct_seconds")?,
                })
            })
            .collect::<Result<_, String>>()?,
        None => Vec::new(),
    };
    // Same leniency for the schema v4 `repair` array.
    let repairs: Vec<RepairEntry> = match doc.get("repair").and_then(Value::as_seq) {
        Some(seq) => seq
            .iter()
            .map(|r| {
                Ok(RepairEntry {
                    key: (
                        num(r, "switches")? as u64,
                        num(r, "ports")? as u64,
                        text(r, "strategy")?,
                    ),
                    total_seconds: num(r, "total_seconds")?,
                })
            })
            .collect::<Result<_, String>>()?,
        None => Vec::new(),
    };
    // ... and for the schema v5 `flow` array.
    let flows: Vec<FlowEntry> = match doc.get("flow").and_then(Value::as_seq) {
        Some(seq) => seq
            .iter()
            .map(|r| {
                Ok(FlowEntry {
                    key: (num(r, "switches")? as u64, num(r, "ports")? as u64),
                    predict_seconds: num(r, "predict_seconds")?,
                    warm_point_seconds: num(r, "warm_point_seconds")?,
                })
            })
            .collect::<Result<_, String>>()?,
        None => Vec::new(),
    };
    // Reports older than schema v5 have no `backend` tag; they were all
    // produced by the exact flit engine.
    let backend = match doc.get("backend") {
        Some(Value::Str(s)) => s.clone(),
        None => "flit".to_string(),
        Some(_) => return Err(format!("{path}: `backend` is not a string")),
    };
    Ok(Loaded {
        backend,
        entries,
        builds,
        repairs,
        flows,
    })
}

fn run() -> Result<(), String> {
    let cli = parse_args(std::env::args(), USAGE);
    let old_path = cli
        .opt("old")
        .ok_or_else(|| "--old PATH is required".to_string())?
        .to_string();
    let new_path = cli
        .opt("new")
        .ok_or_else(|| "--new PATH is required".to_string())?
        .to_string();
    let threshold: f64 = cli.opt_parse("threshold", 20.0);

    let old_report = load_entries(&old_path)?;
    let new_report = load_entries(&new_path)?;
    // Timings from different backends (exact flit engine vs flow-level
    // predictor) are not comparable; refuse rather than print a
    // meaningless diff.
    if old_report.backend != new_report.backend {
        return Err(format!(
            "backend mismatch: {old_path} was measured with the `{}` backend but \
             {new_path} with `{}` — refusing to compare reports from different backends",
            old_report.backend, new_report.backend
        ));
    }
    let (old, old_builds, old_repairs, old_flows) = (
        old_report.entries,
        old_report.builds,
        old_report.repairs,
        old_report.flows,
    );
    let (new, new_builds, new_repairs, new_flows) = (
        new_report.entries,
        new_report.builds,
        new_report.repairs,
        new_report.flows,
    );

    let mut compared = 0u32;
    let mut warnings = 0u32;
    let mut only_new: Vec<&Entry> = Vec::new();
    println!("switches ports       load            core      old c/s      new c/s   change");
    for e in &new {
        let Some(prev) = old.iter().find(|o| o.key == e.key) else {
            only_new.push(e);
            continue;
        };
        compared += 1;
        let change = if prev.cycles_per_sec > 0.0 {
            100.0 * (e.cycles_per_sec - prev.cycles_per_sec) / prev.cycles_per_sec
        } else {
            0.0
        };
        let mark = if change < -threshold {
            "  << WARNING"
        } else {
            ""
        };
        println!(
            "{:>8} {:>5} {:>10} {:>15} {:>12.0} {:>12.0} {:>+7.1}%{mark}",
            e.key.0, e.key.1, e.key.2, e.key.3, prev.cycles_per_sec, e.cycles_per_sec, change
        );
        if change < -threshold {
            warnings += 1;
            eprintln!(
                "WARNING: {}sw/{}p {} {}: cycles/sec dropped {:.1}% \
                 ({:.0} -> {:.0}, threshold {threshold}%)",
                e.key.0, e.key.1, e.key.2, e.key.3, -change, prev.cycles_per_sec, e.cycles_per_sec
            );
        }
        if e.deadlocked && !prev.deadlocked {
            warnings += 1;
            eprintln!(
                "WARNING: {}sw/{}p {} {}: run deadlocks now but did not before",
                e.key.0, e.key.1, e.key.2, e.key.3
            );
        }
    }
    // A key present in only one report is never silently dropped: each
    // missing point is listed by its full (switches, ports, load, core)
    // key, in both directions, so a truncated run (e.g. --quick against a
    // full sweep) is visible in the log instead of shrinking the diff.
    if !only_new.is_empty() {
        println!("result(s) only in {new_path} (no old baseline):");
        for e in &only_new {
            println!("  {}sw/{}p {} {}", e.key.0, e.key.1, e.key.2, e.key.3);
        }
    }
    let only_old: Vec<&Entry> = old
        .iter()
        .filter(|o| !new.iter().any(|e| e.key == o.key))
        .collect();
    if !only_old.is_empty() {
        println!("result(s) only in {old_path} (dropped from the new report):");
        for e in &only_old {
            println!("  {}sw/{}p {} {}", e.key.0, e.key.1, e.key.2, e.key.3);
        }
    }
    // Construction-time diff (schema v2+). Slower construction is a
    // regression, so here the warning fires on *increases*.
    let mut only_new_builds: Vec<&BuildEntry> = Vec::new();
    if !old_builds.is_empty() && !new_builds.is_empty() {
        println!("switches ports   old construct   new construct   change");
        for b in &new_builds {
            let Some(prev) = old_builds.iter().find(|o| o.key == b.key) else {
                only_new_builds.push(b);
                continue;
            };
            compared += 1;
            let change = if prev.construct_seconds > 0.0 {
                100.0 * (b.construct_seconds - prev.construct_seconds) / prev.construct_seconds
            } else {
                0.0
            };
            let mark = if change > threshold {
                "  << WARNING"
            } else {
                ""
            };
            println!(
                "{:>8} {:>5} {:>14.4}s {:>14.4}s {:>+7.1}%{mark}",
                b.key.0, b.key.1, prev.construct_seconds, b.construct_seconds, change
            );
            if change > threshold {
                warnings += 1;
                eprintln!(
                    "WARNING: {}sw/{}p: construction time grew {change:.1}% \
                     ({:.4}s -> {:.4}s, threshold {threshold}%)",
                    b.key.0, b.key.1, prev.construct_seconds, b.construct_seconds
                );
            }
        }
        if !only_new_builds.is_empty() {
            println!("construction entr(ies) only in {new_path} (no old baseline):");
            for b in &only_new_builds {
                println!("  {}sw/{}p", b.key.0, b.key.1);
            }
        }
        let only_old_builds: Vec<&BuildEntry> = old_builds
            .iter()
            .filter(|o| !new_builds.iter().any(|b| b.key == o.key))
            .collect();
        if !only_old_builds.is_empty() {
            println!("construction entr(ies) only in {old_path} (dropped from the new report):");
            for b in &only_old_builds {
                println!("  {}sw/{}p", b.key.0, b.key.1);
            }
        }
    }
    // Single-fault repair diff (schema v4+). As with construction, slower
    // repair is the regression, so the warning fires on *increases*.
    if !old_repairs.is_empty() && !new_repairs.is_empty() {
        println!("switches ports     strategy      old repair      new repair   change");
        for r in &new_repairs {
            let Some(prev) = old_repairs.iter().find(|o| o.key == r.key) else {
                println!(
                    "  {}sw/{}p {} only in {new_path} (no old baseline)",
                    r.key.0, r.key.1, r.key.2
                );
                continue;
            };
            compared += 1;
            let change = if prev.total_seconds > 0.0 {
                100.0 * (r.total_seconds - prev.total_seconds) / prev.total_seconds
            } else {
                0.0
            };
            let mark = if change > threshold {
                "  << WARNING"
            } else {
                ""
            };
            println!(
                "{:>8} {:>5} {:>12} {:>14.4}s {:>14.4}s {:>+7.1}%{mark}",
                r.key.0, r.key.1, r.key.2, prev.total_seconds, r.total_seconds, change
            );
            if change > threshold {
                warnings += 1;
                eprintln!(
                    "WARNING: {}sw/{}p {}: repair time grew {change:.1}% \
                     ({:.4}s -> {:.4}s, threshold {threshold}%)",
                    r.key.0, r.key.1, r.key.2, prev.total_seconds, r.total_seconds
                );
            }
        }
        let only_old_repairs: Vec<&RepairEntry> = old_repairs
            .iter()
            .filter(|o| !new_repairs.iter().any(|r| r.key == o.key))
            .collect();
        if !only_old_repairs.is_empty() {
            println!("repair entr(ies) only in {old_path} (dropped from the new report):");
            for r in &only_old_repairs {
                println!("  {}sw/{}p {}", r.key.0, r.key.1, r.key.2);
            }
        }
    }
    // Flow-backend diff (schema v5+). Both the one-off prediction cost and
    // the warm per-point cost are "smaller is better", so warnings fire on
    // *increases*; skipped entirely when either report predates the array.
    if !old_flows.is_empty() && !new_flows.is_empty() {
        println!("switches ports     old predict     new predict   change       old warm       new warm   change");
        for f in &new_flows {
            let Some(prev) = old_flows.iter().find(|o| o.key == f.key) else {
                println!(
                    "  {}sw/{}p flow entry only in {new_path} (no old baseline)",
                    f.key.0, f.key.1
                );
                continue;
            };
            compared += 1;
            let pct = |old: f64, new: f64| {
                if old > 0.0 {
                    100.0 * (new - old) / old
                } else {
                    0.0
                }
            };
            let pchange = pct(prev.predict_seconds, f.predict_seconds);
            let wchange = pct(prev.warm_point_seconds, f.warm_point_seconds);
            let mark = if pchange > threshold || wchange > threshold {
                "  << WARNING"
            } else {
                ""
            };
            println!(
                "{:>8} {:>5} {:>14.4}s {:>14.4}s {:>+7.1}% {:>13.6}s {:>13.6}s {:>+7.1}%{mark}",
                f.key.0,
                f.key.1,
                prev.predict_seconds,
                f.predict_seconds,
                pchange,
                prev.warm_point_seconds,
                f.warm_point_seconds,
                wchange
            );
            if pchange > threshold {
                warnings += 1;
                eprintln!(
                    "WARNING: {}sw/{}p: flow prediction time grew {pchange:.1}% \
                     ({:.4}s -> {:.4}s, threshold {threshold}%)",
                    f.key.0, f.key.1, prev.predict_seconds, f.predict_seconds
                );
            }
            if wchange > threshold {
                warnings += 1;
                eprintln!(
                    "WARNING: {}sw/{}p: flow warm-point time grew {wchange:.1}% \
                     ({:.6}s -> {:.6}s, threshold {threshold}%)",
                    f.key.0, f.key.1, prev.warm_point_seconds, f.warm_point_seconds
                );
            }
        }
        let only_old_flows: Vec<&FlowEntry> = old_flows
            .iter()
            .filter(|o| !new_flows.iter().any(|f| f.key == o.key))
            .collect();
        if !only_old_flows.is_empty() {
            println!("flow entr(ies) only in {old_path} (dropped from the new report):");
            for f in &only_old_flows {
                println!("  {}sw/{}p", f.key.0, f.key.1);
            }
        }
    }
    println!(
        "perf_compare: {compared} point(s) compared, {warnings} warning(s) \
         (report-only, not a gate)"
    );
    Ok(())
}

fn main() {
    if let Err(msg) = run() {
        eprintln!("perf_compare: {msg}");
        std::process::exit(1);
    }
}
