//! Ablation A9: topology-family sensitivity — fully random irregular
//! networks (the paper's setup) versus clustered rack-based fabrics and
//! sparse (half-filled) networks. Checks that DOWN/UP's advantage is not
//! specific to port-saturated random graphs.
//!
//! Usage: `ablation_topology [--quick|--full] [--samples N] ...`

use irnet_bench::{parse_args, ExperimentConfig};
use irnet_metrics::report::TextTable;
use irnet_metrics::sweep;
use irnet_metrics::Algo;
use irnet_topology::{gen, PreorderPolicy, Topology};

const USAGE: &str = "ablation_topology — random vs clustered vs sparse fabrics (A9)
options: same as fig8 (see `fig8 --help`)";

fn main() {
    let cli = parse_args(std::env::args(), USAGE);
    let cfg = ExperimentConfig::from_cli(&cli);
    let n = cfg.num_switches;
    let ports = cfg.ports[0];
    type Family<'a> = (&'a str, Box<dyn Fn(u64) -> Topology>);
    let families: Vec<Family> = vec![
        (
            "random (saturated)",
            Box::new(move |s| {
                gen::random_irregular(gen::IrregularParams::paper(n, ports), s).unwrap()
            }),
        ),
        (
            "random (half-filled)",
            Box::new(move |s| {
                gen::random_irregular(
                    gen::IrregularParams {
                        num_nodes: n,
                        ports,
                        fill: 0.5,
                    },
                    s,
                )
                .unwrap()
            }),
        ),
        (
            "clustered racks",
            Box::new(move |s| {
                let cluster_size = 8.min(n);
                gen::clustered(
                    gen::ClusteredParams {
                        clusters: (n / cluster_size).max(1),
                        cluster_size,
                        ports,
                        uplinks: 1,
                    },
                    s,
                )
                .unwrap()
            }),
        ),
    ];

    let mut table = TextTable::new(&[
        "family",
        "avg degree",
        "L-turn thpt",
        "DOWN/UP thpt",
        "DOWN/UP gain",
    ]);
    for (label, make) in families {
        let mut deg = 0.0;
        let mut thpt = [0.0f64; 2];
        for s in 0..cfg.samples {
            let topo = make(cfg.topo_seed + s as u64);
            deg += topo.avg_degree();
            for (i, &algo) in [
                Algo::LTurn { release: true },
                Algo::DownUp { release: true },
            ]
            .iter()
            .enumerate()
            {
                let inst = algo.construct(&topo, PreorderPolicy::M1, s as u64).unwrap();
                let curve = sweep::sweep(&inst, &cfg.sim, &cfg.rates, cfg.sim_seed + s as u64);
                thpt[i] += curve.max_throughput();
            }
        }
        let samples = cfg.samples as f64;
        table.row(vec![
            label.to_string(),
            format!("{:.2}", deg / samples),
            format!("{:.4}", thpt[0] / samples),
            format!("{:.4}", thpt[1] / samples),
            format!("{:+.1} %", 100.0 * (thpt[1] / thpt[0] - 1.0)),
        ]);
    }
    println!(
        "\nTopology-family sensitivity — {} switches, {}-port, {} samples:\n",
        n, ports, cfg.samples
    );
    println!("{}", table.render());
}
