//! Ablation A10: spanning-tree root selection. The paper roots every
//! coordinated tree at the smallest node id (§4.1, Step 2); rooting at a
//! graph center shortens the tree. This ablation measures what the choice
//! is worth for DOWN/UP.
//!
//! Usage: `ablation_root [--quick|--full] [--samples N] ...`

use irnet_bench::{parse_args, ExperimentConfig};
use irnet_core::DownUp;
use irnet_metrics::paper::PaperMetrics;
use irnet_metrics::report::TextTable;
use irnet_metrics::sweep;
use irnet_metrics::Instance;
use irnet_topology::{gen, RootPolicy};

const USAGE: &str = "ablation_root — smallest-id vs center spanning-tree root (A10)
options: same as fig8 (see `fig8 --help`)";

fn main() {
    let cli = parse_args(std::env::args(), USAGE);
    let cfg = ExperimentConfig::from_cli(&cli);

    let mut table = TextTable::new(&[
        "root policy",
        "tree depth",
        "avg hops",
        "max thpt",
        "hot spot %",
        "leaf util",
    ]);
    for (label, root) in [
        ("smallest id (paper)", RootPolicy::Smallest),
        ("center", RootPolicy::Center),
    ] {
        let mut depth = 0.0;
        let mut hops = 0.0;
        let mut sat = Vec::new();
        for s in 0..cfg.samples {
            let topo = gen::random_irregular(
                gen::IrregularParams::paper(cfg.num_switches, cfg.ports[0]),
                cfg.topo_seed + s as u64,
            )
            .unwrap();
            let routing = DownUp::new().root(root).construct(&topo).unwrap();
            let (tree, cg, tbl, tables) = routing.into_parts();
            depth += tree.max_level() as f64;
            hops += tables.avg_route_len(&cg);
            let inst = Instance {
                tree,
                cg,
                table: tbl,
                tables,
                spans: None,
            };
            let curve = sweep::sweep(&inst, &cfg.sim, &cfg.rates, cfg.sim_seed + s as u64);
            sat.push(curve.saturation().metrics);
        }
        let n = cfg.samples as f64;
        let m = PaperMetrics::mean(sat.iter());
        table.row(vec![
            label.to_string(),
            format!("{:.1}", depth / n),
            format!("{:.3}", hops / n),
            format!("{:.4}", m.accepted_traffic),
            format!("{:.1}", m.hot_spot_degree),
            format!("{:.4}", m.leaf_utilization),
        ]);
    }
    println!(
        "\nRoot-selection ablation (DOWN/UP, {} switches, {}-port, {} samples):\n",
        cfg.num_switches, cfg.ports[0], cfg.samples
    );
    println!("{}", table.render());
}
