//! Reproduces **Figure 8** of the paper: average message latency and
//! accepted traffic versus offered load for the L-turn and DOWN/UP
//! routings, per coordinated-tree policy (M1/M2/M3) and port configuration.
//!
//! Usage: `fig8 [--quick|--full] [--ports 4,8] [--samples N]
//!         [--rates r1,r2,...] [--threads N] [--out results]`

use irnet_bench::{parse_args, run_grid, ExperimentConfig};
use irnet_metrics::plot::LineChart;
use irnet_metrics::report::TextTable;

const USAGE: &str = "fig8 — reproduce Figure 8 (latency & accepted traffic vs offered load)
options:
  --quick | --full         preset size (default --quick)
  --switches N             switches per network
  --ports 4,8              port configurations
  --samples N              topologies per configuration
  --policies M1,M2,M3      coordinated-tree policies
  --rates r1,r2,...        offered-load ladder (flits/node/clock)
  --packet-len N           flits per packet
  --warmup N --measure N   simulation windows
  --threads N              worker threads (default: all cores)
  --chunk N                tasks claimed per steal (default: auto)
  --progress               grid progress (done/total, elapsed, ETA) on stderr
  --seed N                 base topology seed
  --out DIR                output directory (default results)";

fn main() {
    let cli = parse_args(std::env::args(), USAGE);
    let cfg = ExperimentConfig::from_cli(&cli);
    let out_dir = cli.opt("out").unwrap_or("results").to_string();
    eprintln!(
        "fig8: {} switches, ports {:?}, {} samples, {} policies, {} rates, {} threads",
        cfg.num_switches,
        cfg.ports,
        cfg.samples,
        cfg.policies.len(),
        cfg.rates.len(),
        cfg.threads
    );
    let results = run_grid(&cfg);

    let mut csv = TextTable::new(&[
        "ports",
        "policy",
        "algorithm",
        "offered",
        "avg_latency",
        "accepted_traffic",
    ]);
    for &ports in &cfg.ports {
        for &policy in &cfg.policies {
            let mut header: Vec<&str> = vec!["offered"];
            let mut labels = Vec::new();
            for &algo in &cfg.algos {
                labels.push(format!("{algo} latency"));
                labels.push(format!("{algo} accepted"));
            }
            header.extend(labels.iter().map(String::as_str));
            let mut table = TextTable::new(&header);
            for (i, &rate) in cfg.rates.iter().enumerate() {
                let mut row = vec![format!("{rate:.4}")];
                for &algo in &cfg.algos {
                    let cell = results.cell(ports, policy, algo).expect("cell exists");
                    let m = cell.points[i].metrics;
                    row.push(format!("{:.1}", m.avg_latency));
                    row.push(format!("{:.4}", m.accepted_traffic));
                    csv.row(vec![
                        ports.to_string(),
                        policy.to_string(),
                        algo.to_string(),
                        format!("{rate:.5}"),
                        format!("{:.3}", m.avg_latency),
                        format!("{:.6}", m.accepted_traffic),
                    ]);
                }
                table.row(row);
            }
            println!(
                "\nFigure 8 ({}-port, {}): latency [clocks] and accepted traffic \
                 [flits/clock/node] vs offered load",
                ports, policy
            );
            println!("{}", table.render());
        }
        // The paper's headline comparison: maximal throughput per cell.
        let mut summary = TextTable::new(&[
            "policy",
            "L-turn max thpt",
            "DOWN/UP max thpt",
            "DOWN/UP gain",
        ]);
        for &policy in &cfg.policies {
            let l = results
                .cell(ports, policy, cfg.algos[0])
                .unwrap()
                .throughput();
            let d = results
                .cell(ports, policy, cfg.algos[1])
                .unwrap()
                .throughput();
            summary.row(vec![
                policy.to_string(),
                format!("{l:.4}"),
                format!("{d:.4}"),
                format!("{:+.1} %", 100.0 * (d / l - 1.0)),
            ]);
        }
        println!("\nMaximal throughput summary ({}-port):", ports);
        println!("{}", summary.render());
    }

    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let path = format!("{out_dir}/fig8.csv");
    std::fs::write(&path, csv.to_csv()).expect("write csv");
    eprintln!("wrote {path}");

    // Figure 8 as SVG: one latency chart and one throughput chart per port
    // configuration, series per (policy, algorithm).
    for &ports in &cfg.ports {
        let mut lat = LineChart::new(
            &format!("Figure 8 ({ports}-port): average message latency"),
            "offered load [flits/clock/node]",
            "latency [clocks]",
        );
        let mut acc = LineChart::new(
            &format!("Figure 8 ({ports}-port): accepted traffic"),
            "offered load [flits/clock/node]",
            "accepted [flits/clock/node]",
        );
        for &policy in &cfg.policies {
            for &algo in &cfg.algos {
                let cell = results.cell(ports, policy, algo).expect("cell exists");
                let label = format!("{algo} {policy}");
                lat.add_series(
                    &label,
                    cell.points
                        .iter()
                        .map(|p| (p.offered, p.metrics.avg_latency)),
                );
                acc.add_series(
                    &label,
                    cell.points
                        .iter()
                        .map(|p| (p.offered, p.metrics.accepted_traffic)),
                );
            }
        }
        for (chart, kind) in [(lat, "latency"), (acc, "accepted")] {
            let path = format!("{out_dir}/fig8_{ports}port_{kind}.svg");
            std::fs::write(&path, chart.to_svg()).expect("write svg");
            eprintln!("wrote {path}");
        }
    }
}
