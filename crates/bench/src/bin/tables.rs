//! Reproduces **Tables 1–4** of the paper: node utilization, traffic load,
//! degree of hot spots, and leaf utilization, measured at each routing's
//! maximal throughput, averaged over the random topology samples.
//!
//! Layout matches the paper: one row per coordinated-tree policy
//! (M1/M2/M3), columns L-turn {4,8}-port then DOWN/UP {4,8}-port.
//!
//! Usage: `tables [--quick|--full] [--ports 4,8] [--samples N] ...`
//! (same options as `fig8`).

use irnet_bench::{parse_args, run_grid, ExperimentConfig, GridResults};
use irnet_metrics::paper::PaperMetrics;
use irnet_metrics::report::{fmt6, fmt_pct, TextTable};
use irnet_metrics::Algo;
use irnet_topology::PreorderPolicy;

const USAGE: &str = "tables — reproduce Tables 1-4 (metrics at maximal throughput)
options: same as fig8 (see `fig8 --help`); plus --out DIR";

fn paper_table(
    results: &GridResults,
    cfg: &ExperimentConfig,
    title: &str,
    better: &str,
    value: impl Fn(&PaperMetrics) -> String,
) -> String {
    let mut header = vec!["".to_string()];
    for &algo in &cfg.algos {
        for &ports in &cfg.ports {
            header.push(format!("{algo} {ports}-port"));
        }
    }
    let mut t = TextTable::new(&header.iter().map(String::as_str).collect::<Vec<_>>());
    for &policy in &cfg.policies {
        let mut row = vec![policy.to_string()];
        for &algo in &cfg.algos {
            for &ports in &cfg.ports {
                let cell = results.cell(ports, policy, algo).expect("cell exists");
                row.push(value(&cell.saturation));
            }
        }
        t.row(row);
    }
    format!("{title} ({better})\n{}", t.render())
}

fn main() {
    let cli = parse_args(std::env::args(), USAGE);
    let cfg = ExperimentConfig::from_cli(&cli);
    let out_dir = cli.opt("out").unwrap_or("results").to_string();
    eprintln!(
        "tables: {} switches, ports {:?}, {} samples, {} policies, {} threads",
        cfg.num_switches,
        cfg.ports,
        cfg.samples,
        cfg.policies.len(),
        cfg.threads
    );
    let results = run_grid(&cfg);

    println!(
        "\n{}",
        paper_table(
            &results,
            &cfg,
            "Table 1. Node utilization",
            "higher is better",
            |m| fmt6(m.node_utilization)
        )
    );
    println!(
        "{}",
        paper_table(
            &results,
            &cfg,
            "Table 2. Traffic load",
            "lower is better",
            |m| fmt6(m.traffic_load)
        )
    );
    println!(
        "{}",
        paper_table(
            &results,
            &cfg,
            "Table 3. Degree of hot spots",
            "lower is better",
            |m| fmt_pct(m.hot_spot_degree)
        )
    );
    println!(
        "{}",
        paper_table(
            &results,
            &cfg,
            "Table 4. Leaf utilization",
            "higher is better",
            |m| fmt6(m.leaf_utilization)
        )
    );

    // Shape check against the paper's qualitative claims (Remark 2):
    // DOWN/UP beats L-turn on every metric in every cell; M1 is the best
    // policy for both algorithms (Remark 1).
    let lturn = cfg
        .algos
        .iter()
        .copied()
        .find(|a| matches!(a, Algo::LTurn { .. }));
    let downup = cfg
        .algos
        .iter()
        .copied()
        .find(|a| matches!(a, Algo::DownUp { .. }));
    if let (Some(l), Some(d)) = (lturn, downup) {
        let mut wins = 0;
        let mut cells = 0;
        for &ports in &cfg.ports {
            for &policy in &cfg.policies {
                let lm = results.cell(ports, policy, l).unwrap().saturation;
                let dm = results.cell(ports, policy, d).unwrap().saturation;
                cells += 4;
                wins += (dm.node_utilization >= lm.node_utilization) as u32;
                wins += (dm.traffic_load <= lm.traffic_load) as u32;
                wins += (dm.hot_spot_degree <= lm.hot_spot_degree) as u32;
                wins += (dm.leaf_utilization >= lm.leaf_utilization) as u32;
            }
        }
        println!(
            "Shape check (paper Remark 2): DOWN/UP wins {wins}/{cells} metric cells vs L-turn"
        );
        if !cfg.policies.is_empty() && cfg.policies.len() == 3 {
            for &ports in &cfg.ports {
                for &algo in [l, d].iter() {
                    let m1 = results
                        .cell(ports, PreorderPolicy::M1, algo)
                        .unwrap()
                        .throughput();
                    let best = cfg
                        .policies
                        .iter()
                        .map(|&p| results.cell(ports, p, algo).unwrap().throughput())
                        .fold(f64::MIN, f64::max);
                    println!(
                        "Shape check (Remark 1): {algo} {ports}-port M1 throughput {m1:.4} \
                         (best of M1/M2/M3: {best:.4})"
                    );
                }
            }
        }
    }

    // CSV dump of every saturation metric.
    let mut csv = TextTable::new(&[
        "ports",
        "policy",
        "algorithm",
        "node_utilization",
        "traffic_load",
        "hot_spot_degree_pct",
        "leaf_utilization",
        "avg_latency",
        "max_throughput",
    ]);
    for &ports in &cfg.ports {
        for &policy in &cfg.policies {
            for &algo in &cfg.algos {
                let m = results.cell(ports, policy, algo).unwrap().saturation;
                csv.row(vec![
                    ports.to_string(),
                    policy.to_string(),
                    algo.to_string(),
                    fmt6(m.node_utilization),
                    fmt6(m.traffic_load),
                    format!("{:.3}", m.hot_spot_degree),
                    fmt6(m.leaf_utilization),
                    format!("{:.2}", m.avg_latency),
                    fmt6(m.accepted_traffic),
                ]);
            }
        }
    }
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let path = format!("{out_dir}/tables.csv");
    std::fs::write(&path, csv.to_csv()).expect("write csv");
    eprintln!("wrote {path}");
}
