//! Ablation A4: simulator-parameter sensitivity — buffer depth and packet
//! length. Confirms the DOWN/UP-vs-L-turn ordering is not an artifact of
//! one switch configuration.
//!
//! Usage: `ablation_sim [--quick|--full] [--samples N] ...`

use irnet_bench::{parse_args, run_grid, ExperimentConfig};
use irnet_metrics::report::TextTable;

const USAGE: &str = "ablation_sim — buffer-depth and packet-length sensitivity (A4)
options: same as fig8 (see `fig8 --help`)";

fn main() {
    let cli = parse_args(std::env::args(), USAGE);
    let base = ExperimentConfig::from_cli(&cli);

    let mut depth_table = TextTable::new(&[
        "buffer depth",
        "L-turn thpt",
        "DOWN/UP thpt",
        "DOWN/UP gain",
    ]);
    for depth in [1u32, 2, 4, 8] {
        let mut cfg = base.clone();
        cfg.sim.buffer_depth = depth;
        let results = run_grid(&cfg);
        let l = results
            .cell(cfg.ports[0], cfg.policies[0], cfg.algos[0])
            .unwrap()
            .throughput();
        let d = results
            .cell(cfg.ports[0], cfg.policies[0], cfg.algos[1])
            .unwrap()
            .throughput();
        depth_table.row(vec![
            depth.to_string(),
            format!("{l:.4}"),
            format!("{d:.4}"),
            format!("{:+.1} %", 100.0 * (d / l - 1.0)),
        ]);
    }
    println!(
        "\nBuffer-depth sweep ({} switches, {}-port):\n",
        base.num_switches, base.ports[0]
    );
    println!("{}", depth_table.render());

    let mut len_table =
        TextTable::new(&["packet len", "L-turn thpt", "DOWN/UP thpt", "DOWN/UP gain"]);
    for len in [16u32, 64, 128, 256] {
        let mut cfg = base.clone();
        cfg.sim.packet_len = len;
        let results = run_grid(&cfg);
        let l = results
            .cell(cfg.ports[0], cfg.policies[0], cfg.algos[0])
            .unwrap()
            .throughput();
        let d = results
            .cell(cfg.ports[0], cfg.policies[0], cfg.algos[1])
            .unwrap()
            .throughput();
        len_table.row(vec![
            len.to_string(),
            format!("{l:.4}"),
            format!("{d:.4}"),
            format!("{:+.1} %", 100.0 * (d / l - 1.0)),
        ]);
    }
    println!("\nPacket-length sweep:\n");
    println!("{}", len_table.render());
}
