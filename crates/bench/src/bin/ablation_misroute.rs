//! Ablation A12: non-minimal escape routing ("misrouting"). The paper
//! describes both algorithms as *non-minimal* adaptive but evaluates them
//! on shortest possible paths; this ablation measures what the non-minimal
//! option is worth: blocked headers may claim any turn-legal, non-dead-end
//! output after a patience threshold, with a bounded per-packet detour
//! budget.
//!
//! Usage: `ablation_misroute [--quick|--full] [--samples N] ...`

use irnet_bench::{parse_args, ExperimentConfig};
use irnet_metrics::paper::PaperMetrics;
use irnet_metrics::report::TextTable;
use irnet_metrics::sweep;
use irnet_metrics::Algo;
use irnet_sim::SimConfig;
use irnet_topology::{gen, PreorderPolicy};

const USAGE: &str = "ablation_misroute — minimal vs non-minimal escape routing (A12)
options: same as fig8 (see `fig8 --help`)";

fn main() {
    let cli = parse_args(std::env::args(), USAGE);
    let cfg = ExperimentConfig::from_cli(&cli);
    let variants: [(&str, Option<u32>, u32); 4] = [
        ("minimal only (paper)", None, 0),
        ("misroute after 2, budget 2", Some(2), 2),
        ("misroute after 8, budget 4", Some(8), 4),
        ("misroute after 32, budget 8", Some(32), 8),
    ];

    for algo in [
        Algo::LTurn { release: true },
        Algo::DownUp { release: true },
    ] {
        let mut table =
            TextTable::new(&["escape policy", "max thpt", "latency @ sat", "traffic load"]);
        for (label, patience, budget) in variants {
            let mut sat = Vec::new();
            for s in 0..cfg.samples {
                let topo = gen::random_irregular(
                    gen::IrregularParams::paper(cfg.num_switches, cfg.ports[0]),
                    cfg.topo_seed + s as u64,
                )
                .unwrap();
                let inst = algo.construct(&topo, PreorderPolicy::M1, s as u64).unwrap();
                let base = SimConfig {
                    misroute_patience: patience,
                    max_detours: budget,
                    ..cfg.sim
                };
                let curve = sweep::sweep(&inst, &base, &cfg.rates, cfg.sim_seed + s as u64);
                sat.push(curve.saturation().metrics);
            }
            let m = PaperMetrics::mean(sat.iter());
            table.row(vec![
                label.to_string(),
                format!("{:.4}", m.accepted_traffic),
                format!("{:.0}", m.avg_latency),
                format!("{:.4}", m.traffic_load),
            ]);
        }
        println!(
            "\nNon-minimal escape ablation — {algo}, {} switches, {}-port, {} samples:\n",
            cfg.num_switches, cfg.ports[0], cfg.samples
        );
        println!("{}", table.render());
    }
}
