//! Regenerates the paper's ADDG construction figures (Figures 3–6) as
//! Graphviz DOT files: one per Step 1–4 snapshot of the Phase-2
//! derivation, plus the complete direction graph for reference.
//!
//! Usage: `addg_figures [--out results]`

use irnet_bench::parse_args;
use irnet_core::phase2;
use irnet_topology::Direction;
use irnet_turns::DirGraph;

const USAGE: &str = "addg_figures — dump the ADDG derivation (Figures 3-6) as DOT
options:
  --out DIR    output directory (default results)";

fn main() {
    let cli = parse_args(std::env::args(), USAGE);
    let out_dir = cli.opt("out").unwrap_or("results").to_string();
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let labels: Vec<&str> = Direction::ALL.iter().map(|d| d.name()).collect();

    let complete = DirGraph::complete(Direction::COUNT);
    let path = format!("{out_dir}/addg_0_complete.dot");
    std::fs::write(&path, complete.to_dot("complete direction graph", &labels)).expect("write dot");
    println!("wrote {path} ({} turns)", complete.num_edges());

    for (i, (label, g)) in phase2::derivation_steps().into_iter().enumerate() {
        let path = format!("{out_dir}/addg_{}.dot", i + 1);
        std::fs::write(&path, g.to_dot(label, &labels)).expect("write dot");
        println!("wrote {path} — {label} ({} turns kept)", g.num_edges());
    }
    println!("render with e.g.: dot -Tsvg {out_dir}/addg_4.dot -o addg7.svg (Figure 6f)");
}
