//! Ablation A8: traffic sensitivity — destination patterns (uniform,
//! hotspot, bit-complement, opposite, local) and bursty (on/off) arrivals.
//! The paper evaluates only uniform Bernoulli traffic; this ablation checks
//! that the DOWN/UP-vs-L-turn ordering survives adversarial workloads, and
//! reports endpoint fairness.
//!
//! Usage: `ablation_traffic [--quick|--full] [--samples N] ...`

use irnet_bench::{parse_args, ExperimentConfig};
use irnet_metrics::fairness::FairnessReport;
use irnet_metrics::paper::PaperMetrics;
use irnet_metrics::report::TextTable;
use irnet_metrics::Algo;
use irnet_sim::{ArrivalProcess, SimConfig, Simulator, TrafficPattern};
use irnet_topology::{gen, PreorderPolicy};

const USAGE: &str = "ablation_traffic — traffic patterns and bursty arrivals (A8)
options: same as fig8 (see `fig8 --help`)";

fn main() {
    let cli = parse_args(std::env::args(), USAGE);
    let cfg = ExperimentConfig::from_cli(&cli);
    let workloads: Vec<(&str, TrafficPattern, ArrivalProcess)> = vec![
        (
            "uniform",
            TrafficPattern::Uniform,
            ArrivalProcess::Bernoulli,
        ),
        (
            "uniform bursty",
            TrafficPattern::Uniform,
            ArrivalProcess::OnOff {
                mean_burst: 200,
                burstiness: 4.0,
            },
        ),
        (
            "hotspot 20%",
            TrafficPattern::Hotspot {
                hot_node: 0,
                hot_fraction: 0.2,
            },
            ArrivalProcess::Bernoulli,
        ),
        (
            "bit-complement",
            TrafficPattern::BitComplement,
            ArrivalProcess::Bernoulli,
        ),
        (
            "opposite",
            TrafficPattern::Opposite,
            ArrivalProcess::Bernoulli,
        ),
        (
            "local r=4",
            TrafficPattern::Local { radius: 4 },
            ArrivalProcess::Bernoulli,
        ),
    ];

    let rate = cli.opt_parse("rate", 0.12f64);
    let mut table = TextTable::new(&[
        "workload",
        "L-turn acc",
        "L-turn lat",
        "DOWN/UP acc",
        "DOWN/UP lat",
        "DOWN/UP Jain",
    ]);
    for (label, pattern, arrivals) in workloads {
        let mut acc = [0.0f64; 2];
        let mut lat = [0.0f64; 2];
        let mut jain = 0.0f64;
        for s in 0..cfg.samples {
            let topo = gen::random_irregular(
                gen::IrregularParams::paper(cfg.num_switches, cfg.ports[0]),
                cfg.topo_seed + s as u64,
            )
            .unwrap();
            for (i, &algo) in [
                Algo::LTurn { release: true },
                Algo::DownUp { release: true },
            ]
            .iter()
            .enumerate()
            {
                let inst = algo.construct(&topo, PreorderPolicy::M1, s as u64).unwrap();
                let sim_cfg = SimConfig {
                    injection_rate: rate,
                    traffic: pattern,
                    arrivals,
                    ..cfg.sim
                };
                let stats =
                    Simulator::new(&inst.cg, &inst.tables, sim_cfg, cfg.sim_seed + s as u64).run();
                assert!(!stats.deadlocked, "{label}/{algo} deadlocked");
                let m = PaperMetrics::compute(&stats, &inst.cg, &inst.tree);
                acc[i] += m.accepted_traffic;
                lat[i] += m.avg_latency;
                if i == 1 {
                    jain += FairnessReport::compute(&stats).delivery_jain;
                }
            }
        }
        let n = cfg.samples as f64;
        table.row(vec![
            label.to_string(),
            format!("{:.4}", acc[0] / n),
            format!("{:.0}", lat[0] / n),
            format!("{:.4}", acc[1] / n),
            format!("{:.0}", lat[1] / n),
            format!("{:.3}", jain / n),
        ]);
    }
    println!(
        "\nTraffic sensitivity — {} switches, {}-port, {} samples, offered {:.2}:\n",
        cfg.num_switches, cfg.ports[0], cfg.samples, rate
    );
    println!("{}", table.render());
}
