//! Ablation A5: network-size sweep. The paper fixes 128 switches; this
//! ablation checks whether the DOWN/UP advantage persists from small to
//! larger fabrics, and tracks how routing-construction cost scales with
//! switch count (the sample-0 topology is timed for each size).
//!
//! Usage: `ablation_scale [--quick|--full] [--sizes 32,64,128,256] ...`

use irnet_bench::{parse_args, run_grid, ExperimentConfig};
use irnet_core::DownUp;
use irnet_metrics::report::TextTable;
use irnet_topology::gen;
use std::time::Instant;

const USAGE: &str = "ablation_scale — network-size sweep (A5)
options: same as fig8, plus --sizes n1,n2,...";

/// DOWN/UP construction time on the sample-0 topology for `n` switches.
fn construct_seconds(cfg: &ExperimentConfig, n: u32) -> f64 {
    let topo = gen::random_irregular(gen::IrregularParams::paper(n, cfg.ports[0]), cfg.topo_seed)
        .expect("topology generation failed");
    let start = Instant::now();
    let _ = DownUp::new()
        .construct(&topo)
        .expect("routing construction failed");
    start.elapsed().as_secs_f64()
}

fn main() {
    let cli = parse_args(std::env::args(), USAGE);
    let base = ExperimentConfig::from_cli(&cli);
    let sizes: Vec<u32> = cli.opt_list(
        "sizes",
        if cli.flag("full") {
            &[32, 64, 128, 256, 512, 1024][..]
        } else {
            &[16, 32, 64][..]
        },
    );

    let mut table = TextTable::new(&[
        "switches",
        "L-turn thpt",
        "DOWN/UP thpt",
        "DOWN/UP gain",
        "L-turn hot %",
        "DOWN/UP hot %",
        "construct",
    ]);
    for &n in &sizes {
        let mut cfg = base.clone();
        cfg.num_switches = n;
        let results = run_grid(&cfg);
        let l = results
            .cell(cfg.ports[0], cfg.policies[0], cfg.algos[0])
            .unwrap()
            .saturation;
        let d = results
            .cell(cfg.ports[0], cfg.policies[0], cfg.algos[1])
            .unwrap()
            .saturation;
        table.row(vec![
            n.to_string(),
            format!("{:.4}", l.accepted_traffic),
            format!("{:.4}", d.accepted_traffic),
            format!(
                "{:+.1} %",
                100.0 * (d.accepted_traffic / l.accepted_traffic - 1.0)
            ),
            format!("{:.1}", l.hot_spot_degree),
            format!("{:.1}", d.hot_spot_degree),
            format!("{:.3} s", construct_seconds(&cfg, n)),
        ]);
    }
    println!(
        "\nNetwork-size sweep ({}-port, {} samples):\n",
        base.ports[0], base.samples
    );
    println!("{}", table.render());
}
