//! Ablation A11: how much is adaptivity worth at the simulator level?
//! Compares the four output-selection policies — adaptive-random (the
//! paper's setup), oblivious-random, first-free, and fully deterministic
//! (modelling source-routed schemes) — on the same DOWN/UP routing, plus
//! the per-level utilization profile at a fixed load.
//!
//! Usage: `ablation_routechoice [--quick|--full] [--samples N] ...`

use irnet_bench::{parse_args, ExperimentConfig};
use irnet_metrics::levels::LevelProfile;
use irnet_metrics::report::TextTable;
use irnet_metrics::sweep;
use irnet_metrics::Algo;
use irnet_sim::{RouteChoice, SimConfig, Simulator};
use irnet_topology::{gen, PreorderPolicy};

const USAGE: &str = "ablation_routechoice — output-selection policies (A11)
options: same as fig8 (see `fig8 --help`)";

fn main() {
    let cli = parse_args(std::env::args(), USAGE);
    let cfg = ExperimentConfig::from_cli(&cli);
    let choices = [
        ("adaptive random (paper)", RouteChoice::AdaptiveRandom),
        ("oblivious random", RouteChoice::ObliviousRandom),
        ("first free", RouteChoice::FirstFree),
        ("deterministic minimal", RouteChoice::DeterministicMinimal),
    ];

    let mut table = TextTable::new(&[
        "output selection",
        "max thpt",
        "latency @ sat",
        "hot spot %",
    ]);
    for (label, choice) in choices {
        let mut sat = Vec::new();
        for s in 0..cfg.samples {
            let topo = gen::random_irregular(
                gen::IrregularParams::paper(cfg.num_switches, cfg.ports[0]),
                cfg.topo_seed + s as u64,
            )
            .unwrap();
            let inst = Algo::DownUp { release: true }
                .construct(&topo, PreorderPolicy::M1, s as u64)
                .unwrap();
            let base = SimConfig {
                route_choice: choice,
                ..cfg.sim
            };
            let curve = sweep::sweep(&inst, &base, &cfg.rates, cfg.sim_seed + s as u64);
            sat.push(curve.saturation().metrics);
        }
        let m = irnet_metrics::paper::PaperMetrics::mean(sat.iter());
        table.row(vec![
            label.to_string(),
            format!("{:.4}", m.accepted_traffic),
            format!("{:.0}", m.avg_latency),
            format!("{:.1}", m.hot_spot_degree),
        ]);
    }
    println!(
        "\nOutput-selection ablation (DOWN/UP, {} switches, {}-port, {} samples):\n",
        cfg.num_switches, cfg.ports[0], cfg.samples
    );
    println!("{}", table.render());

    // Per-level traffic profile at a moderate fixed load, adaptive vs
    // deterministic.
    let topo = gen::random_irregular(
        gen::IrregularParams::paper(cfg.num_switches, cfg.ports[0]),
        cfg.topo_seed,
    )
    .unwrap();
    let inst = Algo::DownUp { release: true }
        .construct(&topo, PreorderPolicy::M1, 0)
        .unwrap();
    for (label, choice) in [
        ("adaptive", RouteChoice::AdaptiveRandom),
        ("deterministic", RouteChoice::DeterministicMinimal),
    ] {
        let sim_cfg = SimConfig {
            injection_rate: 0.1,
            route_choice: choice,
            ..cfg.sim
        };
        let stats = Simulator::new(&inst.cg, &inst.tables, sim_cfg, cfg.sim_seed).run();
        let profile = LevelProfile::compute(&stats, &inst.cg, &inst.tree);
        println!("level shares ({label}): {}", profile.summary());
    }
}
