//! The reproduction harness: shared experiment configuration, the
//! sample × tree × algorithm × load grid runner, and result aggregation for
//! every table and figure of the paper.
//!
//! Reproduction binaries (`src/bin/`):
//!
//! * `fig8` — Figure 8(a)/(b): average message latency and accepted
//!   traffic vs offered load.
//! * `tables` — Tables 1–4: node utilization, traffic load, degree of hot
//!   spots, leaf utilization at maximal throughput.
//! * `ablation_release` — A1: Phase-3 release on/off.
//! * `ablation_baselines` — A3: up\*/down\* (BFS/DFS) vs L-turn vs DOWN/UP.
//! * `ablation_sim` — A4: buffer depth and packet length sensitivity.
//! * `ablation_scale` — A5: network size sweep.
//! * `ablation_vc` — A6: virtual channels.
//! * `perf` — simulator-core performance harness; writes `BENCH_sim.json`
//!   comparing the active-set and dense-reference scheduling cores.
//!
//! Every binary accepts `--quick` (CI-sized, the default) or `--full`
//! (paper-sized), plus overrides; run with `--help` for the list.

pub mod args;
pub mod fixtures;
pub mod grid;

pub use args::{parse_args, Cli};
pub use fixtures::{downup_fabric, topology_pool, Fabric};
pub use grid::{
    default_threads, run_grid, run_grid_with_stats, try_run_grid, AvgPoint, CellKey, CellResult,
    ExperimentConfig, GridError, GridResults, GridStats,
};
