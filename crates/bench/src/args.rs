//! A tiny dependency-free argument parser shared by the reproduction
//! binaries.

use std::collections::BTreeMap;

/// Parsed command line: flags (`--quick`) and key-value options
/// (`--ports 4`).
#[derive(Debug, Default, Clone)]
pub struct Cli {
    program: String,
    flags: Vec<String>,
    options: BTreeMap<String, String>,
}

impl Cli {
    /// Whether a bare flag was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// String option value.
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Parses an option into any `FromStr` type, with a default.
    pub fn opt_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.opt(name) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                eprintln!("{}: invalid value {raw:?} for --{name}", self.program);
                std::process::exit(2);
            }),
        }
    }

    /// Parses a comma-separated list option.
    pub fn opt_list<T: std::str::FromStr + Clone>(&self, name: &str, default: &[T]) -> Vec<T> {
        match self.opt(name) {
            None => default.to_vec(),
            Some(raw) => raw
                .split(',')
                .map(|s| {
                    s.trim().parse().unwrap_or_else(|_| {
                        eprintln!("{}: invalid element {s:?} in --{name}", self.program);
                        std::process::exit(2);
                    })
                })
                .collect(),
        }
    }
}

/// Parses `std::env::args`-style input. `--key value` becomes an option,
/// a lone `--flag` (followed by another `--…` or nothing) becomes a flag.
/// `--help` prints `usage` and exits.
pub fn parse_args(mut argv: impl Iterator<Item = String>, usage: &str) -> Cli {
    let program = argv.next().unwrap_or_else(|| "bench".into());
    let args: Vec<String> = argv.collect();
    let mut cli = Cli {
        program,
        ..Cli::default()
    };
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if a == "--help" || a == "-h" {
            println!("{usage}");
            std::process::exit(0);
        }
        let Some(name) = a.strip_prefix("--") else {
            eprintln!("unexpected argument {a:?}\n{usage}");
            std::process::exit(2);
        };
        if i + 1 < args.len() && !args[i + 1].starts_with("--") {
            cli.options.insert(name.to_string(), args[i + 1].clone());
            i += 2;
        } else {
            cli.flags.push(name.to_string());
            i += 1;
        }
    }
    cli
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(items: &[&str]) -> Cli {
        parse_args(
            std::iter::once("prog".to_string()).chain(items.iter().map(ToString::to_string)),
            "usage",
        )
    }

    #[test]
    fn flags_and_options() {
        let cli = parse(&["--quick", "--ports", "8", "--rates", "0.1,0.2"]);
        assert!(cli.flag("quick"));
        assert!(!cli.flag("full"));
        assert_eq!(cli.opt("ports"), Some("8"));
        assert_eq!(cli.opt_parse("ports", 4u32), 8);
        assert_eq!(cli.opt_parse("samples", 10u32), 10);
        assert_eq!(cli.opt_list("rates", &[0.5f64]), vec![0.1, 0.2]);
        assert_eq!(cli.opt_list::<f64>("missing", &[0.5]), vec![0.5]);
    }

    #[test]
    fn trailing_flag() {
        let cli = parse(&["--ports", "4", "--full"]);
        assert!(cli.flag("full"));
        assert_eq!(cli.opt("ports"), Some("4"));
    }
}
