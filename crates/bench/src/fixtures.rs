//! Shared topology/routing fixtures, built once per process and leaked.
//!
//! The Criterion benches and the `perf` harness used to regenerate
//! topologies and routings inside their measurement loops, which both
//! wasted wall clock and folded construction cost into simulation
//! numbers. Every fixture here is constructed exactly once per
//! `(switches, ports, seed)` and handed out as `&'static`, so repeated
//! iterations measure only the code under test.

use irnet_core::{DownUp, DownUpRouting};
use irnet_topology::{gen, Topology};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// A generated fabric: the topology plus its constructed DOWN/UP routing.
pub struct Fabric {
    /// The random irregular topology.
    pub topo: Topology,
    /// The constructed DOWN/UP routing artifacts.
    pub routing: DownUpRouting,
}

type FabricKey = (u32, u32, u64);

fn fabric_cache() -> &'static Mutex<BTreeMap<FabricKey, &'static Fabric>> {
    static CACHE: OnceLock<Mutex<BTreeMap<FabricKey, &'static Fabric>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// A paper-style random irregular fabric with its DOWN/UP routing,
/// constructed on first request and cached for the process lifetime.
pub fn downup_fabric(switches: u32, ports: u32, seed: u64) -> &'static Fabric {
    let mut cache = fabric_cache().lock().unwrap();
    if let Some(f) = cache.get(&(switches, ports, seed)) {
        return f;
    }
    let topo = gen::random_irregular(gen::IrregularParams::paper(switches, ports), seed)
        .expect("fixture topology generation failed");
    let routing = DownUp::new()
        .construct(&topo)
        .expect("fixture routing construction failed");
    let fabric: &'static Fabric = Box::leak(Box::new(Fabric { topo, routing }));
    cache.insert((switches, ports, seed), fabric);
    fabric
}

/// A pool of `count` pre-generated topologies (seeds `base_seed..`),
/// for construction benches that want fresh inputs per iteration without
/// paying generation cost inside the timed region.
pub fn topology_pool(
    switches: u32,
    ports: u32,
    count: usize,
    base_seed: u64,
) -> &'static [Topology] {
    type PoolKey = (u32, u32, usize, u64);
    static CACHE: OnceLock<Mutex<BTreeMap<PoolKey, &'static [Topology]>>> = OnceLock::new();
    let mut cache = CACHE
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap();
    if let Some(p) = cache.get(&(switches, ports, count, base_seed)) {
        return p;
    }
    let pool: Vec<Topology> = (0..count as u64)
        .map(|k| {
            gen::random_irregular(gen::IrregularParams::paper(switches, ports), base_seed + k)
                .expect("fixture topology generation failed")
        })
        .collect();
    let leaked: &'static [Topology] = Box::leak(pool.into_boxed_slice());
    cache.insert((switches, ports, count, base_seed), leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_is_cached_per_key() {
        let a = downup_fabric(16, 4, 3) as *const Fabric;
        let b = downup_fabric(16, 4, 3) as *const Fabric;
        assert_eq!(a, b, "same key must return the same fixture");
        let c = downup_fabric(16, 4, 4) as *const Fabric;
        assert_ne!(a, c, "different seed must build a different fixture");
    }

    #[test]
    fn pool_has_distinct_topologies() {
        let pool = topology_pool(12, 4, 3, 100);
        assert_eq!(pool.len(), 3);
        assert_ne!(pool[0].links(), pool[1].links());
    }
}
