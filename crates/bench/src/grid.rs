//! The sample × tree-policy × algorithm × load grid runner behind every
//! reproduction binary.
//!
//! Work is sharded at `(cell, sample, load point)` granularity through a
//! work-stealing pool: a chunked atomic cursor hands task ranges to worker
//! shards, each shard accumulates results in a private buffer, and the
//! buffers are merged by task index at the end. Every point derives its
//! simulation seed purely from `(cell, sample, rate index)`, so the output
//! is bit-exact regardless of thread count, chunk size, or execution order.
//! A per-run construction cache builds each topology once per
//! `(sample, ports)` and each routing instance once per `(cell, sample)`,
//! shared via `Arc` across that sample's load points (see DESIGN.md §13).

use crate::args::Cli;
use irnet_metrics::paper::PaperMetrics;
use irnet_metrics::sweep::{self, SweepCurve, SweepPoint};
use irnet_metrics::{Algo, Instance};
use irnet_sim::SimConfig;
use irnet_telemetry::{Progress, ProgressMode, Telemetry};
use irnet_topology::{gen, PreorderPolicy, Topology};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Full experiment description.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Switches per network (paper: 128).
    pub num_switches: u32,
    /// Port configurations to evaluate (paper: 4 and 8).
    pub ports: Vec<u32>,
    /// Random topologies per configuration (paper: 10).
    pub samples: u32,
    /// Coordinated-tree preorder policies (paper: M1, M2, M3).
    pub policies: Vec<PreorderPolicy>,
    /// Routing algorithms under test.
    pub algos: Vec<Algo>,
    /// Offered-load ladder (flits/node/clock).
    pub rates: Vec<f64>,
    /// Base simulator configuration (injection rate is overridden per
    /// point).
    pub sim: SimConfig,
    /// Base seed for topology generation (sample `s` uses
    /// `topo_seed + s`).
    pub topo_seed: u64,
    /// Base seed for simulation randomness.
    pub sim_seed: u64,
    /// Worker threads for the grid (each simulation stays single-threaded).
    /// Defaults to every available core ([`default_threads`]); override
    /// with `--threads N`. The output is bit-exact for any value.
    pub threads: usize,
    /// Tasks handed to a shard per steal from the shared cursor; `0` picks
    /// a heuristic from the task count. Any value yields identical output.
    pub chunk: usize,
    /// Emit completed/total/elapsed/ETA progress lines to stderr
    /// (`--progress`).
    pub progress: bool,
    /// Progress format: the established human lines or JSONL heartbeats
    /// (`--progress human|json`).
    pub progress_mode: ProgressMode,
    /// Telemetry sink: the grid records its construction-cache counters,
    /// point count, and wall-clock span here. Disabled by default (one
    /// branch per record on the disabled path).
    pub telemetry: Telemetry,
}

/// The default grid worker count: one per available core, so `--full`
/// reproduction runs saturate the machine out of the box. Falls back to 1
/// when the parallelism query fails (e.g. restricted sandboxes).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

impl ExperimentConfig {
    /// CI-sized configuration: small networks, short runs, one policy.
    pub fn quick() -> ExperimentConfig {
        ExperimentConfig {
            num_switches: 32,
            ports: vec![4],
            samples: 2,
            policies: vec![PreorderPolicy::M1],
            algos: Algo::PAPER_PAIR.to_vec(),
            rates: sweep::default_rates(5),
            sim: SimConfig {
                packet_len: 32,
                warmup_cycles: 500,
                measure_cycles: 2_000,
                ..SimConfig::default()
            },
            topo_seed: 1_000,
            sim_seed: 42,
            threads: default_threads(),
            chunk: 0,
            progress: false,
            progress_mode: ProgressMode::Human,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Paper-sized configuration: 128 switches, 10 samples, 3 policies,
    /// 128-flit packets.
    pub fn full() -> ExperimentConfig {
        ExperimentConfig {
            num_switches: 128,
            ports: vec![4, 8],
            samples: 10,
            policies: PreorderPolicy::ALL.to_vec(),
            algos: Algo::PAPER_PAIR.to_vec(),
            rates: sweep::default_rates(10),
            sim: SimConfig::default(),
            topo_seed: 1_000,
            sim_seed: 42,
            threads: default_threads(),
            chunk: 0,
            progress: false,
            progress_mode: ProgressMode::Human,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Builds a configuration from a CLI: `--full` selects the paper-sized
    /// preset (default is `--quick`), and individual values can be
    /// overridden with `--switches`, `--ports 4,8`, `--samples`,
    /// `--rates 0.01,0.05`, `--packet-len`, `--warmup`, `--measure`,
    /// `--threads` (default: all cores), `--chunk`, `--seed`;
    /// `--progress [human|json]` streams completion/ETA lines (or JSONL
    /// heartbeats) to stderr.
    pub fn from_cli(cli: &Cli) -> ExperimentConfig {
        let mut cfg = if cli.flag("full") {
            ExperimentConfig::full()
        } else {
            ExperimentConfig::quick()
        };
        cfg.num_switches = cli.opt_parse("switches", cfg.num_switches);
        cfg.ports = cli.opt_list("ports", &cfg.ports);
        cfg.samples = cli.opt_parse("samples", cfg.samples);
        cfg.rates = cli.opt_list("rates", &cfg.rates);
        cfg.sim.packet_len = cli.opt_parse("packet-len", cfg.sim.packet_len);
        cfg.sim.warmup_cycles = cli.opt_parse("warmup", cfg.sim.warmup_cycles);
        cfg.sim.measure_cycles = cli.opt_parse("measure", cfg.sim.measure_cycles);
        cfg.sim.buffer_depth = cli.opt_parse("buffer-depth", cfg.sim.buffer_depth);
        cfg.sim.virtual_channels = cli.opt_parse("vcs", cfg.sim.virtual_channels);
        cfg.topo_seed = cli.opt_parse("seed", cfg.topo_seed);
        cfg.threads = cli.opt_parse("threads", cfg.threads).max(1);
        cfg.chunk = cli.opt_parse("chunk", cfg.chunk);
        cfg.progress = cfg.progress || cli.flag("progress") || cli.opt("progress").is_some();
        if let Some(raw) = cli.opt("progress") {
            cfg.progress_mode = ProgressMode::parse(raw).unwrap_or_else(|| {
                eprintln!("unknown progress mode {raw:?} (expected human or json)");
                std::process::exit(2);
            });
        }
        if let Some(raw) = cli.opt("policies") {
            cfg.policies = raw
                .split(',')
                .map(|p| match p.trim() {
                    "M1" | "m1" => PreorderPolicy::M1,
                    "M2" | "m2" => PreorderPolicy::M2,
                    "M3" | "m3" => PreorderPolicy::M3,
                    other => {
                        eprintln!("unknown policy {other:?}");
                        std::process::exit(2);
                    }
                })
                .collect();
        }
        cfg
    }
}

/// Identifies one cell of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Ports per switch.
    pub ports: u32,
    /// Preorder policy used for the coordinated tree.
    pub policy: PreorderPolicy,
    /// Routing algorithm under test.
    pub algo: Algo,
}

/// Per-load averages across samples (Figure 8 series).
#[derive(Debug, Clone, Copy)]
pub struct AvgPoint {
    /// Offered load (flits/node/cycle).
    pub offered: f64,
    /// Paper metrics averaged over the samples that completed at this load.
    pub metrics: PaperMetrics,
    /// Samples whose run at this load was aborted by the deadlock watchdog.
    /// Those samples are *excluded* from `metrics` (a stalled run's partial
    /// counters would silently bias the average); when every sample
    /// deadlocked, `metrics` falls back to averaging the partial runs so
    /// the point is still plottable — but it is marked here either way.
    pub deadlocked_samples: u32,
}

/// A fully aggregated grid cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Which grid cell this is.
    pub key: CellKey,
    /// Average of the paper metrics at each offered load, over samples.
    pub points: Vec<AvgPoint>,
    /// Average of each sample's maximal-throughput metrics (Tables 1–4).
    pub saturation: PaperMetrics,
    /// Total (sample × load) runs in this cell aborted by the deadlock
    /// watchdog; nonzero means some of `points` carry a deadlock mark.
    pub deadlocked_runs: u32,
}

impl CellResult {
    /// Average maximal throughput over samples.
    pub fn throughput(&self) -> f64 {
        self.saturation.accepted_traffic
    }
}

/// All aggregated cells for one experiment.
#[derive(Debug, Clone)]
pub struct GridResults {
    /// One entry per (ports, policy, algo) combination.
    pub cells: Vec<CellResult>,
}

impl GridResults {
    /// Finds one cell.
    pub fn cell(&self, ports: u32, policy: PreorderPolicy, algo: Algo) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.key.ports == ports && c.key.policy == policy && c.key.algo == algo)
    }
}

/// A grid run that could not be aggregated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// A `(cell, sample)` pair never produced a complete sweep curve — some
    /// of its load points were never reported by any shard (e.g. a worker
    /// thread died before merging its buffer).
    MissingCurve {
        /// The grid cell the incomplete curve belongs to.
        key: CellKey,
        /// The topology sample index that never completed.
        sample: u32,
        /// Load points of this curve that were completed before the loss.
        completed_points: usize,
        /// Load points the curve needs in total.
        expected_points: usize,
    },
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::MissingCurve {
                key,
                sample,
                completed_points,
                expected_points,
            } => write!(
                f,
                "grid cell (ports={}, policy={:?}, algo={}) sample {sample} never produced a \
                 complete sweep curve ({completed_points}/{expected_points} load points \
                 reported) — a worker shard likely died before merging its results",
                key.ports, key.policy, key.algo
            ),
        }
    }
}

impl std::error::Error for GridError {}

/// Counters from one grid run, for observability and cache tests.
#[derive(Debug, Clone, Copy)]
pub struct GridStats {
    /// Load points simulated (`cells × samples × rates`).
    pub points_run: usize,
    /// Topologies generated — exactly one per `(sample, ports)` pair.
    pub topologies_built: usize,
    /// Routing instances constructed — exactly one per `(cell, sample)`.
    pub instances_built: usize,
    /// Wall-clock duration of the whole grid.
    pub wall_seconds: f64,
}

/// Per-run construction cache: one topology per `(sample, ports)` and one
/// routing [`Instance`] per `(cell, sample)`, each built exactly once on
/// first use (`OnceLock` serializes racing shards) and shared via `Arc`
/// across every load point of that sample.
struct ConstructionCache<'a> {
    cfg: &'a ExperimentConfig,
    keys: &'a [CellKey],
    /// Distinct port counts, sorted; indexes the topology table.
    unique_ports: Vec<u32>,
    /// `topos[ports_index * samples + sample]`.
    topos: Vec<OnceLock<Arc<Topology>>>,
    /// `insts[cell * samples + sample]`.
    insts: Vec<OnceLock<Arc<Instance>>>,
    topo_builds: AtomicUsize,
    inst_builds: AtomicUsize,
}

impl<'a> ConstructionCache<'a> {
    fn new(cfg: &'a ExperimentConfig, keys: &'a [CellKey]) -> ConstructionCache<'a> {
        let mut unique_ports = cfg.ports.clone();
        unique_ports.sort_unstable();
        unique_ports.dedup();
        let samples = cfg.samples as usize;
        ConstructionCache {
            cfg,
            keys,
            topos: (0..unique_ports.len() * samples)
                .map(|_| OnceLock::new())
                .collect(),
            insts: (0..keys.len() * samples).map(|_| OnceLock::new()).collect(),
            unique_ports,
            topo_builds: AtomicUsize::new(0),
            inst_builds: AtomicUsize::new(0),
        }
    }

    fn topology(&self, ports: u32, sample: u32) -> Arc<Topology> {
        let pi = self
            .unique_ports
            .iter()
            .position(|&p| p == ports)
            .expect("ports not in configuration");
        let slot = &self.topos[pi * self.cfg.samples as usize + sample as usize];
        Arc::clone(slot.get_or_init(|| {
            self.topo_builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(
                gen::random_irregular(
                    gen::IrregularParams::paper(self.cfg.num_switches, ports),
                    self.cfg.topo_seed + sample as u64,
                )
                .expect("topology generation failed"),
            )
        }))
    }

    fn instance(&self, cell: usize, sample: u32) -> Arc<Instance> {
        let slot = &self.insts[cell * self.cfg.samples as usize + sample as usize];
        Arc::clone(slot.get_or_init(|| {
            let key = self.keys[cell];
            let topo = self.topology(key.ports, sample);
            self.inst_builds.fetch_add(1, Ordering::Relaxed);
            Arc::new(
                key.algo
                    .construct_with(
                        &topo,
                        key.policy,
                        self.cfg.topo_seed + sample as u64,
                        &self.cfg.telemetry,
                    )
                    .expect("routing construction failed"),
            )
        }))
    }
}

/// The per-`(cell, sample)` base seed each sweep curve derives its points
/// from — unchanged from the original per-sample runner so every golden pin
/// survives the resharding.
fn curve_seed(cfg: &ExperimentConfig, cell: usize, sample: u32) -> u64 {
    cfg.sim_seed
        .wrapping_add(sample as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(cell as u64)
}

/// Runs the whole grid, distributing `(cell × sample × load point)` tasks
/// over `cfg.threads` work-stealing shards. Bit-exact regardless of thread
/// count and chunk size.
///
/// # Panics
///
/// Panics with the [`GridError`] message if a worker shard failed to report
/// its points; use [`try_run_grid`] to handle that case as a `Result`.
pub fn run_grid(cfg: &ExperimentConfig) -> GridResults {
    match try_run_grid(cfg) {
        Ok(results) => results,
        Err(e) => panic!("{e}"),
    }
}

/// [`run_grid`], reporting incomplete cells as an error instead of
/// panicking.
pub fn try_run_grid(cfg: &ExperimentConfig) -> Result<GridResults, GridError> {
    run_grid_with_stats(cfg).map(|(results, _)| results)
}

/// [`try_run_grid`], also returning construction-cache and timing counters.
pub fn run_grid_with_stats(cfg: &ExperimentConfig) -> Result<(GridResults, GridStats), GridError> {
    let mut keys = Vec::new();
    for &ports in &cfg.ports {
        for &policy in &cfg.policies {
            for &algo in &cfg.algos {
                keys.push(CellKey {
                    ports,
                    policy,
                    algo,
                });
            }
        }
    }
    let samples = cfg.samples as usize;
    let n_rates = cfg.rates.len();
    let total = keys.len() * samples * n_rates;
    let threads = cfg.threads.max(1);
    // Auto chunk: ~8 steals per shard balances cursor contention against
    // tail latency; any choice is output-invariant.
    let chunk = if cfg.chunk > 0 {
        cfg.chunk
    } else {
        (total / (threads * 8)).clamp(1, 64)
    };

    let cache = ConstructionCache::new(cfg, &keys);
    let merged: Mutex<Vec<(usize, SweepPoint)>> = Mutex::new(Vec::with_capacity(total));
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    // The backend tag keeps grid progress/output distinguishable from
    // flow-backend sweeps (the grid always runs the exact flit engine).
    // Throttled to one line per half second; races between shards resolve
    // inside the emitter so only one prints per window.
    let progress = cfg.progress.then(|| {
        Progress::new("grid[flit]", total, cfg.progress_mode)
            .percent(true)
            .throttle_ms(500)
    });
    let start = Instant::now();

    // One shard: steal a chunk of task indices, run each load point into a
    // private buffer, merge the buffer once at the end.
    let run_shard = || {
        let mut local: Vec<(usize, SweepPoint)> = Vec::new();
        loop {
            let begin = next.fetch_add(chunk, Ordering::Relaxed);
            if begin >= total {
                break;
            }
            let end = (begin + chunk).min(total);
            for t in begin..end {
                let rate_idx = t % n_rates;
                let rest = t / n_rates;
                let sample = (rest % samples) as u32;
                let cell = rest / samples;
                let inst = cache.instance(cell, sample);
                let seed = sweep::point_seed(curve_seed(cfg, cell, sample), rate_idx);
                let point = sweep::run_point_with(
                    &inst,
                    &cfg.sim,
                    cfg.rates[rate_idx],
                    seed,
                    &cfg.telemetry,
                );
                local.push((t, point));
            }
            let finished = done.fetch_add(end - begin, Ordering::Relaxed) + (end - begin);
            if let Some(p) = &progress {
                p.tick(finished);
            }
        }
        merged.lock().unwrap().append(&mut local);
    };
    if threads <= 1 {
        run_shard();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(run_shard);
            }
        });
    }

    // Scatter the merged shard buffers back into task order; order of
    // arrival is irrelevant because indices are disjoint.
    let mut flat: Vec<Option<SweepPoint>> = vec![None; total];
    for (t, point) in merged.into_inner().unwrap() {
        flat[t] = Some(point);
    }
    let mut cells = Vec::with_capacity(keys.len());
    for (ci, &key) in keys.iter().enumerate() {
        let mut sample_curves = Vec::with_capacity(samples);
        for s in 0..samples {
            let curve_base = (ci * samples + s) * n_rates;
            let mut points = Vec::with_capacity(n_rates);
            for r in 0..n_rates {
                match flat[curve_base + r].take() {
                    Some(p) => points.push(p),
                    None => {
                        return Err(GridError::MissingCurve {
                            key,
                            sample: s as u32,
                            completed_points: points.len()
                                + flat[curve_base + r..curve_base + n_rates]
                                    .iter()
                                    .filter(|p| p.is_some())
                                    .count(),
                            expected_points: n_rates,
                        })
                    }
                }
            }
            sample_curves.push(SweepCurve { points });
        }
        cells.push(aggregate_cell(key, &sample_curves, &cfg.rates));
    }
    let stats = GridStats {
        points_run: total,
        topologies_built: cache.topo_builds.load(Ordering::Relaxed),
        instances_built: cache.inst_builds.load(Ordering::Relaxed),
        wall_seconds: start.elapsed().as_secs_f64(),
    };
    record_grid_telemetry(&cfg.telemetry, &stats);
    Ok((GridResults { cells }, stats))
}

/// Records one grid run into the telemetry registry: the same counters
/// [`GridStats`] carries (points run, construction-cache builds) plus the
/// whole-grid wall-clock span. Recorded once per run, after the shards have
/// joined, so the hot loop never touches the registry.
fn record_grid_telemetry(tel: &Telemetry, stats: &GridStats) {
    if !tel.is_enabled() {
        return;
    }
    tel.record_span("grid/run", stats.wall_seconds);
    tel.counter("grid/points_run").add(stats.points_run as u64);
    tel.counter("grid/topologies_built")
        .add(stats.topologies_built as u64);
    tel.counter("grid/instances_built")
        .add(stats.instances_built as u64);
}

/// Averages one cell's sample curves point-wise and at saturation.
/// Deadlocked sample points are excluded from the averages, counted, and
/// reported on stderr with their stall cycle.
fn aggregate_cell(key: CellKey, samples: &[SweepCurve], rates: &[f64]) -> CellResult {
    let mut deadlocked_runs = 0u32;
    let points = (0..rates.len())
        .map(|i| {
            let clean: Vec<&PaperMetrics> = samples
                .iter()
                .filter(|c| !c.points[i].deadlocked)
                .map(|c| &c.points[i].metrics)
                .collect();
            let deadlocked_samples = (samples.len() - clean.len()) as u32;
            deadlocked_runs += deadlocked_samples;
            for (s, c) in samples.iter().enumerate() {
                let p = &c.points[i];
                if p.deadlocked {
                    eprintln!(
                        "!! deadlock: ports={} policy={:?} algo={} offered={:.4} \
                         sample={s}: no progress since cycle {}",
                        key.ports, key.policy, key.algo, p.offered, p.stall_cycle
                    );
                }
            }
            let metrics = if clean.is_empty() {
                PaperMetrics::mean(samples.iter().map(|c| &c.points[i].metrics))
            } else {
                PaperMetrics::mean(clean)
            };
            AvgPoint {
                offered: rates[i],
                metrics,
                deadlocked_samples,
            }
        })
        .collect();
    let sats: Vec<PaperMetrics> = samples.iter().map(|c| c.saturation().metrics).collect();
    CellResult {
        key,
        points,
        saturation: PaperMetrics::mean(sats.iter()),
        deadlocked_runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            num_switches: 12,
            ports: vec![4],
            samples: 2,
            policies: vec![PreorderPolicy::M1],
            algos: Algo::PAPER_PAIR.to_vec(),
            rates: vec![0.02, 0.2],
            sim: SimConfig {
                packet_len: 8,
                warmup_cycles: 200,
                measure_cycles: 800,
                ..SimConfig::default()
            },
            topo_seed: 7,
            sim_seed: 9,
            threads: 1,
            chunk: 0,
            progress: false,
            progress_mode: ProgressMode::Human,
            telemetry: Telemetry::disabled(),
        }
    }

    #[test]
    fn grid_produces_all_cells_and_points() {
        let cfg = tiny();
        let res = run_grid(&cfg);
        assert_eq!(res.cells.len(), 2);
        for c in &res.cells {
            assert_eq!(c.points.len(), 2);
            assert!(c.throughput() > 0.0);
        }
        assert!(res
            .cell(4, PreorderPolicy::M1, Algo::PAPER_PAIR[0])
            .is_some());
        assert!(res
            .cell(8, PreorderPolicy::M1, Algo::PAPER_PAIR[0])
            .is_none());
    }

    #[test]
    fn grid_is_thread_count_invariant() {
        let mut cfg = tiny();
        let single = run_grid(&cfg);
        cfg.threads = 3;
        cfg.chunk = 1; // maximal interleaving across shards
        let multi = run_grid(&cfg);
        for (a, b) in single.cells.iter().zip(&multi.cells) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.saturation.accepted_traffic, b.saturation.accepted_traffic);
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert_eq!(
                    pa.metrics.avg_latency.to_bits(),
                    pb.metrics.avg_latency.to_bits()
                );
            }
        }
    }

    #[test]
    fn construction_cache_builds_each_world_exactly_once() {
        // chunk=1 with more shards than tasks per construction maximizes
        // contention on the OnceLock slots; the counters must still show
        // one topology per (sample, ports) and one instance per
        // (cell, sample).
        let mut cfg = tiny();
        cfg.threads = 4;
        cfg.chunk = 1;
        cfg.telemetry = Telemetry::enabled();
        let (results, stats) = run_grid_with_stats(&cfg).unwrap();
        assert_eq!(results.cells.len(), 2);
        assert_eq!(stats.points_run, 2 * 2 * 2); // cells × samples × rates
        assert_eq!(stats.topologies_built, 2); // 1 port count × 2 samples
        assert_eq!(stats.instances_built, 4); // 2 cells × 2 samples
        let snap = cfg.telemetry.snapshot();
        assert_eq!(snap.counter("grid/points_run"), Some(8));
        assert_eq!(snap.counter("grid/topologies_built"), Some(2));
        assert_eq!(snap.counter("grid/instances_built"), Some(4));
        assert_eq!(snap.span("grid/run").map_or(0, |s| s.count), 1);
        // Duplicate port entries must not double-build topologies.
        let mut dup = tiny();
        dup.ports = vec![4, 4];
        dup.threads = 3;
        let (_, dup_stats) = run_grid_with_stats(&dup).unwrap();
        assert_eq!(dup_stats.topologies_built, 2);
        assert_eq!(dup_stats.instances_built, 8); // 4 cells × 2 samples
    }

    #[test]
    fn deadlocked_samples_are_marked_and_excluded_from_averages() {
        use irnet_metrics::sweep::SweepPoint;
        let m = |accepted: f64| PaperMetrics {
            node_utilization: accepted,
            traffic_load: 0.0,
            hot_spot_degree: 0.0,
            leaf_utilization: 0.0,
            avg_latency: 10.0,
            accepted_traffic: accepted,
        };
        let point = |accepted: f64, deadlocked: bool| SweepPoint {
            offered: 0.1,
            metrics: m(accepted),
            deadlocked,
            stall_cycle: if deadlocked { 1234 } else { 0 },
        };
        let clean = SweepCurve {
            points: vec![point(0.4, false)],
        };
        let stalled = SweepCurve {
            points: vec![point(0.1, true)],
        };
        let key = CellKey {
            ports: 4,
            policy: PreorderPolicy::M1,
            algo: Algo::PAPER_PAIR[0],
        };
        let cell = aggregate_cell(key, &[clean.clone(), stalled.clone()], &[0.1]);
        assert_eq!(cell.deadlocked_runs, 1);
        assert_eq!(cell.points[0].deadlocked_samples, 1);
        // The stalled sample's partial 0.1 must not drag the average down.
        assert!((cell.points[0].metrics.accepted_traffic - 0.4).abs() < 1e-12);
        // When every sample stalls the point is still plottable but marked.
        let all_bad = aggregate_cell(key, &[stalled.clone(), stalled], &[0.1]);
        assert_eq!(all_bad.points[0].deadlocked_samples, 2);
        assert!((all_bad.points[0].metrics.accepted_traffic - 0.1).abs() < 1e-12);
    }

    #[test]
    fn cli_presets_and_overrides() {
        let cli = crate::parse_args(
            [
                "p",
                "--full",
                "--samples",
                "3",
                "--ports",
                "8",
                "--threads",
                "2",
            ]
            .iter()
            .map(ToString::to_string),
            "u",
        );
        let cfg = ExperimentConfig::from_cli(&cli);
        assert_eq!(cfg.num_switches, 128);
        assert_eq!(cfg.samples, 3);
        assert_eq!(cfg.ports, vec![8]);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.policies.len(), 3);
    }
}
