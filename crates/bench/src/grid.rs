//! The sample × tree-policy × algorithm × load grid runner behind every
//! reproduction binary.

use crate::args::Cli;
use irnet_metrics::paper::PaperMetrics;
use irnet_metrics::sweep::{self, SweepCurve};
use irnet_metrics::Algo;
use irnet_sim::SimConfig;
use irnet_topology::{gen, PreorderPolicy};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Full experiment description.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Switches per network (paper: 128).
    pub num_switches: u32,
    /// Port configurations to evaluate (paper: 4 and 8).
    pub ports: Vec<u32>,
    /// Random topologies per configuration (paper: 10).
    pub samples: u32,
    /// Coordinated-tree preorder policies (paper: M1, M2, M3).
    pub policies: Vec<PreorderPolicy>,
    /// Routing algorithms under test.
    pub algos: Vec<Algo>,
    /// Offered-load ladder (flits/node/clock).
    pub rates: Vec<f64>,
    /// Base simulator configuration (injection rate is overridden per
    /// point).
    pub sim: SimConfig,
    /// Base seed for topology generation (sample `s` uses
    /// `topo_seed + s`).
    pub topo_seed: u64,
    /// Base seed for simulation randomness.
    pub sim_seed: u64,
    /// Worker threads for the grid (each simulation stays single-threaded).
    pub threads: usize,
}

impl ExperimentConfig {
    /// CI-sized configuration: small networks, short runs, one policy.
    pub fn quick() -> ExperimentConfig {
        ExperimentConfig {
            num_switches: 32,
            ports: vec![4],
            samples: 2,
            policies: vec![PreorderPolicy::M1],
            algos: Algo::PAPER_PAIR.to_vec(),
            rates: sweep::default_rates(5),
            sim: SimConfig {
                packet_len: 32,
                warmup_cycles: 500,
                measure_cycles: 2_000,
                ..SimConfig::default()
            },
            topo_seed: 1_000,
            sim_seed: 42,
            threads: 1,
        }
    }

    /// Paper-sized configuration: 128 switches, 10 samples, 3 policies,
    /// 128-flit packets.
    pub fn full() -> ExperimentConfig {
        ExperimentConfig {
            num_switches: 128,
            ports: vec![4, 8],
            samples: 10,
            policies: PreorderPolicy::ALL.to_vec(),
            algos: Algo::PAPER_PAIR.to_vec(),
            rates: sweep::default_rates(10),
            sim: SimConfig::default(),
            topo_seed: 1_000,
            sim_seed: 42,
            threads: 1,
        }
    }

    /// Builds a configuration from a CLI: `--full` selects the paper-sized
    /// preset (default is `--quick`), and individual values can be
    /// overridden with `--switches`, `--ports 4,8`, `--samples`,
    /// `--rates 0.01,0.05`, `--packet-len`, `--warmup`, `--measure`,
    /// `--threads`, `--seed`.
    pub fn from_cli(cli: &Cli) -> ExperimentConfig {
        let mut cfg = if cli.flag("full") {
            ExperimentConfig::full()
        } else {
            ExperimentConfig::quick()
        };
        cfg.num_switches = cli.opt_parse("switches", cfg.num_switches);
        cfg.ports = cli.opt_list("ports", &cfg.ports);
        cfg.samples = cli.opt_parse("samples", cfg.samples);
        cfg.rates = cli.opt_list("rates", &cfg.rates);
        cfg.sim.packet_len = cli.opt_parse("packet-len", cfg.sim.packet_len);
        cfg.sim.warmup_cycles = cli.opt_parse("warmup", cfg.sim.warmup_cycles);
        cfg.sim.measure_cycles = cli.opt_parse("measure", cfg.sim.measure_cycles);
        cfg.sim.buffer_depth = cli.opt_parse("buffer-depth", cfg.sim.buffer_depth);
        cfg.sim.virtual_channels = cli.opt_parse("vcs", cfg.sim.virtual_channels);
        cfg.topo_seed = cli.opt_parse("seed", cfg.topo_seed);
        cfg.threads = cli.opt_parse("threads", cfg.threads).max(1);
        if let Some(raw) = cli.opt("policies") {
            cfg.policies = raw
                .split(',')
                .map(|p| match p.trim() {
                    "M1" | "m1" => PreorderPolicy::M1,
                    "M2" | "m2" => PreorderPolicy::M2,
                    "M3" | "m3" => PreorderPolicy::M3,
                    other => {
                        eprintln!("unknown policy {other:?}");
                        std::process::exit(2);
                    }
                })
                .collect();
        }
        cfg
    }
}

/// Identifies one cell of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellKey {
    /// Ports per switch.
    pub ports: u32,
    /// Preorder policy used for the coordinated tree.
    pub policy: PreorderPolicy,
    /// Routing algorithm under test.
    pub algo: Algo,
}

/// Per-load averages across samples (Figure 8 series).
#[derive(Debug, Clone, Copy)]
pub struct AvgPoint {
    /// Offered load (flits/node/cycle).
    pub offered: f64,
    /// Paper metrics averaged over the samples that completed at this load.
    pub metrics: PaperMetrics,
    /// Samples whose run at this load was aborted by the deadlock watchdog.
    /// Those samples are *excluded* from `metrics` (a stalled run's partial
    /// counters would silently bias the average); when every sample
    /// deadlocked, `metrics` falls back to averaging the partial runs so
    /// the point is still plottable — but it is marked here either way.
    pub deadlocked_samples: u32,
}

/// A fully aggregated grid cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Which grid cell this is.
    pub key: CellKey,
    /// Average of the paper metrics at each offered load, over samples.
    pub points: Vec<AvgPoint>,
    /// Average of each sample's maximal-throughput metrics (Tables 1–4).
    pub saturation: PaperMetrics,
    /// Total (sample × load) runs in this cell aborted by the deadlock
    /// watchdog; nonzero means some of `points` carry a deadlock mark.
    pub deadlocked_runs: u32,
}

impl CellResult {
    /// Average maximal throughput over samples.
    pub fn throughput(&self) -> f64 {
        self.saturation.accepted_traffic
    }
}

/// All aggregated cells for one experiment.
#[derive(Debug, Clone)]
pub struct GridResults {
    /// One entry per (ports, policy, algo) combination.
    pub cells: Vec<CellResult>,
}

impl GridResults {
    /// Finds one cell.
    pub fn cell(&self, ports: u32, policy: PreorderPolicy, algo: Algo) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.key.ports == ports && c.key.policy == policy && c.key.algo == algo)
    }
}

/// Runs the whole grid, distributing (cell × sample) sweeps over
/// `cfg.threads` workers. Deterministic regardless of thread count.
pub fn run_grid(cfg: &ExperimentConfig) -> GridResults {
    struct Task {
        cell: usize,
        key: CellKey,
        sample: u32,
    }
    let mut keys = Vec::new();
    for &ports in &cfg.ports {
        for &policy in &cfg.policies {
            for &algo in &cfg.algos {
                keys.push(CellKey {
                    ports,
                    policy,
                    algo,
                });
            }
        }
    }
    let mut tasks = Vec::new();
    for (ci, &key) in keys.iter().enumerate() {
        for s in 0..cfg.samples {
            tasks.push(Task {
                cell: ci,
                key,
                sample: s,
            });
        }
    }

    // curves[cell][sample]
    let curves: Vec<Mutex<Vec<Option<SweepCurve>>>> = keys
        .iter()
        .map(|_| Mutex::new(vec![None; cfg.samples as usize]))
        .collect();
    let next = AtomicUsize::new(0);
    let run_task = |t: &Task| {
        let topo = gen::random_irregular(
            gen::IrregularParams::paper(cfg.num_switches, t.key.ports),
            cfg.topo_seed + t.sample as u64,
        )
        .expect("topology generation failed");
        let inst = t
            .key
            .algo
            .construct(&topo, t.key.policy, cfg.topo_seed + t.sample as u64)
            .expect("routing construction failed");
        let seed = cfg
            .sim_seed
            .wrapping_add(t.sample as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(t.cell as u64);
        let curve = sweep::sweep(&inst, &cfg.sim, &cfg.rates, seed);
        curves[t.cell].lock().unwrap()[t.sample as usize] = Some(curve);
    };
    if cfg.threads <= 1 {
        for t in &tasks {
            run_task(t);
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..cfg.threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= tasks.len() {
                        break;
                    }
                    run_task(&tasks[i]);
                });
            }
        });
    }

    let cells = keys
        .iter()
        .enumerate()
        .map(|(ci, &key)| {
            let sample_curves: Vec<SweepCurve> = curves[ci]
                .lock()
                .unwrap()
                .iter()
                .map(|c| c.clone().expect("missing sample"))
                .collect();
            aggregate_cell(key, &sample_curves, &cfg.rates)
        })
        .collect();
    GridResults { cells }
}

/// Averages one cell's sample curves point-wise and at saturation.
/// Deadlocked sample points are excluded from the averages, counted, and
/// reported on stderr with their stall cycle.
fn aggregate_cell(key: CellKey, samples: &[SweepCurve], rates: &[f64]) -> CellResult {
    let mut deadlocked_runs = 0u32;
    let points = (0..rates.len())
        .map(|i| {
            let clean: Vec<&PaperMetrics> = samples
                .iter()
                .filter(|c| !c.points[i].deadlocked)
                .map(|c| &c.points[i].metrics)
                .collect();
            let deadlocked_samples = (samples.len() - clean.len()) as u32;
            deadlocked_runs += deadlocked_samples;
            for (s, c) in samples.iter().enumerate() {
                let p = &c.points[i];
                if p.deadlocked {
                    eprintln!(
                        "!! deadlock: ports={} policy={:?} algo={} offered={:.4} \
                         sample={s}: no progress since cycle {}",
                        key.ports, key.policy, key.algo, p.offered, p.stall_cycle
                    );
                }
            }
            let metrics = if clean.is_empty() {
                PaperMetrics::mean(samples.iter().map(|c| &c.points[i].metrics))
            } else {
                PaperMetrics::mean(clean)
            };
            AvgPoint {
                offered: rates[i],
                metrics,
                deadlocked_samples,
            }
        })
        .collect();
    let sats: Vec<PaperMetrics> = samples.iter().map(|c| c.saturation().metrics).collect();
    CellResult {
        key,
        points,
        saturation: PaperMetrics::mean(sats.iter()),
        deadlocked_runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            num_switches: 12,
            ports: vec![4],
            samples: 2,
            policies: vec![PreorderPolicy::M1],
            algos: Algo::PAPER_PAIR.to_vec(),
            rates: vec![0.02, 0.2],
            sim: SimConfig {
                packet_len: 8,
                warmup_cycles: 200,
                measure_cycles: 800,
                ..SimConfig::default()
            },
            topo_seed: 7,
            sim_seed: 9,
            threads: 1,
        }
    }

    #[test]
    fn grid_produces_all_cells_and_points() {
        let cfg = tiny();
        let res = run_grid(&cfg);
        assert_eq!(res.cells.len(), 2);
        for c in &res.cells {
            assert_eq!(c.points.len(), 2);
            assert!(c.throughput() > 0.0);
        }
        assert!(res
            .cell(4, PreorderPolicy::M1, Algo::PAPER_PAIR[0])
            .is_some());
        assert!(res
            .cell(8, PreorderPolicy::M1, Algo::PAPER_PAIR[0])
            .is_none());
    }

    #[test]
    fn grid_is_thread_count_invariant() {
        let mut cfg = tiny();
        let single = run_grid(&cfg);
        cfg.threads = 3;
        let multi = run_grid(&cfg);
        for (a, b) in single.cells.iter().zip(&multi.cells) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.saturation.accepted_traffic, b.saturation.accepted_traffic);
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert_eq!(
                    pa.metrics.avg_latency.to_bits(),
                    pb.metrics.avg_latency.to_bits()
                );
            }
        }
    }

    #[test]
    fn deadlocked_samples_are_marked_and_excluded_from_averages() {
        use irnet_metrics::sweep::SweepPoint;
        let m = |accepted: f64| PaperMetrics {
            node_utilization: accepted,
            traffic_load: 0.0,
            hot_spot_degree: 0.0,
            leaf_utilization: 0.0,
            avg_latency: 10.0,
            accepted_traffic: accepted,
        };
        let point = |accepted: f64, deadlocked: bool| SweepPoint {
            offered: 0.1,
            metrics: m(accepted),
            deadlocked,
            stall_cycle: if deadlocked { 1234 } else { 0 },
        };
        let clean = SweepCurve {
            points: vec![point(0.4, false)],
        };
        let stalled = SweepCurve {
            points: vec![point(0.1, true)],
        };
        let key = CellKey {
            ports: 4,
            policy: PreorderPolicy::M1,
            algo: Algo::PAPER_PAIR[0],
        };
        let cell = aggregate_cell(key, &[clean.clone(), stalled.clone()], &[0.1]);
        assert_eq!(cell.deadlocked_runs, 1);
        assert_eq!(cell.points[0].deadlocked_samples, 1);
        // The stalled sample's partial 0.1 must not drag the average down.
        assert!((cell.points[0].metrics.accepted_traffic - 0.4).abs() < 1e-12);
        // When every sample stalls the point is still plottable but marked.
        let all_bad = aggregate_cell(key, &[stalled.clone(), stalled], &[0.1]);
        assert_eq!(all_bad.points[0].deadlocked_samples, 2);
        assert!((all_bad.points[0].metrics.accepted_traffic - 0.1).abs() < 1e-12);
    }

    #[test]
    fn cli_presets_and_overrides() {
        let cli = crate::parse_args(
            [
                "p",
                "--full",
                "--samples",
                "3",
                "--ports",
                "8",
                "--threads",
                "2",
            ]
            .iter()
            .map(ToString::to_string),
            "u",
        );
        let cfg = ExperimentConfig::from_cli(&cli);
        assert_eq!(cfg.num_switches, 128);
        assert_eq!(cfg.samples, 3);
        assert_eq!(cfg.ports, vec![8]);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.policies.len(), 3);
    }
}
