//! Criterion benches for the static routability analyzer: the feasibility
//! oracle on intact and degraded fabrics, and the whole-table property
//! audits (reachability, stretch, minimality, livelock) over certified
//! routing instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use irnet_analyze::{analyze_faulted, analyze_topology, audit};
use irnet_core::DownUp;
use irnet_topology::{gen, FaultPlan, Topology};
use irnet_verify::certify;
use std::hint::black_box;

fn paper_topo(n: u32, ports: u32) -> Topology {
    gen::random_irregular(gen::IrregularParams::paper(n, ports), 7).unwrap()
}

fn bench_feasibility_oracle(c: &mut Criterion) {
    let mut g = c.benchmark_group("feasibility_oracle");
    g.sample_size(30);
    for (n, ports) in [(128u32, 4u32), (256, 8), (1024, 8)] {
        let topo = paper_topo(n, ports);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}sw_{ports}p")),
            &topo,
            |b, topo| {
                b.iter(|| {
                    black_box(analyze_topology(topo).is_feasible());
                });
            },
        );
    }
    g.finish();
}

fn bench_feasibility_oracle_faulted(c: &mut Criterion) {
    let mut g = c.benchmark_group("feasibility_oracle_faulted");
    g.sample_size(30);
    for faults in [4u32, 16, 64] {
        let topo = paper_topo(256, 8);
        let plan = FaultPlan::random(&topo, faults, 0, (100, 10_000), 11).unwrap();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{faults}faults")),
            &(topo, plan),
            |b, (topo, plan)| {
                b.iter(|| {
                    black_box(analyze_faulted(topo, plan).unwrap().is_feasible());
                });
            },
        );
    }
    g.finish();
}

fn bench_table_audits(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_audits");
    g.sample_size(10);
    for (n, ports) in [(64u32, 4u32), (128, 8)] {
        let topo = paper_topo(n, ports);
        let routing = DownUp::new().construct(&topo).unwrap();
        let cert = certify(routing.comm_graph(), routing.turn_table());
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}sw_{ports}p")),
            &(routing, cert),
            |b, (routing, cert)| {
                b.iter(|| {
                    black_box(
                        audit(
                            routing.comm_graph(),
                            routing.turn_table(),
                            routing.routing_tables(),
                            cert,
                        )
                        .passed(),
                    );
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_feasibility_oracle,
    bench_feasibility_oracle_faulted,
    bench_table_audits
);
criterion_main!(benches);
