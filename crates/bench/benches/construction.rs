//! Criterion benches for the routing-construction pipeline: topology
//! generation, coordinated trees, communication graphs, the DOWN/UP
//! phases, baselines, deadlock verification, and routing-table builds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use irnet_baselines::{lturn, updown};
use irnet_core::DownUp;
use irnet_topology::{gen, CommGraph, CoordinatedTree, PreorderPolicy};
use irnet_turns::{ChannelDepGraph, RoutingTables, TurnTable};
use std::hint::black_box;

fn paper_topo(n: u32, ports: u32) -> irnet_topology::Topology {
    gen::random_irregular(gen::IrregularParams::paper(n, ports), 7).unwrap()
}

fn bench_topology_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology_gen");
    g.sample_size(20);
    for (n, ports) in [(128u32, 4u32), (128, 8), (256, 8)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}sw_{ports}p")),
            &(n, ports),
            |b, &(n, ports)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(
                        gen::random_irregular(gen::IrregularParams::paper(n, ports), seed).unwrap(),
                    );
                });
            },
        );
    }
    g.finish();
}

fn bench_coordinated_tree(c: &mut Criterion) {
    let topo = paper_topo(128, 8);
    let mut g = c.benchmark_group("coordinated_tree");
    g.sample_size(30);
    for policy in PreorderPolicy::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(policy),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    black_box(CoordinatedTree::build(&topo, policy, 3).unwrap());
                });
            },
        );
    }
    g.finish();
}

fn bench_comm_graph(c: &mut Criterion) {
    let topo = paper_topo(128, 8);
    let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
    c.bench_function("comm_graph/128sw_8p", |b| {
        b.iter(|| {
            black_box(CommGraph::build(&topo, &tree));
        });
    });
}

fn bench_constructions(c: &mut Criterion) {
    let mut g = c.benchmark_group("construct");
    g.sample_size(10);
    for (n, ports) in [(128u32, 4u32), (128, 8)] {
        let topo = paper_topo(n, ports);
        let tag = format!("{n}sw_{ports}p");
        g.bench_function(BenchmarkId::new("downup", &tag), |b| {
            b.iter(|| {
                black_box(DownUp::new().construct(&topo).unwrap());
            });
        });
        g.bench_function(BenchmarkId::new("downup_norelease", &tag), |b| {
            b.iter(|| {
                black_box(DownUp::new().release(false).construct(&topo).unwrap());
            });
        });
        g.bench_function(BenchmarkId::new("lturn", &tag), |b| {
            b.iter(|| {
                black_box(lturn::construct(&topo).unwrap());
            });
        });
        g.bench_function(BenchmarkId::new("updown_bfs", &tag), |b| {
            b.iter(|| {
                black_box(updown::construct_bfs(&topo).unwrap());
            });
        });
    }
    g.finish();
}

fn bench_verification(c: &mut Criterion) {
    let topo = paper_topo(128, 8);
    let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
    let cg = CommGraph::build(&topo, &tree);
    let table = TurnTable::from_direction_rule(&cg, irnet_core::phase2::turn_allowed);
    c.bench_function("cdg_acyclicity/128sw_8p", |b| {
        b.iter(|| {
            let dep = ChannelDepGraph::build(&cg, &table);
            black_box(dep.is_acyclic());
        });
    });
    c.bench_function("routing_tables/128sw_8p", |b| {
        b.iter(|| {
            black_box(RoutingTables::build(&cg, &table).unwrap());
        });
    });
}

criterion_group!(
    benches,
    bench_topology_gen,
    bench_coordinated_tree,
    bench_comm_graph,
    bench_constructions,
    bench_verification
);
criterion_main!(benches);
