//! Criterion benches for the wormhole simulator: cycles/second at the
//! paper's scale under light and saturating load, with and without virtual
//! channels, for both scheduling cores.
//!
//! Topologies and routings come from [`irnet_bench::fixtures`], so the
//! timed regions never pay fabric construction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use irnet_bench::fixtures;
use irnet_metrics::Algo;
use irnet_sim::{EngineCore, SimConfig, Simulator};
use irnet_topology::PreorderPolicy;
use std::hint::black_box;

fn bench_sim_cycles(c: &mut Criterion) {
    let fabric = fixtures::downup_fabric(128, 8, 7);
    let mut g = c.benchmark_group("sim_cycles");
    g.sample_size(10);
    const CYCLES: u32 = 3_000;
    g.throughput(Throughput::Elements(CYCLES as u64));
    for (label, rate, vcs, core) in [
        ("light_load", 0.02, 1u32, EngineCore::ActiveSet),
        ("light_load_dense", 0.02, 1, EngineCore::DenseReference),
        ("saturated", 0.5, 1, EngineCore::ActiveSet),
        ("saturated_4vc", 0.5, 4, EngineCore::ActiveSet),
    ] {
        let cfg = SimConfig {
            injection_rate: rate,
            virtual_channels: vcs,
            warmup_cycles: 0,
            measure_cycles: CYCLES,
            engine_core: core,
            ..SimConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(
                    Simulator::new(
                        fabric.routing.comm_graph(),
                        fabric.routing.routing_tables(),
                        *cfg,
                        seed,
                    )
                    .run(),
                );
            });
        });
    }
    g.finish();
}

fn bench_algo_construct_and_route(c: &mut Criterion) {
    // "Operator" cost: construct a routing for an existing fabric. The
    // topology pool is pre-generated so only construction is timed.
    let pool = fixtures::topology_pool(128, 4, 16, 1);
    let mut g = c.benchmark_group("end_to_end_construct");
    g.sample_size(10);
    for algo in [
        Algo::DownUp { release: true },
        Algo::LTurn { release: true },
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(algo.label()),
            &algo,
            |b, &algo| {
                let mut k = 0usize;
                b.iter(|| {
                    let topo = &pool[k % pool.len()];
                    k += 1;
                    black_box(algo.construct(topo, PreorderPolicy::M1, k as u64).unwrap());
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sim_cycles, bench_algo_construct_and_route);
criterion_main!(benches);
