//! Criterion benches for the wormhole simulator: cycles/second at the
//! paper's scale under light and saturating load, with and without virtual
//! channels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use irnet_core::DownUp;
use irnet_metrics::Algo;
use irnet_sim::{SimConfig, Simulator};
use irnet_topology::{gen, PreorderPolicy};
use std::hint::black_box;

fn bench_sim_cycles(c: &mut Criterion) {
    let topo = gen::random_irregular(gen::IrregularParams::paper(128, 8), 7).unwrap();
    let routing = DownUp::new().construct(&topo).unwrap();
    let mut g = c.benchmark_group("sim_cycles");
    g.sample_size(10);
    const CYCLES: u32 = 3_000;
    g.throughput(Throughput::Elements(CYCLES as u64));
    for (label, rate, vcs) in [
        ("light_load", 0.02, 1u32),
        ("saturated", 0.5, 1),
        ("saturated_4vc", 0.5, 4),
    ] {
        let cfg = SimConfig {
            injection_rate: rate,
            virtual_channels: vcs,
            warmup_cycles: 0,
            measure_cycles: CYCLES,
            ..SimConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(
                    Simulator::new(routing.comm_graph(), routing.routing_tables(), *cfg, seed)
                        .run(),
                );
            });
        });
    }
    g.finish();
}

fn bench_algo_construct_and_route(c: &mut Criterion) {
    // End-to-end "operator" cost: construct a routing for a fresh fabric.
    let mut g = c.benchmark_group("end_to_end_construct");
    g.sample_size(10);
    for algo in [
        Algo::DownUp { release: true },
        Algo::LTurn { release: true },
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(algo.label()),
            &algo,
            |b, &algo| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let topo =
                        gen::random_irregular(gen::IrregularParams::paper(128, 4), seed).unwrap();
                    black_box(algo.construct(&topo, PreorderPolicy::M1, seed).unwrap());
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sim_cycles, bench_algo_construct_and_route);
criterion_main!(benches);
