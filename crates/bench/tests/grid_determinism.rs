//! Determinism of the sharded grid runner: the `(cell, sample, load point)`
//! work-stealing pool must be bit-exact against the single-threaded run for
//! *any* thread count and chunk size, because every point derives its seed
//! purely from its grid coordinates. A proptest samples random pool shapes;
//! the baseline is computed once and reused across cases.

use irnet_bench::{run_grid, run_grid_with_stats, ExperimentConfig, GridResults};
use irnet_metrics::Algo;
use irnet_sim::SimConfig;
use irnet_topology::PreorderPolicy;
use proptest::prelude::*;
use std::sync::OnceLock;

fn tiny() -> ExperimentConfig {
    ExperimentConfig {
        num_switches: 12,
        ports: vec![4],
        samples: 2,
        policies: vec![PreorderPolicy::M1, PreorderPolicy::M2],
        algos: Algo::PAPER_PAIR.to_vec(),
        rates: vec![0.02, 0.1, 0.3],
        sim: SimConfig {
            packet_len: 8,
            warmup_cycles: 200,
            measure_cycles: 600,
            ..SimConfig::default()
        },
        topo_seed: 11,
        sim_seed: 23,
        threads: 1,
        chunk: 0,
        progress: false,
        progress_mode: irnet_telemetry::ProgressMode::Human,
        telemetry: irnet_telemetry::Telemetry::disabled(),
    }
}

/// The single-threaded reference, computed once per process.
fn baseline() -> &'static GridResults {
    static BASELINE: OnceLock<GridResults> = OnceLock::new();
    BASELINE.get_or_init(|| run_grid(&tiny()))
}

fn assert_bit_exact(a: &GridResults, b: &GridResults, context: &str) {
    assert_eq!(a.cells.len(), b.cells.len(), "{context}: cell count");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.key, cb.key, "{context}: cell order");
        assert_eq!(
            ca.saturation.accepted_traffic.to_bits(),
            cb.saturation.accepted_traffic.to_bits(),
            "{context}: saturation throughput of {:?}",
            ca.key
        );
        assert_eq!(ca.deadlocked_runs, cb.deadlocked_runs, "{context}");
        for (pa, pb) in ca.points.iter().zip(&cb.points) {
            assert_eq!(
                pa.metrics.avg_latency.to_bits(),
                pb.metrics.avg_latency.to_bits(),
                "{context}: avg_latency at offered {} of {:?}",
                pa.offered,
                ca.key
            );
            assert_eq!(
                pa.metrics.accepted_traffic.to_bits(),
                pb.metrics.accepted_traffic.to_bits(),
                "{context}: accepted_traffic at offered {} of {:?}",
                pa.offered,
                ca.key
            );
            assert_eq!(pa.deadlocked_samples, pb.deadlocked_samples, "{context}");
        }
    }
}

/// A live telemetry registry must not perturb the grid: the multi-threaded
/// instrumented run is bit-exact against the plain single-threaded
/// baseline, and the registry's aggregate counters match the run stats.
#[test]
fn grid_with_telemetry_attached_is_bit_exact() {
    let mut cfg = tiny();
    cfg.threads = 4;
    cfg.chunk = 2;
    cfg.telemetry = irnet_telemetry::Telemetry::enabled();
    let (results, stats) = run_grid_with_stats(&cfg).unwrap();
    assert_bit_exact(baseline(), &results, "telemetry attached");
    let snap = cfg.telemetry.snapshot();
    assert_eq!(
        snap.counter("grid/points_run"),
        Some(stats.points_run as u64)
    );
    assert_eq!(
        snap.counter("grid/topologies_built"),
        Some(stats.topologies_built as u64)
    );
    assert_eq!(
        snap.counter("grid/instances_built"),
        Some(stats.instances_built as u64)
    );
    // Every load point recorded its simulation post-run.
    assert_eq!(snap.counter("sim/runs"), Some(stats.points_run as u64));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Random thread counts (1–8) and chunk sizes (1–32, larger than the
    /// whole task list included) agree with the single-threaded baseline on
    /// every averaged metric, bit for bit.
    #[test]
    fn grid_is_bit_exact_for_any_pool_shape(threads in 1usize..=8, chunk in 1usize..=32) {
        let mut cfg = tiny();
        cfg.threads = threads;
        cfg.chunk = chunk;
        let (results, stats) = run_grid_with_stats(&cfg).unwrap();
        assert_bit_exact(
            baseline(),
            &results,
            &format!("threads={threads} chunk={chunk}"),
        );
        // The shard pool must also never rebuild a cached world: one
        // topology per (sample, ports), one instance per (cell, sample),
        // regardless of how tasks interleave.
        prop_assert_eq!(stats.topologies_built, 2);
        prop_assert_eq!(stats.instances_built, 8);
        prop_assert_eq!(stats.points_run, 8 * 3);
    }
}
