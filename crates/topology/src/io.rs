//! Topology (de)serialization.
//!
//! JSON is used as the interchange format (the `serde`/`serde_json` pair; see
//! DESIGN.md §7). The schema is intentionally minimal:
//!
//! ```json
//! { "num_nodes": 4, "ports": 4, "links": [[0,1],[1,2],[2,3],[3,0]] }
//! ```

use crate::error::TopologyError;
use crate::graph::Topology;
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct TopologyFile {
    num_nodes: u32,
    ports: u32,
    links: Vec<(u32, u32)>,
}

/// Serializes a topology to its JSON representation.
pub fn topology_to_json(topo: &Topology) -> String {
    let file = TopologyFile {
        num_nodes: topo.num_nodes(),
        ports: topo.ports(),
        links: topo.links().to_vec(),
    };
    // The vendored serializer is infallible on value trees.
    serde_json::to_string_pretty(&file).unwrap_or_default()
}

/// Parses and validates a topology from JSON produced by
/// [`topology_to_json`] (or written by hand).
pub fn topology_from_json(json: &str) -> Result<Topology, TopologyError> {
    let file: TopologyFile =
        serde_json::from_str(json).map_err(|e| TopologyError::Parse(e.to_string()))?;
    Topology::new(file.num_nodes, file.ports, file.links)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn roundtrip_preserves_structure() {
        let t = gen::random_irregular(gen::IrregularParams::paper(24, 4), 11).unwrap();
        let json = topology_to_json(&t);
        let back = topology_from_json(&json).unwrap();
        assert_eq!(back.num_nodes(), t.num_nodes());
        assert_eq!(back.ports(), t.ports());
        assert_eq!(back.links(), t.links());
    }

    #[test]
    fn parse_rejects_garbage_and_invalid_graphs() {
        assert!(matches!(
            topology_from_json("not json"),
            Err(TopologyError::Parse(_))
        ));
        let disconnected = r#"{ "num_nodes": 4, "ports": 4, "links": [[0,1],[2,3]] }"#;
        assert!(matches!(
            topology_from_json(disconnected),
            Err(TopologyError::Disconnected { .. })
        ));
    }

    #[test]
    fn parse_minimal_hand_written_file() {
        let json = r#"{ "num_nodes": 3, "ports": 2, "links": [[0,1],[1,2]] }"#;
        let t = topology_from_json(json).unwrap();
        assert_eq!(t.num_links(), 2);
    }
}
