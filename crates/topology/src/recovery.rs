//! Bidirectional reconfiguration timelines: expanding a recovery-aware
//! [`FaultPlan`] into the admitted sequence of down **and** up transitions
//! under a flap-damping policy.
//!
//! The monotone fault path resolves a plan with [`Topology::fault_masks`],
//! which only ever grows the dead set. A recovering plan instead describes,
//! per element, a sequence of *physical* transitions (down at `cycle`, up at
//! `recovers_at`, repeated by the flap schedule). The control plane does not
//! chase every physical transition: a [`DampingPolicy`] holds a recovered
//! element down for a while before re-admission, doubling the hold on every
//! repeated flap, and cancels a pending re-admission outright when the
//! element fails again first. The result is a [`RecoveryTimeline`]: one
//! [`TimelineStep`] per cycle at which the *admitted* live set changes, each
//! carrying the cumulative down masks over the **original** topology plus
//! the exact delta (failed/revived elements), and a per-element
//! [`ElementDamping`] report proving how much thrash the policy absorbed.
//!
//! Masks are always *derived*: a link is down when it failed explicitly
//! **or** either endpoint switch is down — so recovering a switch revives
//! its incident links (unless they failed on their own), exactly mirroring
//! the way [`Topology::fault_masks`] kills them.

use std::collections::BTreeMap;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::fault::{FaultError, FaultEvent, FaultKind, FaultPlan};
use crate::graph::{LinkId, NodeId, Topology};

/// A failable element of the original topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Element {
    /// A bidirectional link, by original link id.
    Link(LinkId),
    /// A switch, by node id.
    Switch(NodeId),
}

impl std::fmt::Display for Element {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Element::Link(l) => write!(f, "link {l}"),
            Element::Switch(v) => write!(f, "switch {v}"),
        }
    }
}

/// Flap damping: how long a recovered element must hold up before the
/// control plane re-admits it, with exponential back-off on repeat flaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DampingPolicy {
    /// Base hold-down in cycles applied to the first re-admission; 0
    /// disables damping (re-admission exactly at the physical up cycle).
    pub hold_cycles: u32,
    /// Cap on the exponentially growing hold-down.
    pub max_hold: u32,
}

impl DampingPolicy {
    /// No damping: every physical up is admitted at its own cycle.
    pub fn none() -> DampingPolicy {
        DampingPolicy {
            hold_cycles: 0,
            max_hold: 0,
        }
    }

    /// Damping with a base hold of `cycles` and the default 8x cap.
    pub fn hold(cycles: u32) -> DampingPolicy {
        DampingPolicy {
            hold_cycles: cycles,
            max_hold: cycles.saturating_mul(8),
        }
    }

    /// The hold-down applied to an element's re-admission after its
    /// `downs`-th failure: `hold_cycles · 2^(downs-1)`, capped at
    /// `max_hold`.
    pub fn hold_for(&self, downs: u32) -> u32 {
        if self.hold_cycles == 0 {
            return 0;
        }
        let doublings = downs.saturating_sub(1).min(32);
        let hold = u64::from(self.hold_cycles) << doublings;
        u32::try_from(hold.min(u64::from(self.max_hold.max(self.hold_cycles)))).unwrap_or(u32::MAX)
    }
}

impl Default for DampingPolicy {
    fn default() -> DampingPolicy {
        DampingPolicy::none()
    }
}

/// Per-element damping accounting: how many physical transitions occurred
/// and how many the policy actually admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDamping {
    /// The element this entry describes.
    pub element: Element,
    /// Link endpoints, for human-readable reports (`None` for switches).
    pub endpoints: Option<(NodeId, NodeId)>,
    /// Physical down transitions (the flap count as the hardware saw it).
    pub downs: u32,
    /// Physical up transitions.
    pub ups: u32,
    /// Down transitions the control plane admitted (≤ `downs`: an element
    /// that fails again before its pending re-admission never left the
    /// admitted-down state, so no new transition is needed).
    pub admitted_downs: u32,
    /// Up transitions the control plane admitted.
    pub admitted_ups: u32,
    /// Scheduled re-admissions cancelled because the element failed again
    /// during its hold-down.
    pub suppressed_ups: u32,
    /// Largest hold-down applied to this element.
    pub max_hold_applied: u32,
}

/// One cycle at which the admitted live set changes.
///
/// Masks are cumulative (the state *after* this step) over the original
/// topology; the delta lists are derived-mask diffs against the previous
/// step, so a switch failure lists its incident links in `failed_links` and
/// a switch recovery lists the links it revives in `revived_links`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineStep {
    /// Simulator cycle at which this reconfiguration applies.
    pub cycle: u32,
    /// Per-node down mask after this step.
    pub node_down: Vec<bool>,
    /// Per-link derived down mask after this step.
    pub link_down: Vec<bool>,
    /// Links newly dead at this step (original ids, increasing).
    pub failed_links: Vec<LinkId>,
    /// Switches newly dead at this step.
    pub failed_nodes: Vec<NodeId>,
    /// Links re-admitted at this step.
    pub revived_links: Vec<LinkId>,
    /// Switches re-admitted at this step.
    pub revived_nodes: Vec<NodeId>,
}

impl TimelineStep {
    /// True when this step only kills elements (no recovery content).
    pub fn is_down_only(&self) -> bool {
        self.revived_links.is_empty() && self.revived_nodes.is_empty()
    }
}

/// The expanded, damped transition timeline of a recovery-aware plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryTimeline {
    /// Steps in increasing cycle order; consecutive steps differ in at
    /// least one element (derived no-op transitions are dropped).
    pub steps: Vec<TimelineStep>,
    /// Per-element damping accounting, ordered by element.
    pub damping: Vec<ElementDamping>,
    /// Total physical transitions before damping (downs + ups across all
    /// elements). Damping is working when `steps.len()` is smaller than
    /// this for a flapping plan.
    pub raw_transitions: u32,
}

impl RecoveryTimeline {
    /// Expands `plan` against `topo` under `policy`.
    ///
    /// # Errors
    ///
    /// [`FaultError::UnknownLink`] / [`FaultError::UnknownSwitch`] for
    /// events naming missing elements, and [`FaultError::Parse`] for
    /// inconsistent recovery fields or schedules overflowing the cycle
    /// counter.
    pub fn compute(
        topo: &Topology,
        plan: &FaultPlan,
        policy: DampingPolicy,
    ) -> Result<RecoveryTimeline, FaultError> {
        // Physical transitions per element: (cycle, is_down).
        let mut physical: BTreeMap<Element, Vec<(u32, bool)>> = BTreeMap::new();
        for ev in plan.events() {
            ev.validate_recovery().map_err(FaultError::Parse)?;
            let element = resolve_element(topo, ev)?;
            let repeats = ev.flap.map_or(0, |f| f.count);
            let entry = physical.entry(element).or_default();
            for k in 0..=repeats {
                let shift = ev
                    .flap
                    .map_or(Some(0), |f| u32::checked_mul(f.period, k))
                    .and_then(|s| ev.cycle.checked_add(s).map(|_| s))
                    .ok_or_else(|| overflow(ev))?;
                entry.push((ev.cycle + shift, true));
                if let Some(r) = ev.recovers_at {
                    entry.push((r.checked_add(shift).ok_or_else(|| overflow(ev))?, false));
                }
            }
        }

        // Damping: physical transitions -> admitted transitions.
        let mut admitted: Vec<(u32, Element, bool)> = Vec::new();
        let mut damping = Vec::new();
        let mut raw_transitions = 0u32;
        for (element, mut trans) in physical {
            // Downs sort before ups at the same cycle, so a same-cycle
            // down/up pair from overlapping events nets out to down.
            trans.sort_by_key(|&(cycle, is_down)| (cycle, !is_down));
            let mut report = ElementDamping {
                element,
                endpoints: match element {
                    Element::Link(l) => Some(topo.link(l)),
                    Element::Switch(_) => None,
                },
                downs: 0,
                ups: 0,
                admitted_downs: 0,
                admitted_ups: 0,
                suppressed_ups: 0,
                max_hold_applied: 0,
            };
            let mut physically_down = false;
            let mut admitted_down = false;
            let mut pending_up: Option<u32> = None;
            for (t, is_down) in trans {
                raw_transitions += 1;
                if is_down {
                    if physically_down {
                        raw_transitions -= 1; // duplicate down: idempotent
                        continue;
                    }
                    physically_down = true;
                    report.downs += 1;
                    if let Some(p) = pending_up.take() {
                        if p < t {
                            // The re-admission fired before this failure.
                            admitted.push((p, element, false));
                            report.admitted_ups += 1;
                            admitted_down = false;
                        } else {
                            report.suppressed_ups += 1;
                        }
                    }
                    if !admitted_down {
                        admitted.push((t, element, true));
                        report.admitted_downs += 1;
                        admitted_down = true;
                    }
                } else {
                    if !physically_down {
                        raw_transitions -= 1; // duplicate up: idempotent
                        continue;
                    }
                    physically_down = false;
                    report.ups += 1;
                    let hold = policy.hold_for(report.downs);
                    report.max_hold_applied = report.max_hold_applied.max(hold);
                    pending_up = Some(t.saturating_add(hold));
                }
            }
            if let Some(p) = pending_up {
                admitted.push((p, element, false));
                report.admitted_ups += 1;
            }
            damping.push(report);
        }
        admitted.sort_by_key(|&(cycle, element, is_down)| (cycle, element, !is_down));

        // Group admitted transitions into steps and derive cumulative masks.
        let n = topo.num_nodes() as usize;
        let m = topo.num_links() as usize;
        let mut switch_down = vec![false; n];
        let mut link_explicit_down = vec![false; m];
        let mut prev_node = vec![false; n];
        let mut prev_link = vec![false; m];
        let mut steps: Vec<TimelineStep> = Vec::new();
        let mut i = 0;
        while i < admitted.len() {
            let cycle = admitted[i].0;
            while i < admitted.len() && admitted[i].0 == cycle {
                let (_, element, is_down) = admitted[i];
                match element {
                    Element::Link(l) => link_explicit_down[l as usize] = is_down,
                    Element::Switch(v) => switch_down[v as usize] = is_down,
                }
                i += 1;
            }
            let node_down = switch_down.clone();
            let mut link_down = vec![false; m];
            for (l, slot) in link_down.iter_mut().enumerate() {
                let (a, b) = topo.link(l as LinkId);
                *slot = link_explicit_down[l] || node_down[a as usize] || node_down[b as usize];
            }
            let delta = |prev: &[bool], cur: &[bool], want_down: bool| -> Vec<u32> {
                (0..cur.len() as u32)
                    .filter(|&x| {
                        cur[x as usize] == want_down && prev[x as usize] != cur[x as usize]
                    })
                    .collect()
            };
            let step = TimelineStep {
                cycle,
                failed_links: delta(&prev_link, &link_down, true),
                failed_nodes: delta(&prev_node, &node_down, true),
                revived_links: delta(&prev_link, &link_down, false),
                revived_nodes: delta(&prev_node, &node_down, false),
                node_down,
                link_down,
            };
            // A step whose derived masks did not move (e.g. a link revived
            // while an endpoint switch is still down) needs no epoch.
            if step.failed_links.is_empty()
                && step.failed_nodes.is_empty()
                && step.revived_links.is_empty()
                && step.revived_nodes.is_empty()
            {
                continue;
            }
            prev_node.clone_from(&step.node_down);
            prev_link.clone_from(&step.link_down);
            steps.push(step);
        }

        Ok(RecoveryTimeline {
            steps,
            damping,
            raw_transitions,
        })
    }

    /// True when no step revives anything (a schema-v1 plan).
    pub fn is_monotone(&self) -> bool {
        self.steps.iter().all(TimelineStep::is_down_only)
    }

    /// Total up transitions the policy suppressed across all elements.
    pub fn suppressed_ups(&self) -> u32 {
        self.damping.iter().map(|d| d.suppressed_ups).sum()
    }
}

fn resolve_element(topo: &Topology, ev: &FaultEvent) -> Result<Element, FaultError> {
    match ev.kind {
        FaultKind::Link { a, b } => topo
            .link_between(a.min(b), a.max(b))
            .map(Element::Link)
            .ok_or(FaultError::UnknownLink { a, b }),
        FaultKind::Switch { node } => {
            if node >= topo.num_nodes() {
                Err(FaultError::UnknownSwitch {
                    node,
                    num_nodes: topo.num_nodes(),
                })
            } else {
                Ok(Element::Switch(node))
            }
        }
    }
}

fn overflow(ev: &FaultEvent) -> FaultError {
    FaultError::Parse(format!(
        "event at cycle {}: flap schedule overflows the cycle counter",
        ev.cycle
    ))
}

/// Parameters of a seeded chaos schedule (see [`chaos_plan`]).
#[derive(Debug, Clone, Copy)]
pub struct ChaosParams {
    /// Fault events to accept.
    pub events: u32,
    /// Activation-cycle window (inclusive).
    pub window: (u32, u32),
    /// Outage-duration range (inclusive) for recovering events.
    pub outage: (u32, u32),
    /// Every k-th accepted event is a switch fault (0 disables).
    pub switch_every: u32,
    /// Every k-th accepted event carries a flap schedule (0 disables).
    pub flap_every: u32,
    /// Down/up repeats per flapping event.
    pub flap_count: u32,
    /// Every k-th accepted event is permanent — never recovers (0 disables).
    pub permanent_every: u32,
}

impl Default for ChaosParams {
    fn default() -> ChaosParams {
        ChaosParams {
            events: 8,
            window: (2_000, 12_000),
            outage: (500, 3_000),
            switch_every: 4,
            flap_every: 3,
            flap_count: 3,
            permanent_every: 5,
        }
    }
}

/// Draws a seeded chaos plan against `topo`: randomized link/switch
/// failures with recovery windows and periodic flap schedules, greedily
/// filtered so that **every step of the damped timeline** leaves the
/// surviving graph connected (and therefore feasible for repair).
/// Deterministic per seed.
///
/// # Errors
///
/// [`FaultError::Unsatisfiable`] when not a single event can be accepted
/// within the attempt budget (e.g. on a tree topology where every link is a
/// bridge).
pub fn chaos_plan(
    topo: &Topology,
    params: &ChaosParams,
    policy: DampingPolicy,
    seed: u64,
) -> Result<FaultPlan, FaultError> {
    chaos_plan_filtered(topo, params, policy, seed, |_| true)
}

/// [`chaos_plan`] with an extra acceptance gate: a candidate plan (the
/// accepted prefix plus one trial event) is kept only when it survives
/// every damped timeline step **and** `accept` approves the whole plan.
/// Callers use the gate to enforce properties this crate cannot see —
/// e.g. that every repaired epoch transition certifies deadlock-free.
/// Deterministic per seed for a deterministic `accept`.
///
/// # Errors
///
/// [`FaultError::Unsatisfiable`] when no event is accepted within the
/// attempt budget.
pub fn chaos_plan_filtered(
    topo: &Topology,
    params: &ChaosParams,
    policy: DampingPolicy,
    seed: u64,
    mut accept: impl FnMut(&FaultPlan) -> bool,
) -> Result<FaultPlan, FaultError> {
    let (lo, hi) = (
        params.window.0.min(params.window.1),
        params.window.0.max(params.window.1),
    );
    let (olo, ohi) = (
        params.outage.0.min(params.outage.1).max(1),
        params.outage.0.max(params.outage.1).max(1),
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut accepted: Vec<FaultEvent> = Vec::new();
    let mut attempts = 0u32;
    let budget = params.events.saturating_mul(25).max(50);
    while (accepted.len() as u32) < params.events && attempts < budget {
        attempts += 1;
        let ordinal = accepted.len() as u32 + 1;
        let kind = if params.switch_every > 0 && ordinal.is_multiple_of(params.switch_every) {
            FaultKind::Switch {
                node: rng.gen_range(0..topo.num_nodes()),
            }
        } else {
            let (a, b) = topo.link(rng.gen_range(0..topo.num_links()));
            FaultKind::Link { a, b }
        };
        let cycle = rng.gen_range(lo..=hi);
        let permanent =
            params.permanent_every > 0 && ordinal.is_multiple_of(params.permanent_every);
        let mut ev = if permanent {
            FaultEvent::down(cycle, kind)
        } else {
            let outage = rng.gen_range(olo..=ohi);
            match cycle.checked_add(outage) {
                Some(r) => FaultEvent::recovering(cycle, kind, r),
                None => continue,
            }
        };
        if !permanent && params.flap_every > 0 && ordinal.is_multiple_of(params.flap_every) {
            let outage = ev.recovers_at.expect("recovering event") - ev.cycle;
            // Period comfortably beyond the outage so repeats never overlap.
            let period = outage
                .saturating_add(rng.gen_range(olo..=ohi))
                .max(outage + 1);
            ev = ev.with_flap(period, params.flap_count);
        }
        let mut trial = accepted.clone();
        trial.push(ev);
        let plan = FaultPlan::scripted(trial);
        let Ok(timeline) = RecoveryTimeline::compute(topo, &plan, policy) else {
            continue;
        };
        let survivable = timeline
            .steps
            .iter()
            .all(|s| topo.degrade_from_masks(&s.node_down, &s.link_down).is_ok());
        if survivable && accept(&plan) {
            accepted = plan.events().to_vec();
        }
    }
    if accepted.is_empty() {
        return Err(FaultError::Unsatisfiable(format!(
            "chaos generator accepted no events after {attempts} attempts"
        )));
    }
    Ok(FaultPlan::scripted(accepted))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_with_diagonal() -> Topology {
        // 0-1, 1-2, 2-3, 0-3, 1-3
        Topology::new(4, 4, [(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]).unwrap()
    }

    fn masks_of(t: &Topology, plan: &FaultPlan) -> (Vec<bool>, Vec<bool>) {
        t.fault_masks(plan).unwrap()
    }

    #[test]
    fn down_only_plans_match_the_monotone_masks() {
        let t = square_with_diagonal();
        let plan = FaultPlan::scripted([
            FaultEvent::down(10, FaultKind::Link { a: 1, b: 3 }),
            FaultEvent::down(20, FaultKind::Switch { node: 2 }),
        ]);
        let tl = RecoveryTimeline::compute(&t, &plan, DampingPolicy::none()).unwrap();
        assert!(tl.is_monotone());
        assert_eq!(tl.steps.len(), 2);
        assert_eq!(tl.steps[0].cycle, 10);
        assert_eq!(tl.steps[1].cycle, 20);
        let (nd, ld) = masks_of(&t, &plan);
        assert_eq!(tl.steps[1].node_down, nd);
        assert_eq!(tl.steps[1].link_down, ld);
        // The switch step lists its induced link deaths.
        assert_eq!(tl.steps[1].failed_nodes, vec![2]);
        assert_eq!(tl.steps[1].failed_links.len(), 2);
    }

    #[test]
    fn recovery_returns_the_masks_to_pristine() {
        let t = square_with_diagonal();
        let plan = FaultPlan::scripted([FaultEvent::recovering(
            10,
            FaultKind::Link { a: 1, b: 3 },
            50,
        )]);
        let tl = RecoveryTimeline::compute(&t, &plan, DampingPolicy::none()).unwrap();
        assert_eq!(tl.steps.len(), 2);
        assert!(!tl.is_monotone());
        let up = &tl.steps[1];
        assert_eq!(up.cycle, 50);
        assert_eq!(up.revived_links, vec![t.link_between(1, 3).unwrap()]);
        assert!(up.node_down.iter().all(|&d| !d));
        assert!(up.link_down.iter().all(|&d| !d));
    }

    #[test]
    fn switch_recovery_revives_incident_links_but_not_explicit_failures() {
        let t = square_with_diagonal();
        let l13 = t.link_between(1, 3).unwrap();
        let plan = FaultPlan::scripted([
            // Link 1-3 fails for good at cycle 5.
            FaultEvent::down(5, FaultKind::Link { a: 1, b: 3 }),
            // Switch 1 fails at 10 and recovers at 40.
            FaultEvent::recovering(10, FaultKind::Switch { node: 1 }, 40),
        ]);
        let tl = RecoveryTimeline::compute(&t, &plan, DampingPolicy::none()).unwrap();
        assert_eq!(tl.steps.len(), 3);
        let up = &tl.steps[2];
        assert_eq!(up.revived_nodes, vec![1]);
        // Links 0-1 and 1-2 come back; 1-3 stays dead (explicit failure).
        assert!(!up.revived_links.contains(&l13));
        assert_eq!(up.revived_links.len(), 2);
        assert!(up.link_down[l13 as usize]);
    }

    #[test]
    fn flap_damping_suppresses_readmissions_and_backs_off() {
        let t = square_with_diagonal();
        // Down 100..200, flapping every 300 cycles, 3 repeats: physical
        // transitions at 100/200, 400/500, 700/800, 1000/1100.
        let plan =
            FaultPlan::scripted([
                FaultEvent::recovering(100, FaultKind::Link { a: 1, b: 3 }, 200).with_flap(300, 3),
            ]);
        let raw = RecoveryTimeline::compute(&t, &plan, DampingPolicy::none()).unwrap();
        assert_eq!(raw.raw_transitions, 8);
        assert_eq!(raw.steps.len(), 8);

        // Hold 250: re-admission after the up at 200 is scheduled for 450,
        // but the link fails again at 400 — suppressed. Holds double: 500
        // after the second down (up at 500 -> 1000, next down at 700 —
        // suppressed), 1000 after the third (up at 800 -> 1800, down at
        // 1000 — suppressed), then 2000 after the fourth, admitted at
        // 1100 + 2000 = 3100.
        let damped = RecoveryTimeline::compute(&t, &plan, DampingPolicy::hold(250)).unwrap();
        assert_eq!(damped.raw_transitions, 8);
        assert_eq!(damped.steps.len(), 2, "one admitted down, one admitted up");
        assert_eq!(damped.steps[0].cycle, 100);
        assert_eq!(damped.steps[1].cycle, 3100);
        assert_eq!(damped.suppressed_ups(), 3);
        let d = &damped.damping[0];
        assert_eq!((d.downs, d.ups), (4, 4));
        assert_eq!((d.admitted_downs, d.admitted_ups), (1, 1));
        assert_eq!(d.max_hold_applied, 2000);
        assert!(damped.steps.len() < damped.raw_transitions as usize);
    }

    #[test]
    fn hold_for_doubles_and_caps() {
        let p = DampingPolicy::hold(100);
        assert_eq!(p.hold_for(1), 100);
        assert_eq!(p.hold_for(2), 200);
        assert_eq!(p.hold_for(4), 800);
        assert_eq!(p.hold_for(10), 800, "capped at 8x");
        assert_eq!(DampingPolicy::none().hold_for(7), 0);
    }

    #[test]
    fn chaos_plans_are_deterministic_and_survivable() {
        let t = crate::gen::random_irregular(crate::gen::IrregularParams::paper(32, 4), 7).unwrap();
        let params = ChaosParams::default();
        let policy = DampingPolicy::hold(200);
        let a = chaos_plan(&t, &params, policy, 11).unwrap();
        let b = chaos_plan(&t, &params, policy, 11).unwrap();
        assert_eq!(a, b);
        assert!(a.has_recovery());
        let tl = RecoveryTimeline::compute(&t, &a, policy).unwrap();
        assert!(!tl.steps.is_empty());
        for s in &tl.steps {
            assert!(t.degrade_from_masks(&s.node_down, &s.link_down).is_ok());
        }
    }
}
