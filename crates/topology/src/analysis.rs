//! Structural analysis of topologies and coordinated trees: the quantities
//! a network architect inspects before committing to a routing (degree and
//! level distributions, cross-link share, articulation points, path-length
//! statistics).

use crate::coord_tree::CoordinatedTree;
use crate::graph::{NodeId, Topology};

/// Degree statistics of a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: u32,
    /// Maximum degree.
    pub max: u32,
    /// Mean degree.
    pub mean: f64,
    /// `histogram[d]` — number of switches with degree `d`.
    pub histogram: Vec<u32>,
}

/// Computes degree statistics.
pub fn degree_stats(topo: &Topology) -> DegreeStats {
    let degrees: Vec<u32> = (0..topo.num_nodes()).map(|v| topo.degree(v)).collect();
    let max = degrees.iter().copied().max().unwrap_or(0);
    let min = degrees.iter().copied().min().unwrap_or(0);
    let mut histogram = vec![0u32; max as usize + 1];
    for &d in &degrees {
        histogram[d as usize] += 1;
    }
    DegreeStats {
        min,
        max,
        mean: degrees.iter().map(|&d| d as f64).sum::<f64>() / degrees.len() as f64,
        histogram,
    }
}

/// Per-level structure of a coordinated tree.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelProfile {
    /// `population[y]` — switches at BFS level `y`.
    pub population: Vec<u32>,
    /// `leaves[y]` — leaves at level `y`.
    pub leaves: Vec<u32>,
    /// Fraction of links that are cross links.
    pub cross_link_fraction: f64,
    /// Cross links connecting two nodes of the same level.
    pub same_level_cross_links: u32,
}

/// Computes the level profile of a coordinated tree.
pub fn level_profile(topo: &Topology, tree: &CoordinatedTree) -> LevelProfile {
    let levels = tree.max_level() as usize + 1;
    let mut population = vec![0u32; levels];
    let mut leaves = vec![0u32; levels];
    for v in 0..topo.num_nodes() {
        population[tree.y(v) as usize] += 1;
        if tree.is_leaf(v) {
            leaves[tree.y(v) as usize] += 1;
        }
    }
    let mut cross = 0u32;
    let mut same_level = 0u32;
    for l in 0..topo.num_links() {
        if !tree.is_tree_link(l) {
            cross += 1;
            let (a, b) = topo.link(l);
            if tree.y(a) == tree.y(b) {
                same_level += 1;
            }
        }
    }
    LevelProfile {
        population,
        leaves,
        cross_link_fraction: cross as f64 / topo.num_links() as f64,
        same_level_cross_links: same_level,
    }
}

/// Articulation points (cut vertices): switches whose failure disconnects
/// the network. An irregular fabric with none is 2-connected — every pair
/// of switches survives any single-switch failure.
pub fn articulation_points(topo: &Topology) -> Vec<NodeId> {
    // Iterative Tarjan low-link. disc[v] = 0 means unvisited.
    let n = topo.num_nodes() as usize;
    let mut disc = vec![0u32; n];
    let mut low = vec![0u32; n];
    let mut parent = vec![u32::MAX; n];
    let mut is_art = vec![false; n];
    let mut timer = 1u32;

    // Explicit DFS stack: (node, index into neighbor list).
    let mut stack: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if disc[root as usize] != 0 {
            continue;
        }
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        stack.push((root, 0));
        let mut root_children = 0u32;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            let neighbors = topo.neighbors(v);
            if *i < neighbors.len() {
                let (w, _) = neighbors[*i];
                *i += 1;
                if disc[w as usize] == 0 {
                    parent[w as usize] = v;
                    if v == root {
                        root_children += 1;
                    }
                    disc[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    stack.push((w, 0));
                } else if w != parent[v as usize] {
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                    if p != root && low[v as usize] >= disc[p as usize] {
                        is_art[p as usize] = true;
                    }
                }
            }
        }
        if root_children > 1 {
            is_art[root as usize] = true;
        }
    }
    (0..topo.num_nodes())
        .filter(|&v| is_art[v as usize])
        .collect()
}

/// All-pairs hop-distance statistics of the raw topology (no routing
/// restrictions): the lower bound any routing algorithm is compared
/// against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistanceStats {
    /// Mean hop distance over ordered pairs.
    pub mean: f64,
    /// Maximum hop distance.
    pub diameter: u32,
}

/// BFS all-pairs distance statistics.
pub fn distance_stats(topo: &Topology) -> DistanceStats {
    let n = topo.num_nodes();
    let mut sum = 0u64;
    let mut diameter = 0u32;
    let mut dist = vec![u32::MAX; n as usize];
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n {
        dist.iter_mut().for_each(|d| *d = u32::MAX);
        dist[s as usize] = 0;
        queue.clear();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &(w, _) in topo.neighbors(v) {
                if dist[w as usize] == u32::MAX {
                    dist[w as usize] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
            }
        }
        for t in 0..n {
            if t != s {
                sum += dist[t as usize] as u64;
                diameter = diameter.max(dist[t as usize]);
            }
        }
    }
    DistanceStats {
        mean: if n > 1 {
            sum as f64 / (n as u64 * (n as u64 - 1)) as f64
        } else {
            0.0
        },
        diameter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord_tree::PreorderPolicy;
    use crate::gen;

    #[test]
    fn degree_stats_of_a_star() {
        let s = gen::star(5).unwrap();
        let d = degree_stats(&s);
        assert_eq!(d.min, 1);
        assert_eq!(d.max, 4);
        assert!((d.mean - 8.0 / 5.0).abs() < 1e-12);
        assert_eq!(d.histogram[1], 4);
        assert_eq!(d.histogram[4], 1);
    }

    #[test]
    fn level_profile_of_a_binary_tree() {
        let t = gen::kary_tree(7, 2).unwrap();
        let tree = CoordinatedTree::build(&t, PreorderPolicy::M1, 0).unwrap();
        let p = level_profile(&t, &tree);
        assert_eq!(p.population, vec![1, 2, 4]);
        assert_eq!(p.leaves, vec![0, 0, 4]);
        assert_eq!(p.cross_link_fraction, 0.0);
        assert_eq!(p.same_level_cross_links, 0);
    }

    #[test]
    fn level_profile_counts_cross_links() {
        // Triangle: 3 links, 2 in the BFS tree, 1 same-level cross link.
        let t = gen::complete(3).unwrap();
        let tree = CoordinatedTree::build(&t, PreorderPolicy::M1, 0).unwrap();
        let p = level_profile(&t, &tree);
        assert!((p.cross_link_fraction - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.same_level_cross_links, 1);
    }

    #[test]
    fn articulation_points_of_a_path_and_ring() {
        let path = crate::Topology::new(4, 2, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(articulation_points(&path), vec![1, 2]);
        let ring = gen::ring(6).unwrap();
        assert!(articulation_points(&ring).is_empty());
    }

    #[test]
    fn articulation_point_of_two_triangles() {
        // Two triangles sharing node 2: node 2 is the unique cut vertex.
        let t =
            crate::Topology::new(5, 4, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]).unwrap();
        assert_eq!(articulation_points(&t), vec![2]);
    }

    #[test]
    fn saturated_random_fabrics_are_usually_2_connected() {
        let mut with_cuts = 0;
        for seed in 0..6 {
            let t = gen::random_irregular(gen::IrregularParams::paper(32, 4), seed).unwrap();
            if !articulation_points(&t).is_empty() {
                with_cuts += 1;
            }
        }
        // Port-saturated random graphs are rarely 1-connected; allow some
        // but not all.
        assert!(with_cuts < 6);
    }

    #[test]
    fn distance_stats_match_diameter() {
        let t = gen::mesh(3, 3).unwrap();
        let d = distance_stats(&t);
        assert_eq!(d.diameter, t.diameter());
        assert_eq!(d.diameter, 4);
        assert!(d.mean > 1.0 && d.mean < 4.0);
    }
}
