use crate::graph::{LinkId, NodeId, Topology};

/// Identifier of a *communication channel*: one of the two directed halves of
/// a bidirectional link (paper Definition 1). Channel `2*l` goes from the
/// smaller endpoint of link `l` to the larger one; channel `2*l + 1` is its
/// reverse.
pub type ChannelId = u32;

/// Dense lookup tables mapping channels to their endpoints and back, plus
/// per-node input/output channel lists (the switch "ports").
///
/// Ports are numbered per node: output port `p` of node `v` is the `p`-th
/// outgoing channel of `v` in increasing neighbor order, and symmetrically
/// for input ports. This gives every routing/simulation structure a compact
/// `(node, port)` addressing scheme.
#[derive(Debug, Clone)]
pub struct ChannelTable {
    /// `start[c]` / `sink[c]` — the endpoints of channel `c`.
    start: Vec<NodeId>,
    sink: Vec<NodeId>,
    /// CSR offsets into `out_channels` / `in_channels`, length `n + 1`.
    offsets: Vec<u32>,
    /// Outgoing channels of each node, in increasing neighbor order.
    out_channels: Vec<ChannelId>,
    /// Incoming channels of each node, in increasing neighbor order.
    in_channels: Vec<ChannelId>,
    /// `out_port[c]` — index of `c` within its start node's output list.
    out_port: Vec<u8>,
    /// `in_port[c]` — index of `c` within its sink node's input list.
    in_port: Vec<u8>,
}

impl ChannelTable {
    /// Builds the channel table for a topology.
    pub fn build(topo: &Topology) -> Self {
        let n = topo.num_nodes() as usize;
        let nch = 2 * topo.num_links() as usize;
        let mut start = vec![0u32; nch];
        let mut sink = vec![0u32; nch];
        for l in 0..topo.num_links() {
            let (a, b) = topo.link(l);
            start[(2 * l) as usize] = a;
            sink[(2 * l) as usize] = b;
            start[(2 * l + 1) as usize] = b;
            sink[(2 * l + 1) as usize] = a;
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + topo.degree(v as u32);
        }
        let mut out_channels = vec![0u32; nch];
        let mut in_channels = vec![0u32; nch];
        let mut out_port = vec![0u8; nch];
        let mut in_port = vec![0u8; nch];
        for v in 0..topo.num_nodes() {
            let base = offsets[v as usize] as usize;
            for (p, &(w, l)) in topo.neighbors(v).iter().enumerate() {
                let (a, _) = topo.link(l);
                let (to_w, from_w) = if a == v {
                    (2 * l, 2 * l + 1)
                } else {
                    (2 * l + 1, 2 * l)
                };
                debug_assert_eq!(start[to_w as usize], v);
                debug_assert_eq!(sink[to_w as usize], w);
                out_channels[base + p] = to_w;
                in_channels[base + p] = from_w;
                out_port[to_w as usize] = p as u8;
                in_port[from_w as usize] = p as u8;
            }
        }
        ChannelTable {
            start,
            sink,
            offsets,
            out_channels,
            in_channels,
            out_port,
            in_port,
        }
    }

    /// Total number of channels (`2 |E|`).
    #[inline]
    pub fn num_channels(&self) -> u32 {
        self.start.len() as u32
    }

    /// Start node of channel `c` (the sender).
    #[inline]
    pub fn start(&self, c: ChannelId) -> NodeId {
        self.start[c as usize]
    }

    /// Sink node of channel `c` (the receiver).
    #[inline]
    pub fn sink(&self, c: ChannelId) -> NodeId {
        self.sink[c as usize]
    }

    /// The opposite channel of the same link.
    #[inline]
    pub fn reverse(&self, c: ChannelId) -> ChannelId {
        c ^ 1
    }

    /// The link a channel belongs to.
    #[inline]
    pub fn link_of(&self, c: ChannelId) -> LinkId {
        c / 2
    }

    /// Output channels of node `v` (its channels toward neighbors), in
    /// increasing neighbor order.
    #[inline]
    pub fn outputs(&self, v: NodeId) -> &[ChannelId] {
        &self.out_channels[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Input channels of node `v`, in increasing neighbor order.
    #[inline]
    pub fn inputs(&self, v: NodeId) -> &[ChannelId] {
        &self.in_channels[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Port index of output channel `c` at its start node.
    #[inline]
    pub fn out_port(&self, c: ChannelId) -> u8 {
        self.out_port[c as usize]
    }

    /// Port index of input channel `c` at its sink node.
    #[inline]
    pub fn in_port(&self, c: ChannelId) -> u8 {
        self.in_port[c as usize]
    }

    /// Output channel at `(node, port)`.
    #[inline]
    pub fn output_at(&self, v: NodeId, port: u8) -> ChannelId {
        self.outputs(v)[port as usize]
    }

    /// Input channel at `(node, port)`.
    #[inline]
    pub fn input_at(&self, v: NodeId, port: u8) -> ChannelId {
        self.inputs(v)[port as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_endpoints_and_reverse() {
        let topo = Topology::new(3, 4, [(0, 1), (1, 2)]).unwrap();
        let ct = ChannelTable::build(&topo);
        assert_eq!(ct.num_channels(), 4);
        for c in 0..ct.num_channels() {
            assert_eq!(ct.start(c), ct.sink(ct.reverse(c)));
            assert_eq!(ct.sink(c), ct.start(ct.reverse(c)));
            assert_eq!(ct.link_of(c), ct.link_of(ct.reverse(c)));
        }
    }

    #[test]
    fn ports_are_consistent() {
        let topo = Topology::new(4, 4, [(0, 1), (0, 2), (0, 3), (1, 2)]).unwrap();
        let ct = ChannelTable::build(&topo);
        for v in 0..topo.num_nodes() {
            assert_eq!(ct.outputs(v).len() as u32, topo.degree(v));
            assert_eq!(ct.inputs(v).len() as u32, topo.degree(v));
            for (p, &c) in ct.outputs(v).iter().enumerate() {
                assert_eq!(ct.start(c), v);
                assert_eq!(ct.out_port(c), p as u8);
                assert_eq!(ct.output_at(v, p as u8), c);
            }
            for (p, &c) in ct.inputs(v).iter().enumerate() {
                assert_eq!(ct.sink(c), v);
                assert_eq!(ct.in_port(c), p as u8);
                assert_eq!(ct.input_at(v, p as u8), c);
            }
        }
    }

    #[test]
    fn outputs_follow_neighbor_order() {
        let topo = Topology::new(4, 4, [(2, 0), (0, 3), (1, 0)]).unwrap();
        let ct = ChannelTable::build(&topo);
        let sinks: Vec<_> = ct.outputs(0).iter().map(|&c| ct.sink(c)).collect();
        assert_eq!(sinks, vec![1, 2, 3]);
    }
}
