use crate::error::TopologyError;
use serde::{Deserialize, Serialize};

/// Identifier of a switch in the network (paper: a node of `G = (V, E)`).
pub type NodeId = u32;

/// Identifier of a bidirectional link (an element of `E`).
pub type LinkId = u32;

/// A switch-based network with arbitrary (irregular) interconnection,
/// per Definition 1 of the paper: an undirected graph `G = (V, E)` where `V`
/// is the set of switches and `E` the set of bidirectional links.
///
/// The structure is immutable after construction and validated to be
/// simple (no self-loops, no duplicate links), connected, and within the
/// per-switch port budget. Adjacency is stored in CSR form so traversals
/// allocate nothing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    num_nodes: u32,
    /// Per-switch port budget (number of ports available for inter-switch
    /// links; the attached processor does not count against it).
    ports: u32,
    /// Endpoint pairs, `links[l] = (a, b)` with `a < b`.
    links: Vec<(NodeId, NodeId)>,
    /// CSR offsets into `adj`, length `num_nodes + 1`.
    offsets: Vec<u32>,
    /// Flattened neighbor lists; each entry is `(neighbor, link)`.
    /// Neighbors of every node are sorted by id.
    adj: Vec<(NodeId, LinkId)>,
}

impl Topology {
    /// Builds and validates a topology from a list of bidirectional links.
    ///
    /// `ports` is the per-switch port budget: a node's degree must not
    /// exceed it. The graph must be simple and connected.
    pub fn new(
        num_nodes: u32,
        ports: u32,
        links: impl IntoIterator<Item = (NodeId, NodeId)>,
    ) -> Result<Self, TopologyError> {
        if num_nodes == 0 {
            return Err(TopologyError::EmptyNetwork);
        }
        let mut canon: Vec<(NodeId, NodeId)> = Vec::new();
        for (a, b) in links {
            if a >= num_nodes {
                return Err(TopologyError::NodeOutOfRange { node: a, num_nodes });
            }
            if b >= num_nodes {
                return Err(TopologyError::NodeOutOfRange { node: b, num_nodes });
            }
            if a == b {
                return Err(TopologyError::SelfLoop { node: a });
            }
            canon.push((a.min(b), a.max(b)));
        }
        let mut sorted = canon.clone();
        sorted.sort_unstable();
        for w in sorted.windows(2) {
            if w[0] == w[1] {
                return Err(TopologyError::DuplicateLink {
                    a: w[0].0,
                    b: w[0].1,
                });
            }
        }

        // Degree / CSR construction.
        let n = num_nodes as usize;
        let mut degree = vec![0u32; n];
        for &(a, b) in &canon {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        for (node, &d) in degree.iter().enumerate() {
            if d > ports {
                return Err(TopologyError::PortBudgetExceeded {
                    node: node as u32,
                    degree: d,
                    ports,
                });
            }
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut adj = vec![(0u32, 0u32); canon.len() * 2];
        for (l, &(a, b)) in canon.iter().enumerate() {
            adj[cursor[a as usize] as usize] = (b, l as u32);
            cursor[a as usize] += 1;
            adj[cursor[b as usize] as usize] = (a, l as u32);
            cursor[b as usize] += 1;
        }
        for i in 0..n {
            adj[offsets[i] as usize..offsets[i + 1] as usize].sort_unstable();
        }

        let topo = Topology {
            num_nodes,
            ports,
            links: canon,
            offsets,
            adj,
        };
        let reached = topo.count_reachable(0);
        if reached != num_nodes {
            return Err(TopologyError::Disconnected { reached, num_nodes });
        }
        Ok(topo)
    }

    /// Number of switches `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of bidirectional links `|E|`.
    #[inline]
    pub fn num_links(&self) -> u32 {
        self.links.len() as u32
    }

    /// Per-switch port budget this topology was validated against.
    #[inline]
    pub fn ports(&self) -> u32 {
        self.ports
    }

    /// The endpoints `(a, b)` of link `l`, with `a < b`.
    #[inline]
    pub fn link(&self, l: LinkId) -> (NodeId, NodeId) {
        self.links[l as usize]
    }

    /// All links as `(a, b)` pairs with `a < b`.
    #[inline]
    pub fn links(&self) -> &[(NodeId, NodeId)] {
        &self.links
    }

    /// Degree (number of inter-switch links) of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> u32 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Neighbors of `v` in increasing id order, with the connecting link.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, LinkId)] {
        &self.adj[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Returns the link between `a` and `b` if one exists.
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.neighbors(a)
            .binary_search_by_key(&b, |&(n, _)| n)
            .ok()
            .map(|i| self.neighbors(a)[i].1)
    }

    /// Maximum node degree in the topology.
    pub fn max_degree(&self) -> u32 {
        (0..self.num_nodes)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average node degree.
    pub fn avg_degree(&self) -> f64 {
        2.0 * self.num_links() as f64 / self.num_nodes as f64
    }

    /// Number of nodes reachable from `start` (used by the connectivity
    /// validation; exposed for diagnostics).
    pub fn count_reachable(&self, start: NodeId) -> u32 {
        let n = self.num_nodes as usize;
        let mut seen = vec![false; n];
        let mut stack = vec![start];
        seen[start as usize] = true;
        let mut count = 0u32;
        while let Some(v) = stack.pop() {
            count += 1;
            for &(w, _) in self.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        count
    }

    /// Graph diameter in hops (BFS from every node). Intended for reporting,
    /// not hot paths.
    pub fn diameter(&self) -> u32 {
        let n = self.num_nodes as usize;
        let mut diameter = 0u32;
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for s in 0..self.num_nodes {
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            dist[s as usize] = 0;
            queue.clear();
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                for &(w, _) in self.neighbors(v) {
                    if dist[w as usize] == u32::MAX {
                        dist[w as usize] = dist[v as usize] + 1;
                        queue.push_back(w);
                    }
                }
            }
            diameter = diameter.max(dist.iter().copied().max().unwrap_or(0));
        }
        diameter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Topology {
        Topology::new(3, 4, [(0, 1), (1, 2), (0, 2)]).unwrap()
    }

    #[test]
    fn builds_simple_triangle() {
        let t = triangle();
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_links(), 3);
        assert_eq!(t.degree(0), 2);
        assert_eq!(
            t.neighbors(1).iter().map(|&(n, _)| n).collect::<Vec<_>>(),
            vec![0, 2]
        );
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            Topology::new(0, 4, []).unwrap_err(),
            TopologyError::EmptyNetwork
        );
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Topology::new(2, 4, [(0, 0), (0, 1)]).unwrap_err(),
            TopologyError::SelfLoop { node: 0 }
        );
    }

    #[test]
    fn rejects_duplicate_even_if_reversed() {
        assert_eq!(
            Topology::new(2, 4, [(0, 1), (1, 0)]).unwrap_err(),
            TopologyError::DuplicateLink { a: 0, b: 1 }
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Topology::new(2, 4, [(0, 5)]).unwrap_err(),
            TopologyError::NodeOutOfRange {
                node: 5,
                num_nodes: 2
            }
        );
    }

    #[test]
    fn rejects_disconnected() {
        assert_eq!(
            Topology::new(4, 4, [(0, 1), (2, 3)]).unwrap_err(),
            TopologyError::Disconnected {
                reached: 2,
                num_nodes: 4
            }
        );
    }

    #[test]
    fn rejects_port_overflow() {
        // Node 0 with degree 3 under a 2-port budget.
        assert_eq!(
            Topology::new(4, 2, [(0, 1), (0, 2), (0, 3)]).unwrap_err(),
            TopologyError::PortBudgetExceeded {
                node: 0,
                degree: 3,
                ports: 2
            }
        );
    }

    #[test]
    fn link_between_finds_links_both_ways() {
        let t = triangle();
        let l = t.link_between(2, 0).unwrap();
        assert_eq!(t.link(l), (0, 2));
        assert_eq!(t.link_between(0, 2), Some(l));
        // Non-edges return None on larger graphs.
        let path = Topology::new(3, 4, [(0, 1), (1, 2)]).unwrap();
        assert_eq!(path.link_between(0, 2), None);
    }

    #[test]
    fn diameter_of_path() {
        let path = Topology::new(4, 4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(path.diameter(), 3);
        assert_eq!(triangle().diameter(), 1);
    }

    #[test]
    fn degree_statistics() {
        let star = Topology::new(4, 3, [(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(star.max_degree(), 3);
        assert!((star.avg_degree() - 1.5).abs() < 1e-12);
    }
}
