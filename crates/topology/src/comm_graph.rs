use crate::channel::{ChannelId, ChannelTable};
use crate::coord_tree::CoordinatedTree;
use crate::graph::{NodeId, Topology};

/// Whether a link belongs to the spanning tree (`E'`) or is a cross link
/// (`E - E'`), paper Definition 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// A link of the spanning tree (`E'`).
    Tree,
    /// A link outside the spanning tree (`E - E'`).
    Cross,
}

/// The geometric relation of a channel's sink node relative to its start
/// node in coordinated-tree coordinates (paper Definition 4).
///
/// `X` is a unique preorder index so `X(v2) == X(v1)` never happens; the six
/// relations below are exhaustive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quadrant {
    /// `X(v2) < X(v1)` and `Y(v2) < Y(v1)`.
    LeftUp,
    /// `X(v2) < X(v1)` and `Y(v2) == Y(v1)`.
    Left,
    /// `X(v2) < X(v1)` and `Y(v2) > Y(v1)`.
    LeftDown,
    /// `X(v2) > X(v1)` and `Y(v2) < Y(v1)`.
    RightUp,
    /// `X(v2) > X(v1)` and `Y(v2) == Y(v1)`.
    Right,
    /// `X(v2) > X(v1)` and `Y(v2) > Y(v1)`.
    RightDown,
}

impl Quadrant {
    /// Computes the relation of `to` as seen from `from`.
    pub fn of(tree: &CoordinatedTree, from: NodeId, to: NodeId) -> Quadrant {
        let (x1, y1) = (tree.x(from), tree.y(from));
        let (x2, y2) = (tree.x(to), tree.y(to));
        debug_assert_ne!(x1, x2, "preorder X coordinates are unique");
        if x2 < x1 {
            match y2.cmp(&y1) {
                std::cmp::Ordering::Less => Quadrant::LeftUp,
                std::cmp::Ordering::Equal => Quadrant::Left,
                std::cmp::Ordering::Greater => Quadrant::LeftDown,
            }
        } else {
            match y2.cmp(&y1) {
                std::cmp::Ordering::Less => Quadrant::RightUp,
                std::cmp::Ordering::Equal => Quadrant::Right,
                std::cmp::Ordering::Greater => Quadrant::RightDown,
            }
        }
    }

    /// True if the sink is strictly closer to the root level (`Y` decreases).
    pub fn goes_up(self) -> bool {
        matches!(self, Quadrant::LeftUp | Quadrant::RightUp)
    }

    /// True if the sink is strictly deeper (`Y` increases).
    pub fn goes_down(self) -> bool {
        matches!(self, Quadrant::LeftDown | Quadrant::RightDown)
    }

    /// True if `X` decreases.
    pub fn goes_left(self) -> bool {
        matches!(self, Quadrant::LeftUp | Quadrant::Left | Quadrant::LeftDown)
    }
}

/// The eight channel directions of the DOWN/UP communication graph
/// (paper Definition 5). Tree-link channels use the `*_TREE` directions;
/// cross-link channels use the six `*_CROSS` directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Direction {
    /// Tree channel toward the parent (`left-up` relation).
    LuTree = 0,
    /// Tree channel toward a child (`right-down` relation).
    RdTree = 1,
    /// Cross channel whose sink is left-up of its start.
    LuCross = 2,
    /// Cross channel whose sink is left-down of its start.
    LdCross = 3,
    /// Cross channel whose sink is right-up of its start.
    RuCross = 4,
    /// Cross channel whose sink is right-down of its start.
    RdCross = 5,
    /// Cross channel within the same level, to the right.
    RCross = 6,
    /// Cross channel within the same level, to the left.
    LCross = 7,
}

impl Direction {
    /// Number of directions in the complete direction graph.
    pub const COUNT: usize = 8;

    /// All directions, indexable by `Direction::index`.
    pub const ALL: [Direction; 8] = [
        Direction::LuTree,
        Direction::RdTree,
        Direction::LuCross,
        Direction::LdCross,
        Direction::RuCross,
        Direction::RdCross,
        Direction::RCross,
        Direction::LCross,
    ];

    /// Dense index in `0..8`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Direction::index`].
    #[inline]
    pub fn from_index(i: usize) -> Direction {
        Direction::ALL[i]
    }

    /// Paper-style name, e.g. `LU_TREE`.
    pub fn name(self) -> &'static str {
        match self {
            Direction::LuTree => "LU_TREE",
            Direction::RdTree => "RD_TREE",
            Direction::LuCross => "LU_CROSS",
            Direction::LdCross => "LD_CROSS",
            Direction::RuCross => "RU_CROSS",
            Direction::RdCross => "RD_CROSS",
            Direction::RCross => "R_CROSS",
            Direction::LCross => "L_CROSS",
        }
    }

    /// Whether this direction belongs to a tree link.
    pub fn is_tree(self) -> bool {
        matches!(self, Direction::LuTree | Direction::RdTree)
    }

    /// Whether `Y` strictly decreases along this direction (traffic moves
    /// toward the root level).
    pub fn goes_up(self) -> bool {
        matches!(
            self,
            Direction::LuTree | Direction::LuCross | Direction::RuCross
        )
    }

    /// Whether `Y` strictly increases (traffic moves toward the leaves).
    pub fn goes_down(self) -> bool {
        matches!(
            self,
            Direction::RdTree | Direction::LdCross | Direction::RdCross
        )
    }

    /// Whether `X` strictly decreases along this direction. Every direction
    /// strictly changes `X` (preorder indices are unique), which is what
    /// makes same-direction channel chains acyclic.
    pub fn goes_left(self) -> bool {
        matches!(
            self,
            Direction::LuTree | Direction::LuCross | Direction::LdCross | Direction::LCross
        )
    }

    /// Classifies a channel from its link kind and geometric relation.
    ///
    /// In a coordinated tree a child→parent channel is always `left-up`
    /// (the parent precedes all descendants in preorder and sits one level
    /// up) and a parent→child channel is always `right-down`, so tree
    /// channels only ever map to `LU_TREE`/`RD_TREE`.
    pub fn classify(kind: LinkKind, q: Quadrant) -> Direction {
        match (kind, q) {
            (LinkKind::Tree, Quadrant::LeftUp) => Direction::LuTree,
            (LinkKind::Tree, Quadrant::RightDown) => Direction::RdTree,
            (LinkKind::Tree, other) => {
                unreachable!("tree channel cannot have relation {other:?}")
            }
            (LinkKind::Cross, Quadrant::LeftUp) => Direction::LuCross,
            (LinkKind::Cross, Quadrant::LeftDown) => Direction::LdCross,
            (LinkKind::Cross, Quadrant::RightUp) => Direction::RuCross,
            (LinkKind::Cross, Quadrant::RightDown) => Direction::RdCross,
            (LinkKind::Cross, Quadrant::Right) => Direction::RCross,
            (LinkKind::Cross, Quadrant::Left) => Direction::LCross,
        }
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The *communication graph* `CG = (V, E⃗)` (paper Definition 5): every
/// bidirectional link contributes its two directed channels, each labelled
/// with one of the eight [`Direction`]s derived from the coordinated tree.
#[derive(Debug, Clone)]
pub struct CommGraph {
    channels: ChannelTable,
    /// `direction[c]` — the direction label of channel `c`.
    direction: Vec<Direction>,
    /// `kind[l]` — tree or cross, per link.
    kind: Vec<LinkKind>,
    num_nodes: u32,
}

impl CommGraph {
    /// Builds the communication graph of `topo` with respect to `tree`.
    pub fn build(topo: &Topology, tree: &CoordinatedTree) -> Self {
        let channels = ChannelTable::build(topo);
        let nch = channels.num_channels();
        let mut direction = Vec::with_capacity(nch as usize);
        let mut kind = Vec::with_capacity(topo.num_links() as usize);
        for l in 0..topo.num_links() {
            kind.push(if tree.is_tree_link(l) {
                LinkKind::Tree
            } else {
                LinkKind::Cross
            });
        }
        for c in 0..nch {
            let from = channels.start(c);
            let to = channels.sink(c);
            let q = Quadrant::of(tree, from, to);
            direction.push(Direction::classify(kind[(c / 2) as usize], q));
        }
        CommGraph {
            channels,
            direction,
            kind,
            num_nodes: topo.num_nodes(),
        }
    }

    /// Number of switches.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of directed channels.
    #[inline]
    pub fn num_channels(&self) -> u32 {
        self.channels.num_channels()
    }

    /// The channel table (endpoints, ports).
    #[inline]
    pub fn channels(&self) -> &ChannelTable {
        &self.channels
    }

    /// The direction `d(c)` of a channel.
    #[inline]
    pub fn direction(&self, c: ChannelId) -> Direction {
        self.direction[c as usize]
    }

    /// Tree/cross classification of a link.
    #[inline]
    pub fn link_kind(&self, l: u32) -> LinkKind {
        self.kind[l as usize]
    }

    /// Count of channels with each direction, indexed by `Direction::index`.
    pub fn direction_histogram(&self) -> [u32; Direction::COUNT] {
        let mut hist = [0u32; Direction::COUNT];
        for &d in &self.direction {
            hist[d.index()] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coord_tree::PreorderPolicy;

    fn sample() -> (Topology, CoordinatedTree, CommGraph) {
        let topo = Topology::new(
            5,
            4,
            [(0, 2), (0, 4), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)],
        )
        .unwrap();
        let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        let cg = CommGraph::build(&topo, &tree);
        (topo, tree, cg)
    }

    #[test]
    fn every_channel_has_a_direction_and_reverse_is_opposite() {
        let (_, tree, cg) = sample();
        for c in 0..cg.num_channels() {
            let d = cg.direction(c);
            let r = cg.direction(cg.channels().reverse(c));
            // A channel and its reverse move in opposite X directions.
            assert_ne!(d.goes_left(), r.goes_left(), "channel {c}: {d} vs {r}");
            // Tree-ness is a property of the link.
            assert_eq!(d.is_tree(), r.is_tree());
            // Direction labels are consistent with coordinates.
            let from = cg.channels().start(c);
            let to = cg.channels().sink(c);
            assert_eq!(d.goes_left(), tree.x(to) < tree.x(from));
            if d.goes_up() {
                assert!(tree.y(to) < tree.y(from));
            }
            if d.goes_down() {
                assert!(tree.y(to) > tree.y(from));
            }
        }
    }

    #[test]
    fn tree_channels_are_lu_or_rd_tree() {
        let (topo, tree, cg) = sample();
        for l in 0..topo.num_links() {
            let up = cg.direction(2 * l).is_tree();
            assert_eq!(up, tree.is_tree_link(l));
            if tree.is_tree_link(l) {
                let (d0, d1) = (cg.direction(2 * l), cg.direction(2 * l + 1));
                assert!(matches!(
                    (d0, d1),
                    (Direction::LuTree, Direction::RdTree) | (Direction::RdTree, Direction::LuTree)
                ));
            }
        }
    }

    #[test]
    fn child_to_parent_is_lu_tree() {
        let (_, tree, cg) = sample();
        for v in 0..cg.num_nodes() {
            if let Some(p) = tree.parent(v) {
                let l = tree.parent_link(v).unwrap();
                // Channel from v to p.
                let c = if cg.channels().start(2 * l) == v {
                    2 * l
                } else {
                    2 * l + 1
                };
                assert_eq!(cg.channels().sink(c), p);
                assert_eq!(cg.direction(c), Direction::LuTree);
                assert_eq!(cg.direction(cg.channels().reverse(c)), Direction::RdTree);
            }
        }
    }

    #[test]
    fn direction_histogram_sums_to_channel_count() {
        let (_, _, cg) = sample();
        let hist = cg.direction_histogram();
        assert_eq!(hist.iter().sum::<u32>(), cg.num_channels());
        // 4 tree links -> 4 LU_TREE + 4 RD_TREE channels.
        assert_eq!(hist[Direction::LuTree.index()], 4);
        assert_eq!(hist[Direction::RdTree.index()], 4);
    }

    #[test]
    fn direction_roundtrip_and_names() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_index(d.index()), d);
            assert!(!d.name().is_empty());
            // Exactly one of left/right.
            let _ = d.goes_left();
            // Up and down are mutually exclusive.
            assert!(!(d.goes_up() && d.goes_down()));
        }
    }

    #[test]
    fn quadrant_relations_are_antisymmetric() {
        let (topo, tree, _) = sample();
        for l in 0..topo.num_links() {
            let (a, b) = topo.link(l);
            let q1 = Quadrant::of(&tree, a, b);
            let q2 = Quadrant::of(&tree, b, a);
            assert_ne!(q1.goes_left(), q2.goes_left());
            assert_eq!(q1.goes_up(), q2.goes_down());
        }
    }
}
