use crate::error::TopologyError;
use crate::graph::{LinkId, NodeId, Topology};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The preorder-traversal policy used to assign X coordinates
/// (paper §5: methods `M1`, `M2`, `M3`).
///
/// The BFS spanning tree itself is always built by scanning neighbors in
/// increasing node-id order (paper §4.1, Steps 1–5); only the preorder
/// traversal of Step 6 differs:
///
/// * `M1` — visit children smallest-node-number first. This is the policy
///   the paper proposes and shows to perform best (Remark 1).
/// * `M2` — visit children in random order (seeded, reproducible).
/// * `M3` — visit children largest-node-number first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PreorderPolicy {
    /// Smallest node number first (the paper's proposal).
    M1,
    /// Random child order (seeded).
    M2,
    /// Largest node number first.
    M3,
}

impl PreorderPolicy {
    /// All three policies, in paper order.
    pub const ALL: [PreorderPolicy; 3] =
        [PreorderPolicy::M1, PreorderPolicy::M2, PreorderPolicy::M3];

    /// The paper's label for this policy.
    pub fn label(self) -> &'static str {
        match self {
            PreorderPolicy::M1 => "M1",
            PreorderPolicy::M2 => "M2",
            PreorderPolicy::M3 => "M3",
        }
    }
}

impl std::fmt::Display for PreorderPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How the spanning-tree root is chosen.
///
/// The paper always roots at the smallest node id (§4.1 Step 2). Root
/// placement is a known performance lever for tree-based routings
/// (Schroeder et al. discuss it for up\*/down\*), so the library also
/// offers rooting at a graph center, which shortens the tree and typically
/// spreads level-0/1 traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RootPolicy {
    /// Node 0 — the paper's choice.
    #[default]
    Smallest,
    /// A node of minimum eccentricity (smallest id among ties).
    Center,
}

impl RootPolicy {
    /// Resolves the policy to a concrete root for `topo`.
    pub fn pick(self, topo: &Topology) -> NodeId {
        match self {
            RootPolicy::Smallest => 0,
            RootPolicy::Center => {
                let n = topo.num_nodes() as usize;
                let mut best = (u32::MAX, 0u32);
                let mut dist = vec![u32::MAX; n];
                let mut queue = std::collections::VecDeque::new();
                for s in 0..topo.num_nodes() {
                    dist.iter_mut().for_each(|d| *d = u32::MAX);
                    dist[s as usize] = 0;
                    queue.clear();
                    queue.push_back(s);
                    let mut ecc = 0;
                    while let Some(v) = queue.pop_front() {
                        ecc = ecc.max(dist[v as usize]);
                        for &(w, _) in topo.neighbors(v) {
                            if dist[w as usize] == u32::MAX {
                                dist[w as usize] = dist[v as usize] + 1;
                                queue.push_back(w);
                            }
                        }
                    }
                    if ecc < best.0 {
                        best = (ecc, s);
                    }
                }
                best.1
            }
        }
    }
}

/// A *coordinated tree* (paper Definition 2): a BFS spanning tree of the
/// topology in which every node `v` carries coordinates
/// `X(v) = preorder index` and `Y(v) = BFS level`.
///
/// The root is the smallest node id (node 0) by default, matching §4.1;
/// see [`CoordinatedTree::build_rooted`] and [`RootPolicy`] for
/// alternatives.
#[derive(Debug, Clone)]
pub struct CoordinatedTree {
    root: NodeId,
    policy: PreorderPolicy,
    /// `parent[v]` — BFS parent, `u32::MAX` for the root.
    parent: Vec<NodeId>,
    /// `parent_link[v]` — link to the parent, undefined for the root.
    parent_link: Vec<LinkId>,
    /// Children of each node in the order they are preorder-visited (CSR).
    child_offsets: Vec<u32>,
    children: Vec<NodeId>,
    /// `x[v]` — preorder index (unique in `0..n`).
    x: Vec<u32>,
    /// `y[v]` — BFS level of `v` (root has level 0).
    y: Vec<u32>,
    /// `tree_link[l]` — whether link `l` of the topology is a tree link.
    tree_link: Vec<bool>,
    num_tree_links: u32,
    max_level: u32,
}

impl CoordinatedTree {
    /// Builds the coordinated tree of `topo` rooted at node 0 (the
    /// paper's §4.1 construction).
    ///
    /// `seed` only matters for [`PreorderPolicy::M2`], which shuffles each
    /// node's child list with a seeded RNG so results are reproducible.
    pub fn build(
        topo: &Topology,
        policy: PreorderPolicy,
        seed: u64,
    ) -> Result<Self, TopologyError> {
        Self::build_rooted(topo, 0, policy, seed)
    }

    /// Builds the coordinated tree rooted at an explicit node.
    pub fn build_rooted(
        topo: &Topology,
        root: NodeId,
        policy: PreorderPolicy,
        seed: u64,
    ) -> Result<Self, TopologyError> {
        if topo.num_nodes() == 0 {
            return Err(TopologyError::EmptyNetwork);
        }
        if root >= topo.num_nodes() {
            return Err(TopologyError::NodeOutOfRange {
                node: root,
                num_nodes: topo.num_nodes(),
            });
        }
        let n = topo.num_nodes() as usize;

        // Steps 1-5: BFS from the root, scanning neighbors in increasing id
        // order (Topology::neighbors is already sorted).
        let mut visited = vec![false; n];
        let mut parent = vec![u32::MAX; n];
        let mut parent_link = vec![u32::MAX; n];
        let mut y = vec![0u32; n];
        let mut children_tmp: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut queue = std::collections::VecDeque::with_capacity(n);
        visited[root as usize] = true;
        queue.push_back(root);
        let mut tree_link = vec![false; topo.num_links() as usize];
        let mut max_level = 0u32;
        while let Some(v) = queue.pop_front() {
            for &(w, l) in topo.neighbors(v) {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    parent[w as usize] = v;
                    parent_link[w as usize] = l;
                    y[w as usize] = y[v as usize] + 1;
                    max_level = max_level.max(y[w as usize]);
                    tree_link[l as usize] = true;
                    children_tmp[v as usize].push(w);
                    queue.push_back(w);
                }
            }
        }
        // Connectivity is already validated by Topology::new; keep the guard
        // for topologies constructed through other (test) paths.
        debug_assert!(visited.iter().all(|&v| v));

        // Order children per the preorder policy. BFS discovered them in
        // increasing id order already (M1).
        match policy {
            PreorderPolicy::M1 => {}
            PreorderPolicy::M2 => {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                for kids in &mut children_tmp {
                    kids.shuffle(&mut rng);
                }
            }
            PreorderPolicy::M3 => {
                for kids in &mut children_tmp {
                    kids.reverse();
                }
            }
        }

        // Step 6: preorder traversal assigns X. Iterative stack; children
        // must be pushed in reverse so the first child is visited first.
        let mut x = vec![0u32; n];
        let mut order = 0u32;
        let mut stack = Vec::with_capacity(n);
        stack.push(root);
        while let Some(v) = stack.pop() {
            x[v as usize] = order;
            order += 1;
            for &c in children_tmp[v as usize].iter().rev() {
                stack.push(c);
            }
        }
        debug_assert_eq!(order as usize, n);

        // Flatten children into CSR.
        let mut child_offsets = vec![0u32; n + 1];
        for v in 0..n {
            child_offsets[v + 1] = child_offsets[v] + children_tmp[v].len() as u32;
        }
        let mut children = Vec::with_capacity(n - 1);
        for kids in &children_tmp {
            children.extend_from_slice(kids);
        }

        let num_tree_links = tree_link.iter().filter(|&&t| t).count() as u32;
        debug_assert_eq!(num_tree_links as usize, n - 1);

        Ok(CoordinatedTree {
            root,
            policy,
            parent,
            parent_link,
            child_offsets,
            children,
            x,
            y,
            tree_link,
            num_tree_links,
            max_level,
        })
    }

    /// The root of the spanning tree (always node 0).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The preorder policy this tree was built with.
    #[inline]
    pub fn policy(&self) -> PreorderPolicy {
        self.policy
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.x.len() as u32
    }

    /// `X(v)` — the preorder index of `v` (paper Definition 2).
    #[inline]
    pub fn x(&self, v: NodeId) -> u32 {
        self.x[v as usize]
    }

    /// `Y(v)` — the BFS level of `v` (paper Definition 2).
    #[inline]
    pub fn y(&self, v: NodeId) -> u32 {
        self.y[v as usize]
    }

    /// BFS parent of `v`, or `None` for the root.
    #[inline]
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        (v != self.root).then(|| self.parent[v as usize])
    }

    /// The tree link connecting `v` to its parent, or `None` for the root.
    #[inline]
    pub fn parent_link(&self, v: NodeId) -> Option<LinkId> {
        (v != self.root).then(|| self.parent_link[v as usize])
    }

    /// Children of `v`, in preorder-visit order.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children
            [self.child_offsets[v as usize] as usize..self.child_offsets[v as usize + 1] as usize]
    }

    /// Whether topology link `l` is a tree link (`E'`); otherwise it is a
    /// cross link (`E - E'`, Definition 3).
    #[inline]
    pub fn is_tree_link(&self, l: LinkId) -> bool {
        self.tree_link[l as usize]
    }

    /// Number of tree links (always `n - 1`).
    #[inline]
    pub fn num_tree_links(&self) -> u32 {
        self.num_tree_links
    }

    /// Deepest BFS level.
    #[inline]
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// True if `v` has no children (a leaf of the coordinated tree).
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children(v).is_empty()
    }

    /// All leaves of the tree, in increasing id order.
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.num_nodes()).filter(|&v| self.is_leaf(v)).collect()
    }

    /// All nodes at a given BFS level, in increasing id order.
    pub fn nodes_at_level(&self, level: u32) -> Vec<NodeId> {
        (0..self.num_nodes())
            .filter(|&v| self.y(v) == level)
            .collect()
    }

    /// Depth-first least common ancestor of `a` and `b` (walks parents; fine
    /// for analysis code, not meant for hot loops).
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let (mut a, mut b) = (a, b);
        while self.y(a) > self.y(b) {
            a = self.parent[a as usize];
        }
        while self.y(b) > self.y(a) {
            b = self.parent[b as usize];
        }
        while a != b {
            a = self.parent[a as usize];
            b = self.parent[b as usize];
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example network of Figure 1(b): 5 switches.
    /// Links: (1,3),(1,5),(2,4),(2,5),(3,4),(3,5),(4,5) with 1-based ids in
    /// the paper; we use 0-based ids 0..5.
    fn figure1_topology() -> Topology {
        Topology::new(
            5,
            4,
            [(0, 2), (0, 4), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)],
        )
        .unwrap()
    }

    #[test]
    fn bfs_tree_levels_match_figure1() {
        let topo = figure1_topology();
        let ct = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        // Root = v1 (id 0) at level 0; its BFS children are v3 (id 2) and
        // v5 (id 4) at level 1; v2 (id 1) and v4 (id 3) hang below.
        assert_eq!(ct.root(), 0);
        assert_eq!(ct.y(0), 0);
        assert_eq!(ct.y(2), 1);
        assert_eq!(ct.y(4), 1);
        assert_eq!(ct.max_level(), 2);
        assert_eq!(ct.num_tree_links(), 4);
    }

    #[test]
    fn x_is_a_permutation_and_preorder_consistent() {
        let topo = figure1_topology();
        for policy in PreorderPolicy::ALL {
            let ct = CoordinatedTree::build(&topo, policy, 42).unwrap();
            let mut xs: Vec<u32> = (0..5).map(|v| ct.x(v)).collect();
            xs.sort_unstable();
            assert_eq!(xs, vec![0, 1, 2, 3, 4]);
            // Parent is visited before any descendant: X(parent) < X(child).
            for v in 0..5u32 {
                if let Some(p) = ct.parent(v) {
                    assert!(ct.x(p) < ct.x(v), "policy {policy}: X({p}) >= X({v})");
                    assert_eq!(ct.y(v), ct.y(p) + 1);
                }
            }
        }
    }

    #[test]
    fn m1_visits_children_in_id_order() {
        let topo = figure1_topology();
        let ct = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        for v in 0..5u32 {
            let kids = ct.children(v);
            for w in kids.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
        // Root preorder: 0 first, then subtree of node 2 before subtree of 4.
        assert_eq!(ct.x(0), 0);
        assert!(ct.x(2) < ct.x(4));
    }

    #[test]
    fn m3_reverses_child_order() {
        let topo = figure1_topology();
        let ct = CoordinatedTree::build(&topo, PreorderPolicy::M3, 0).unwrap();
        // With M3 the larger-id child subtree is visited first.
        assert!(ct.x(4) < ct.x(2));
    }

    #[test]
    fn m2_is_reproducible_per_seed() {
        let topo = figure1_topology();
        let a = CoordinatedTree::build(&topo, PreorderPolicy::M2, 7).unwrap();
        let b = CoordinatedTree::build(&topo, PreorderPolicy::M2, 7).unwrap();
        for v in 0..5u32 {
            assert_eq!(a.x(v), b.x(v));
        }
    }

    #[test]
    fn tree_links_count_and_leaves() {
        let topo = figure1_topology();
        let ct = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        let tree_count = (0..topo.num_links())
            .filter(|&l| ct.is_tree_link(l))
            .count();
        assert_eq!(tree_count, 4);
        for leaf in ct.leaves() {
            assert!(ct.is_leaf(leaf));
            assert!(ct.children(leaf).is_empty());
        }
        assert!(!ct.is_leaf(0));
    }

    #[test]
    fn lca_of_siblings_is_parent() {
        let topo = figure1_topology();
        let ct = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        // Nodes 2 and 4 are both children of the root.
        assert_eq!(ct.lca(2, 4), 0);
        assert_eq!(ct.lca(3, 3), 3);
        let p = ct.parent(3).unwrap();
        assert_eq!(ct.lca(3, p), p);
    }

    #[test]
    fn build_rooted_relocates_the_root() {
        let topo = figure1_topology();
        let ct = CoordinatedTree::build_rooted(&topo, 3, PreorderPolicy::M1, 0).unwrap();
        assert_eq!(ct.root(), 3);
        assert_eq!(ct.y(3), 0);
        assert_eq!(ct.x(3), 0);
        for v in 0..5u32 {
            if let Some(p) = ct.parent(v) {
                assert!(ct.x(p) < ct.x(v));
                assert_eq!(ct.y(v), ct.y(p) + 1);
            }
        }
        assert!(CoordinatedTree::build_rooted(&topo, 9, PreorderPolicy::M1, 0).is_err());
    }

    #[test]
    fn center_root_minimizes_eccentricity() {
        // A path 0-1-2-3-4: the center is node 2.
        let path = Topology::new(5, 2, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(RootPolicy::Center.pick(&path), 2);
        assert_eq!(RootPolicy::Smallest.pick(&path), 0);
        // Center-rooted tree is shallower than edge-rooted.
        let edge = CoordinatedTree::build_rooted(&path, 0, PreorderPolicy::M1, 0).unwrap();
        let center = CoordinatedTree::build_rooted(&path, 2, PreorderPolicy::M1, 0).unwrap();
        assert!(center.max_level() < edge.max_level());
    }

    #[test]
    fn nodes_at_level_partitions_nodes() {
        let topo = figure1_topology();
        let ct = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
        let total: usize = (0..=ct.max_level())
            .map(|l| ct.nodes_at_level(l).len())
            .sum();
        assert_eq!(total, 5);
        assert_eq!(ct.nodes_at_level(0), vec![0]);
    }
}
