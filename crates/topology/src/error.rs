use std::fmt;

/// Errors produced while constructing or validating topologies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The requested node count is zero.
    EmptyNetwork,
    /// A link endpoint is out of range.
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Number of switches in the network.
        num_nodes: u32,
    },
    /// A link connects a node to itself.
    SelfLoop {
        /// The node with the self-loop.
        node: u32,
    },
    /// The same pair of nodes is connected by more than one link.
    DuplicateLink {
        /// Smaller endpoint.
        a: u32,
        /// Larger endpoint.
        b: u32,
    },
    /// A node uses more ports than the per-switch budget allows.
    PortBudgetExceeded {
        /// The over-budget node.
        node: u32,
        /// Its degree.
        degree: u32,
        /// The per-switch port budget.
        ports: u32,
    },
    /// The graph is not connected; `reached` of `num_nodes` nodes are
    /// reachable from node 0.
    Disconnected {
        /// Nodes reachable from node 0.
        reached: u32,
        /// Total nodes.
        num_nodes: u32,
    },
    /// A generator could not satisfy its constraints (e.g. not enough ports
    /// to even build a spanning tree).
    Unsatisfiable(String),
    /// A parse error while reading a serialized topology.
    Parse(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::EmptyNetwork => write!(f, "network must have at least one switch"),
            TopologyError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range (network has {num_nodes} switches)"
                )
            }
            TopologyError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            TopologyError::DuplicateLink { a, b } => {
                write!(f, "duplicate link between {a} and {b}")
            }
            TopologyError::PortBudgetExceeded {
                node,
                degree,
                ports,
            } => write!(
                f,
                "node {node} has degree {degree}, exceeding the {ports}-port budget"
            ),
            TopologyError::Disconnected { reached, num_nodes } => write!(
                f,
                "topology is disconnected: only {reached} of {num_nodes} switches reachable"
            ),
            TopologyError::Unsatisfiable(msg) => write!(f, "generator constraint violated: {msg}"),
            TopologyError::Parse(msg) => write!(f, "topology parse error: {msg}"),
        }
    }
}

impl std::error::Error for TopologyError {}
