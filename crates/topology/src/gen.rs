//! Topology generators.
//!
//! The paper evaluates on "randomly generated" irregular networks of 128
//! switches with 4- and 8-port configurations (10 samples each). The exact
//! recipe is unspecified; [`random_irregular`] follows the standard setup of
//! this literature (Jouraku/Koibuchi's IRFlexSim experiments): build a random
//! spanning tree to guarantee connectivity, then keep pairing free ports at
//! random until no legal link can be added. The result is connected, simple,
//! and as close to port-saturated as the random pairing allows.
//!
//! Regular families (ring, mesh, torus, hypercube, star, full tree, complete)
//! are provided for tests, examples, and sanity baselines.

use crate::error::TopologyError;
use crate::graph::{NodeId, Topology};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parameters for the random irregular generator.
#[derive(Debug, Clone, Copy)]
pub struct IrregularParams {
    /// Number of switches.
    pub num_nodes: u32,
    /// Per-switch port budget for inter-switch links.
    pub ports: u32,
    /// Fraction of remaining free ports to consume with extra (cross)
    /// links after the spanning tree, in `0.0..=1.0`. `1.0` saturates ports
    /// as far as random pairing allows (the default, matching IRFlexSim).
    pub fill: f64,
}

impl IrregularParams {
    /// Paper configuration: `num_nodes` switches, `ports` ports, saturated.
    pub fn paper(num_nodes: u32, ports: u32) -> Self {
        IrregularParams {
            num_nodes,
            ports,
            fill: 1.0,
        }
    }
}

/// Generates a random connected irregular network. Deterministic per seed.
pub fn random_irregular(params: IrregularParams, seed: u64) -> Result<Topology, TopologyError> {
    let IrregularParams {
        num_nodes: n,
        ports,
        fill,
    } = params;
    if n == 0 {
        return Err(TopologyError::EmptyNetwork);
    }
    if n > 1 && ports < 1 {
        return Err(TopologyError::Unsatisfiable(
            "need at least one port per switch to connect the network".into(),
        ));
    }
    if !(0.0..=1.0).contains(&fill) {
        return Err(TopologyError::Unsatisfiable(format!(
            "fill {fill} outside 0..=1"
        )));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut free = vec![ports; n as usize];
    let mut links: Vec<(NodeId, NodeId)> = Vec::new();
    let mut has_link = std::collections::HashSet::<(u32, u32)>::new();

    // Random spanning tree via a random permutation: attach each new node to
    // a random already-attached node that still has a free port. Preferring
    // low-degree attach points keeps the tree feasible even for ports = 2
    // (it degenerates to a path) and spreads degrees realistically.
    let mut order: Vec<NodeId> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut attached: Vec<NodeId> = vec![order[0]];
    for &v in &order[1..] {
        // Candidates with at least one free port; keep a margin of one port
        // on non-leaf attach points when possible so the tree can keep
        // growing.
        let candidates: Vec<NodeId> = attached
            .iter()
            .copied()
            .filter(|&u| free[u as usize] > 0)
            .collect();
        if candidates.is_empty() {
            return Err(TopologyError::Unsatisfiable(format!(
                "ran out of free ports while building the spanning tree \
                 ({} of {} nodes attached; ports = {})",
                attached.len(),
                n,
                ports
            )));
        }
        let &u = candidates.choose(&mut rng).expect("nonempty");
        links.push((u.min(v), u.max(v)));
        has_link.insert((u.min(v), u.max(v)));
        free[u as usize] -= 1;
        free[v as usize] -= 1;
        attached.push(v);
    }

    // Fill phase: random pairing of free ports.
    let mut budget = {
        let total_free: u32 = free.iter().sum();
        ((total_free as f64 * fill) / 2.0).floor() as u32
    };
    let mut stale = 0u32;
    while budget > 0 {
        let open: Vec<NodeId> = (0..n).filter(|&v| free[v as usize] > 0).collect();
        if open.len() < 2 {
            break;
        }
        let a = open[rng.gen_range(0..open.len())];
        let b = open[rng.gen_range(0..open.len())];
        let key = (a.min(b), a.max(b));
        if a == b || has_link.contains(&key) {
            stale += 1;
            // Give up when random pairing keeps colliding: the remaining free
            // ports cannot be matched into new simple links.
            if stale > 64 * n {
                break;
            }
            continue;
        }
        stale = 0;
        has_link.insert(key);
        links.push(key);
        free[a as usize] -= 1;
        free[b as usize] -= 1;
        budget -= 1;
    }

    Topology::new(n, ports, links)
}

/// The paper's sample set: `count` random irregular networks of
/// `num_nodes` switches and `ports` ports, seeded `base_seed..base_seed+count`.
pub fn paper_samples(
    num_nodes: u32,
    ports: u32,
    count: u32,
    base_seed: u64,
) -> Result<Vec<Topology>, TopologyError> {
    (0..count)
        .map(|i| {
            random_irregular(
                IrregularParams::paper(num_nodes, ports),
                base_seed + i as u64,
            )
        })
        .collect()
}

/// Parameters for the clustered (rack-based) generator.
#[derive(Debug, Clone, Copy)]
pub struct ClusteredParams {
    /// Number of clusters (racks).
    pub clusters: u32,
    /// Switches per cluster.
    pub cluster_size: u32,
    /// Per-switch port budget.
    pub ports: u32,
    /// Inter-cluster links per cluster pair (subject to port budget);
    /// intra-cluster connectivity is made as dense as ports allow.
    pub uplinks: u32,
}

/// Generates a clustered irregular network: switches grouped into racks
/// with dense intra-rack wiring and sparse random uplinks between racks —
/// the topology shape of real switch-based clusters (NOW/SAN), as opposed
/// to the fully random [`random_irregular`]. Deterministic per seed.
pub fn clustered(params: ClusteredParams, seed: u64) -> Result<Topology, TopologyError> {
    let ClusteredParams {
        clusters,
        cluster_size,
        ports,
        uplinks,
    } = params;
    if clusters == 0 || cluster_size == 0 {
        return Err(TopologyError::EmptyNetwork);
    }
    let n = clusters * cluster_size;
    if clusters > 1 && (uplinks == 0 || ports < 2) {
        return Err(TopologyError::Unsatisfiable(
            "multi-cluster networks need uplinks and at least 2 ports".into(),
        ));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut free = vec![ports; n as usize];
    let mut links: Vec<(NodeId, NodeId)> = Vec::new();
    let mut has_link = std::collections::HashSet::<(u32, u32)>::new();
    let mut add = |a: NodeId, b: NodeId, free: &mut Vec<u32>| -> bool {
        let key = (a.min(b), a.max(b));
        if a == b || has_link.contains(&key) || free[a as usize] == 0 || free[b as usize] == 0 {
            return false;
        }
        has_link.insert(key);
        links.push(key);
        free[a as usize] -= 1;
        free[b as usize] -= 1;
        true
    };

    // Intra-cluster: a ring (or path) backbone, then random chords while
    // ports and budget remain. Reserve `uplinks`-worth of ports per
    // cluster for inter-cluster wiring.
    for c in 0..clusters {
        let base = c * cluster_size;
        for i in 0..cluster_size.saturating_sub(1) {
            add(base + i, base + i + 1, &mut free);
        }
        if cluster_size >= 3 {
            add(base, base + cluster_size - 1, &mut free);
        }
        // Chords: up to one extra per switch, keeping a one-port reserve on
        // low-index switches for uplinks.
        for _ in 0..cluster_size {
            let a = base + rng.gen_range(0..cluster_size);
            let b = base + rng.gen_range(0..cluster_size);
            if free[a as usize] > 1 && free[b as usize] > 1 {
                add(a, b, &mut free);
            }
        }
    }

    // Inter-cluster: connect consecutive clusters (guaranteeing
    // connectivity), then `uplinks` random pairs per cluster pair.
    for c in 1..clusters {
        let mut attached = false;
        'outer: for i in 0..cluster_size {
            for j in 0..cluster_size {
                if add((c - 1) * cluster_size + i, c * cluster_size + j, &mut free) {
                    attached = true;
                    break 'outer;
                }
            }
        }
        if !attached {
            return Err(TopologyError::Unsatisfiable(format!(
                "no free ports to attach cluster {c}"
            )));
        }
    }
    for a in 0..clusters {
        for b in (a + 1)..clusters {
            for _ in 0..uplinks {
                let u = a * cluster_size + rng.gen_range(0..cluster_size);
                let v = b * cluster_size + rng.gen_range(0..cluster_size);
                add(u, v, &mut free);
            }
        }
    }
    Topology::new(n, ports, links)
}

/// A ring of `n` switches.
pub fn ring(n: u32) -> Result<Topology, TopologyError> {
    if n < 3 {
        return Err(TopologyError::Unsatisfiable(
            "ring needs at least 3 nodes".into(),
        ));
    }
    Topology::new(n, 2, (0..n).map(|i| (i, (i + 1) % n)))
}

/// A `w x h` 2-D mesh.
pub fn mesh(w: u32, h: u32) -> Result<Topology, TopologyError> {
    if w == 0 || h == 0 {
        return Err(TopologyError::EmptyNetwork);
    }
    let id = |x: u32, y: u32| y * w + x;
    let mut links = Vec::new();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                links.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < h {
                links.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    Topology::new(w * h, 4, links)
}

/// A `w x h` 2-D torus (requires `w, h >= 3` so wraparounds stay simple).
pub fn torus(w: u32, h: u32) -> Result<Topology, TopologyError> {
    if w < 3 || h < 3 {
        return Err(TopologyError::Unsatisfiable("torus needs w, h >= 3".into()));
    }
    let id = |x: u32, y: u32| y * w + x;
    let mut links = Vec::new();
    for y in 0..h {
        for x in 0..w {
            links.push((id(x, y), id((x + 1) % w, y)));
            links.push((id(x, y), id(x, (y + 1) % h)));
        }
    }
    Topology::new(w * h, 4, links)
}

/// A hypercube of dimension `dim` (`2^dim` switches, `dim` ports each).
pub fn hypercube(dim: u32) -> Result<Topology, TopologyError> {
    if dim == 0 || dim > 16 {
        return Err(TopologyError::Unsatisfiable(
            "hypercube dim must be 1..=16".into(),
        ));
    }
    let n = 1u32 << dim;
    let mut links = Vec::new();
    for v in 0..n {
        for b in 0..dim {
            let w = v ^ (1 << b);
            if v < w {
                links.push((v, w));
            }
        }
    }
    Topology::new(n, dim, links)
}

/// A star: node 0 connected to all others.
pub fn star(n: u32) -> Result<Topology, TopologyError> {
    if n < 2 {
        return Err(TopologyError::Unsatisfiable(
            "star needs at least 2 nodes".into(),
        ));
    }
    Topology::new(n, n - 1, (1..n).map(|v| (0, v)))
}

/// A complete graph on `n` switches.
pub fn complete(n: u32) -> Result<Topology, TopologyError> {
    if n < 2 {
        return Err(TopologyError::Unsatisfiable(
            "complete graph needs at least 2 nodes".into(),
        ));
    }
    let mut links = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            links.push((a, b));
        }
    }
    Topology::new(n, n - 1, links)
}

/// A full `k`-ary tree with `n` nodes (node `v`'s parent is `(v-1)/k`).
pub fn kary_tree(n: u32, k: u32) -> Result<Topology, TopologyError> {
    if n == 0 {
        return Err(TopologyError::EmptyNetwork);
    }
    if k == 0 {
        return Err(TopologyError::Unsatisfiable(
            "arity must be positive".into(),
        ));
    }
    Topology::new(n, k + 1, (1..n).map(|v| ((v - 1) / k, v)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn irregular_is_connected_and_within_ports() {
        for seed in 0..5 {
            let t = random_irregular(IrregularParams::paper(64, 4), seed).unwrap();
            assert_eq!(t.num_nodes(), 64);
            assert_eq!(t.count_reachable(0), 64);
            assert!(t.max_degree() <= 4);
            // Saturated fill should get reasonably close to the port budget.
            assert!(
                t.avg_degree() > 2.5,
                "avg degree {} too sparse",
                t.avg_degree()
            );
        }
    }

    #[test]
    fn irregular_is_deterministic_per_seed() {
        let a = random_irregular(IrregularParams::paper(32, 8), 9).unwrap();
        let b = random_irregular(IrregularParams::paper(32, 8), 9).unwrap();
        assert_eq!(a.links(), b.links());
        let c = random_irregular(IrregularParams::paper(32, 8), 10).unwrap();
        assert_ne!(a.links(), c.links());
    }

    #[test]
    fn irregular_fill_zero_gives_spanning_tree() {
        let t = random_irregular(
            IrregularParams {
                num_nodes: 40,
                ports: 4,
                fill: 0.0,
            },
            3,
        )
        .unwrap();
        assert_eq!(t.num_links(), 39);
    }

    #[test]
    fn paper_samples_are_distinct() {
        let samples = paper_samples(32, 4, 4, 100).unwrap();
        assert_eq!(samples.len(), 4);
        for i in 0..samples.len() {
            for j in (i + 1)..samples.len() {
                assert_ne!(samples[i].links(), samples[j].links());
            }
        }
    }

    #[test]
    fn ring_mesh_torus_shapes() {
        let r = ring(6).unwrap();
        assert_eq!(r.num_links(), 6);
        assert_eq!(r.max_degree(), 2);
        let m = mesh(3, 4).unwrap();
        assert_eq!(m.num_nodes(), 12);
        assert_eq!(m.num_links(), 3 * 3 + 2 * 4);
        let t = torus(4, 4).unwrap();
        assert_eq!(t.num_links(), 32);
        assert_eq!(t.max_degree(), 4);
    }

    #[test]
    fn hypercube_and_complete() {
        let h = hypercube(4).unwrap();
        assert_eq!(h.num_nodes(), 16);
        assert_eq!(h.num_links(), 32);
        assert_eq!(h.max_degree(), 4);
        let k = complete(5).unwrap();
        assert_eq!(k.num_links(), 10);
    }

    #[test]
    fn kary_tree_and_star() {
        let t = kary_tree(7, 2).unwrap();
        assert_eq!(t.num_links(), 6);
        assert_eq!(t.degree(0), 2);
        let s = star(5).unwrap();
        assert_eq!(s.degree(0), 4);
    }

    #[test]
    fn generators_reject_bad_params() {
        assert!(ring(2).is_err());
        assert!(torus(2, 4).is_err());
        assert!(hypercube(0).is_err());
        assert!(random_irregular(
            IrregularParams {
                num_nodes: 0,
                ports: 4,
                fill: 1.0
            },
            0
        )
        .is_err());
        assert!(random_irregular(
            IrregularParams {
                num_nodes: 8,
                ports: 4,
                fill: 2.0
            },
            0
        )
        .is_err());
    }

    #[test]
    fn clustered_is_connected_and_within_ports() {
        for seed in 0..4 {
            let t = clustered(
                ClusteredParams {
                    clusters: 4,
                    cluster_size: 8,
                    ports: 6,
                    uplinks: 2,
                },
                seed,
            )
            .unwrap();
            assert_eq!(t.num_nodes(), 32);
            assert_eq!(t.count_reachable(0), 32);
            assert!(t.max_degree() <= 6);
        }
    }

    #[test]
    fn clustered_has_rack_locality() {
        let t = clustered(
            ClusteredParams {
                clusters: 4,
                cluster_size: 8,
                ports: 6,
                uplinks: 1,
            },
            1,
        )
        .unwrap();
        let intra = t.links().iter().filter(|&&(a, b)| a / 8 == b / 8).count();
        let inter = t.num_links() as usize - intra;
        assert!(
            intra > inter,
            "expected rack locality: intra {intra} vs inter {inter}"
        );
    }

    #[test]
    fn clustered_single_cluster_and_bad_params() {
        let t = clustered(
            ClusteredParams {
                clusters: 1,
                cluster_size: 6,
                ports: 4,
                uplinks: 0,
            },
            0,
        )
        .unwrap();
        assert_eq!(t.num_nodes(), 6);
        assert!(clustered(
            ClusteredParams {
                clusters: 0,
                cluster_size: 4,
                ports: 4,
                uplinks: 1
            },
            0
        )
        .is_err());
        assert!(clustered(
            ClusteredParams {
                clusters: 3,
                cluster_size: 4,
                ports: 4,
                uplinks: 0
            },
            0
        )
        .is_err());
    }

    #[test]
    fn clustered_is_deterministic() {
        let p = ClusteredParams {
            clusters: 3,
            cluster_size: 6,
            ports: 5,
            uplinks: 2,
        };
        assert_eq!(
            clustered(p, 9).unwrap().links(),
            clustered(p, 9).unwrap().links()
        );
    }

    #[test]
    fn two_port_networks_degenerate_to_paths_or_rings() {
        let t = random_irregular(
            IrregularParams {
                num_nodes: 12,
                ports: 2,
                fill: 1.0,
            },
            5,
        )
        .unwrap();
        assert!(t.max_degree() <= 2);
        assert_eq!(t.count_reachable(0), 12);
    }
}
