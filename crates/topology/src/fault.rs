//! Fault injection: scripted and seeded-random link/switch failure plans,
//! and the [`Topology::degrade`] path that filters a topology down to its
//! surviving graph while reporting partition and isolation.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultEvent`]s, each bound to an
//! *activation cycle* — the simulator clock at which the fault strikes.
//! Degrading a topology applies every event (or every event up to a cycle)
//! and yields both the compact surviving [`Topology`] and the id maps the
//! repair layer needs to lift the rebuilt routing function back into the
//! original channel space.
//!
//! Since schema v2 an event may also *recover*: `recovers_at` names the
//! cycle at which the element comes back up, and an optional
//! [`FlapSchedule`] repeats the down/up pair. Recovery-aware plans are
//! expanded into bidirectional transition timelines by
//! [`crate::recovery::RecoveryTimeline`]; the cumulative helpers here
//! ([`FaultPlan::up_to`], [`Topology::fault_masks`]) deliberately ignore
//! recovery and describe the monotone "everything that ever failed" state.

use crate::error::TopologyError;
use crate::graph::{LinkId, NodeId, Topology};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{DeError, Deserialize, Serialize, Value};

/// What fails: a single bidirectional link, or a whole switch (which takes
/// every incident link down with it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The bidirectional link between `a` and `b` goes dead.
    Link {
        /// One endpoint (order does not matter).
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// Switch `node` goes dead, along with all its links and its attached
    /// processor (it stops injecting and ejecting traffic).
    Switch {
        /// The failing switch.
        node: NodeId,
    },
}

/// A repeating flap schedule attached to a recovering fault (schema v2):
/// the event's down/up pair repeats `count` more times, each repeat shifted
/// `period` cycles after the previous one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlapSchedule {
    /// Cycles between successive down transitions. Must exceed the outage
    /// duration (`recovers_at - cycle`) so repeats do not overlap.
    pub period: u32,
    /// Number of additional down/up repeats after the first pair.
    pub count: u32,
}

/// One fault bound to the simulator cycle at which it activates, and — since
/// schema v2 — optionally to the cycle at which it recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulator clock at which the fault strikes.
    pub cycle: u32,
    /// What fails.
    pub kind: FaultKind,
    /// Cycle at which the element comes back up; `None` means the fault is
    /// permanent (the schema-v1 behavior). Must be strictly after `cycle`.
    pub recovers_at: Option<u32>,
    /// Optional repeating flap schedule; requires `recovers_at`.
    pub flap: Option<FlapSchedule>,
}

impl FaultEvent {
    /// A permanent (schema-v1) fault.
    pub fn down(cycle: u32, kind: FaultKind) -> FaultEvent {
        FaultEvent {
            cycle,
            kind,
            recovers_at: None,
            flap: None,
        }
    }

    /// A fault that strikes at `cycle` and recovers at `recovers_at`.
    pub fn recovering(cycle: u32, kind: FaultKind, recovers_at: u32) -> FaultEvent {
        FaultEvent {
            cycle,
            kind,
            recovers_at: Some(recovers_at),
            flap: None,
        }
    }

    /// Attaches a flap schedule: the down/up pair repeats `count` more
    /// times, `period` cycles apart.
    #[must_use]
    pub fn with_flap(mut self, period: u32, count: u32) -> FaultEvent {
        self.flap = Some(FlapSchedule { period, count });
        self
    }

    /// True when the event carries schema-v2 recovery content.
    pub fn has_recovery(&self) -> bool {
        self.recovers_at.is_some() || self.flap.is_some()
    }

    /// Checks the recovery fields for internal consistency (shared by the
    /// deserializer and the timeline expander).
    pub(crate) fn validate_recovery(&self) -> Result<(), String> {
        if self.flap.is_some() && self.recovers_at.is_none() {
            return Err(format!(
                "event at cycle {}: a flap schedule requires `recovers_at`",
                self.cycle
            ));
        }
        if let Some(r) = self.recovers_at {
            if r <= self.cycle {
                return Err(format!(
                    "event at cycle {}: recovers_at ({r}) must be strictly after the fault cycle",
                    self.cycle
                ));
            }
            if let Some(f) = self.flap {
                if f.period <= r - self.cycle {
                    return Err(format!(
                        "event at cycle {}: flap period ({}) must exceed the outage \
                         duration ({})",
                        self.cycle,
                        f.period,
                        r - self.cycle
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Serialize for FaultEvent {
    fn to_value(&self) -> Value {
        let mut map = vec![("cycle".to_string(), Value::U64(u64::from(self.cycle)))];
        match self.kind {
            FaultKind::Link { a, b } => map.push((
                "link".to_string(),
                Value::Seq(vec![Value::U64(u64::from(a)), Value::U64(u64::from(b))]),
            )),
            FaultKind::Switch { node } => {
                map.push(("switch".to_string(), Value::U64(u64::from(node))));
            }
        }
        if let Some(r) = self.recovers_at {
            map.push(("recovers_at".to_string(), Value::U64(u64::from(r))));
        }
        if let Some(f) = self.flap {
            map.push((
                "flap".to_string(),
                Value::Map(vec![
                    ("period".to_string(), Value::U64(u64::from(f.period))),
                    ("count".to_string(), Value::U64(u64::from(f.count))),
                ]),
            ));
        }
        Value::Map(map)
    }
}

impl Deserialize for FaultEvent {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let map = v
            .as_map()
            .ok_or_else(|| DeError::custom("fault event must be a map"))?;
        let cycle: u32 = serde::field(map, "cycle")?;
        let link = v.get("link");
        let switch = v.get("switch");
        let kind = match (link, switch) {
            (Some(l), None) => {
                let (a, b): (NodeId, NodeId) = Deserialize::from_value(l)?;
                FaultKind::Link { a, b }
            }
            (None, Some(s)) => FaultKind::Switch {
                node: NodeId::from_value(s)?,
            },
            _ => {
                return Err(DeError::custom(
                    "fault event needs exactly one of `link` or `switch`",
                ))
            }
        };
        let recovers_at = match v.get("recovers_at") {
            Some(r) => Some(u32::from_value(r)?),
            None => None,
        };
        let flap = match v.get("flap") {
            Some(f) => {
                let fm = f
                    .as_map()
                    .ok_or_else(|| DeError::custom("`flap` must be a map"))?;
                Some(FlapSchedule {
                    period: serde::field(fm, "period")?,
                    count: serde::field(fm, "count")?,
                })
            }
            None => None,
        };
        let ev = FaultEvent {
            cycle,
            kind,
            recovers_at,
            flap,
        };
        ev.validate_recovery().map_err(DeError::custom)?;
        Ok(ev)
    }
}

/// An ordered fault scenario: events sorted by activation cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl Serialize for FaultPlan {
    fn to_value(&self) -> Value {
        let mut map = Vec::new();
        let version = self.schema_version();
        if version > 1 {
            // v1 files round-trip byte-identically: the version key only
            // appears once recovery content forces the newer schema.
            map.push(("version".to_string(), Value::U64(u64::from(version))));
        }
        map.push((
            "events".to_string(),
            Value::Seq(self.events.iter().map(Serialize::to_value).collect()),
        ));
        Value::Map(map)
    }
}

impl Deserialize for FaultPlan {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let map = v
            .as_map()
            .ok_or_else(|| DeError::custom("fault plan must be a map"))?;
        let version: u32 = match v.get("version") {
            Some(ver) => u32::from_value(ver)?,
            None => 1,
        };
        if !(1..=2).contains(&version) {
            return Err(DeError::custom(format!(
                "unsupported fault scenario schema version {version} (this build reads 1 and 2)"
            )));
        }
        let events: Vec<FaultEvent> = serde::field(map, "events")?;
        if version == 1 {
            if let Some(ev) = events.iter().find(|e| e.has_recovery()) {
                return Err(DeError::custom(format!(
                    "event at cycle {} carries recovery fields; declare \"version\": 2",
                    ev.cycle
                )));
            }
        }
        Ok(FaultPlan { events })
    }
}

impl FaultPlan {
    /// Builds a scripted plan; events are stably sorted by activation cycle
    /// so same-cycle faults keep their scripted order.
    pub fn scripted(events: impl IntoIterator<Item = FaultEvent>) -> FaultPlan {
        let mut events: Vec<FaultEvent> = events.into_iter().collect();
        events.sort_by_key(|e| e.cycle);
        FaultPlan { events }
    }

    /// Draws a seeded-random plan against `topo`: `links` distinct link
    /// failures and `switches` distinct switch failures, each activating at
    /// a uniform cycle in `window` (inclusive). Deterministic per seed.
    pub fn random(
        topo: &Topology,
        links: u32,
        switches: u32,
        window: (u32, u32),
        seed: u64,
    ) -> Result<FaultPlan, FaultError> {
        if links > topo.num_links() {
            return Err(FaultError::Unsatisfiable(format!(
                "asked for {links} link faults but the topology has {} links",
                topo.num_links()
            )));
        }
        if switches >= topo.num_nodes() {
            return Err(FaultError::Unsatisfiable(format!(
                "asked for {switches} switch faults but the topology has {} switches",
                topo.num_nodes()
            )));
        }
        let (lo, hi) = (window.0.min(window.1), window.0.max(window.1));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut events = Vec::new();
        let pick_distinct = |rng: &mut ChaCha8Rng, count: u32, n: u32| -> Vec<u32> {
            let mut chosen: Vec<u32> = Vec::with_capacity(count as usize);
            while (chosen.len() as u32) < count {
                let c = rng.gen_range(0..n);
                if !chosen.contains(&c) {
                    chosen.push(c);
                }
            }
            chosen
        };
        for l in pick_distinct(&mut rng, links, topo.num_links()) {
            let (a, b) = topo.link(l);
            events.push(FaultEvent::down(
                rng.gen_range(lo..=hi),
                FaultKind::Link { a, b },
            ));
        }
        for node in pick_distinct(&mut rng, switches, topo.num_nodes()) {
            events.push(FaultEvent::down(
                rng.gen_range(lo..=hi),
                FaultKind::Switch { node },
            ));
        }
        Ok(FaultPlan::scripted(events))
    }

    /// All events, sorted by activation cycle.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the plan contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The JSON schema version this plan serializes as: 2 when any event
    /// carries recovery/flap fields, else 1 (so v1 files round-trip
    /// unchanged).
    pub fn schema_version(&self) -> u32 {
        if self.events.iter().any(FaultEvent::has_recovery) {
            2
        } else {
            1
        }
    }

    /// True when any event recovers or flaps — i.e. the plan needs the
    /// bidirectional timeline expansion rather than the monotone
    /// [`FaultPlan::up_to`] chain.
    pub fn has_recovery(&self) -> bool {
        self.schema_version() == 2
    }

    /// Distinct activation cycles in increasing order — one reconfiguration
    /// epoch boundary per entry.
    pub fn activation_cycles(&self) -> Vec<u32> {
        let mut cycles: Vec<u32> = self.events.iter().map(|e| e.cycle).collect();
        cycles.dedup();
        cycles
    }

    /// The sub-plan of events with `cycle <= limit` (the cumulative fault
    /// state at a given epoch boundary).
    pub fn up_to(&self, limit: u32) -> FaultPlan {
        FaultPlan {
            events: self
                .events
                .iter()
                .copied()
                .take_while(|e| e.cycle <= limit)
                .collect(),
        }
    }

    /// Parses a scenario from JSON:
    /// `{"events":[{"cycle":N,"link":[a,b]},{"cycle":N,"switch":v}]}`.
    pub fn from_json(text: &str) -> Result<FaultPlan, FaultError> {
        let value = serde_json::from_str(text)
            .map_err(|e| FaultError::Parse(format!("invalid scenario JSON: {e}")))?;
        let plan = FaultPlan::from_value(&value)
            .map_err(|e| FaultError::Parse(format!("invalid fault scenario: {e}")))?;
        Ok(FaultPlan::scripted(plan.events))
    }

    /// Renders the scenario as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        // The vendored serializer is infallible on value trees.
        serde_json::to_string_pretty(&self.to_value()).unwrap_or_default()
    }
}

/// Why a fault plan cannot be applied (or survived).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// A link fault names a pair of switches with no link between them.
    UnknownLink {
        /// Claimed endpoint.
        a: NodeId,
        /// Claimed endpoint.
        b: NodeId,
    },
    /// A switch fault names a node outside the topology.
    UnknownSwitch {
        /// The out-of-range node id.
        node: NodeId,
        /// Number of switches in the topology.
        num_nodes: u32,
    },
    /// Every switch failed; nothing is left to route on.
    NoSurvivors,
    /// The surviving graph is split: only `reached` of the `alive` surviving
    /// switches are reachable from the lowest-numbered survivor, and
    /// `isolated` survivors lost every link.
    Partitioned {
        /// Surviving (non-failed) switches.
        alive: u32,
        /// Survivors reachable from the lowest-numbered survivor.
        reached: u32,
        /// Survivors with zero remaining links.
        isolated: u32,
    },
    /// A random plan's parameters cannot be satisfied.
    Unsatisfiable(String),
    /// A scenario file could not be parsed.
    Parse(String),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::UnknownLink { a, b } => {
                write!(f, "fault names link ({a}, {b}), but no such link exists")
            }
            FaultError::UnknownSwitch { node, num_nodes } => {
                write!(
                    f,
                    "fault names switch {node}, but the topology has {num_nodes} switches"
                )
            }
            FaultError::NoSurvivors => write!(f, "every switch failed; nothing survives"),
            FaultError::Partitioned {
                alive,
                reached,
                isolated,
            } => write!(
                f,
                "surviving network is partitioned: {reached} of {alive} \
                 surviving switches reachable, {isolated} fully isolated"
            ),
            FaultError::Unsatisfiable(msg) => write!(f, "unsatisfiable fault plan: {msg}"),
            FaultError::Parse(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for FaultError {}

/// A degraded topology plus the id maps relating it to the original.
///
/// The surviving graph is *compacted*: surviving nodes and links are
/// renumbered contiguously in increasing original-id order. Because the
/// renumbering is monotone, every surviving link keeps its `a < b`
/// endpoint orientation — which is what lets the repair layer map original
/// channel `2l + d` to compact channel `2·link_map[l] + d` with the same
/// direction bit `d`.
#[derive(Debug, Clone)]
pub struct DegradedTopology {
    /// The compact surviving graph.
    pub topology: Topology,
    /// Original node id → compact id (`None` for dead switches).
    pub node_map: Vec<Option<NodeId>>,
    /// Compact node id → original id.
    pub node_unmap: Vec<NodeId>,
    /// Original link id → compact id (`None` for dead links).
    pub link_map: Vec<Option<LinkId>>,
    /// Original ids of dead links (scripted plus those lost to switch
    /// faults), in increasing order.
    pub dead_links: Vec<LinkId>,
    /// Original ids of dead switches, in increasing order.
    pub dead_nodes: Vec<NodeId>,
}

impl Topology {
    /// Applies every event of `plan` and returns the compact surviving
    /// topology, or an error describing why nothing routable survives.
    pub fn degrade(&self, plan: &FaultPlan) -> Result<Topology, FaultError> {
        self.degrade_detailed(plan).map(|d| d.topology)
    }

    /// Like [`Topology::degrade`], but also returns the node/link id maps
    /// the repair layer needs to lift routing structures between the
    /// original and surviving id spaces.
    pub fn degrade_detailed(&self, plan: &FaultPlan) -> Result<DegradedTopology, FaultError> {
        let (node_dead, link_dead) = self.fault_masks(plan)?;
        self.degrade_from_masks(&node_dead, &link_dead)
    }

    /// Resolves every event of `plan` into `(node_dead, link_dead)` masks
    /// (a switch fault also kills every incident link) without building the
    /// compact survivor graph. This is the shared first half of both
    /// [`Topology::degrade_detailed`] and the feasibility oracle, exposed
    /// so callers that need both answers resolve the plan exactly once.
    ///
    /// # Errors
    ///
    /// [`FaultError::UnknownLink`] / [`FaultError::UnknownSwitch`] when the
    /// plan names elements this topology does not have.
    pub fn fault_masks(&self, plan: &FaultPlan) -> Result<(Vec<bool>, Vec<bool>), FaultError> {
        let mut node_dead = vec![false; self.num_nodes() as usize];
        let mut link_dead = vec![false; self.num_links() as usize];
        for ev in plan.events() {
            match ev.kind {
                FaultKind::Link { a, b } => {
                    let l = self
                        .link_between(a.min(b), a.max(b))
                        .ok_or(FaultError::UnknownLink { a, b })?;
                    link_dead[l as usize] = true;
                }
                FaultKind::Switch { node } => {
                    if node >= self.num_nodes() {
                        return Err(FaultError::UnknownSwitch {
                            node,
                            num_nodes: self.num_nodes(),
                        });
                    }
                    node_dead[node as usize] = true;
                    for &(_, l) in self.neighbors(node) {
                        link_dead[l as usize] = true;
                    }
                }
            }
        }
        Ok((node_dead, link_dead))
    }

    /// The second half of [`Topology::degrade_detailed`]: compacts the
    /// survivors described by pre-resolved masks (as returned by
    /// [`Topology::fault_masks`]).
    ///
    /// # Errors
    ///
    /// [`FaultError::NoSurvivors`] / [`FaultError::Partitioned`] when
    /// nothing routable survives.
    ///
    /// # Panics
    ///
    /// Panics if the mask lengths disagree with this topology.
    pub fn degrade_from_masks(
        &self,
        node_dead: &[bool],
        link_dead: &[bool],
    ) -> Result<DegradedTopology, FaultError> {
        let n = self.num_nodes() as usize;
        let m = self.num_links() as usize;
        assert_eq!(node_dead.len(), n);
        assert_eq!(link_dead.len(), m);

        // Compact monotone renumbering of the survivors.
        let mut node_map = vec![None; n];
        let mut node_unmap = Vec::new();
        for (v, dead) in node_dead.iter().enumerate() {
            if !dead {
                node_map[v] = Some(node_unmap.len() as NodeId);
                node_unmap.push(v as NodeId);
            }
        }
        if node_unmap.is_empty() {
            return Err(FaultError::NoSurvivors);
        }

        let mut link_map = vec![None; m];
        let mut surviving_links = Vec::new();
        for (l, dead) in link_dead.iter().enumerate() {
            if !dead {
                let (a, b) = self.link(l as LinkId);
                link_map[l] = Some(surviving_links.len() as LinkId);
                surviving_links.push((
                    node_map[a as usize].expect("live link endpoint is alive"),
                    node_map[b as usize].expect("live link endpoint is alive"),
                ));
            }
        }

        let alive = node_unmap.len() as u32;
        let topology =
            Topology::new(alive, self.ports(), surviving_links).map_err(|e| match e {
                TopologyError::Disconnected { reached, .. } => {
                    let isolated = node_unmap
                        .iter()
                        .filter(|&&orig| {
                            self.neighbors(orig)
                                .iter()
                                .all(|&(_, l)| link_dead[l as usize])
                        })
                        .count() as u32;
                    FaultError::Partitioned {
                        alive,
                        reached,
                        isolated,
                    }
                }
                // The original is simple and degrees only shrink, so the only
                // other reachable failure is a single surviving switch with no
                // links — which `Topology::new` accepts. Anything else is a bug.
                other => unreachable!("degrade produced an invalid graph: {other}"),
            })?;

        Ok(DegradedTopology {
            topology,
            node_map,
            node_unmap,
            link_map,
            dead_links: (0..m as u32).filter(|&l| link_dead[l as usize]).collect(),
            dead_nodes: (0..n as u32).filter(|&v| node_dead[v as usize]).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_with_diagonal() -> Topology {
        // 0-1, 1-2, 2-3, 0-3, 1-3
        Topology::new(4, 4, [(0, 1), (1, 2), (2, 3), (0, 3), (1, 3)]).unwrap()
    }

    fn link(cycle: u32, a: NodeId, b: NodeId) -> FaultEvent {
        FaultEvent::down(cycle, FaultKind::Link { a, b })
    }

    fn switch(cycle: u32, node: NodeId) -> FaultEvent {
        FaultEvent::down(cycle, FaultKind::Switch { node })
    }

    #[test]
    fn link_fault_filters_one_link() {
        let t = square_with_diagonal();
        let d = t
            .degrade_detailed(&FaultPlan::scripted([link(10, 3, 1)]))
            .unwrap();
        assert_eq!(d.topology.num_nodes(), 4);
        assert_eq!(d.topology.num_links(), 4);
        assert_eq!(d.dead_links, vec![t.link_between(1, 3).unwrap()]);
        assert!(d.dead_nodes.is_empty());
        // Node map is the identity for link-only plans.
        for v in 0..4 {
            assert_eq!(d.node_map[v as usize], Some(v));
        }
        // Surviving links keep their relative order and orientation.
        for (l, &mapped) in d.link_map.iter().enumerate() {
            if let Some(nl) = mapped {
                let (a, b) = t.link(l as LinkId);
                assert_eq!(d.topology.link(nl), (a, b));
            }
        }
    }

    #[test]
    fn switch_fault_removes_node_and_incident_links() {
        let t = square_with_diagonal();
        let d = t
            .degrade_detailed(&FaultPlan::scripted([switch(5, 1)]))
            .unwrap();
        // Node 1 had degree 3; survivors 0-3-2 form a path.
        assert_eq!(d.topology.num_nodes(), 3);
        assert_eq!(d.topology.num_links(), 2);
        assert_eq!(d.dead_nodes, vec![1]);
        assert_eq!(d.node_unmap, vec![0, 2, 3]);
        assert_eq!(d.node_map, vec![Some(0), None, Some(1), Some(2)]);
        // Monotone renumbering preserves a < b orientation.
        for &(a, b) in d.topology.links() {
            assert!(a < b);
        }
    }

    #[test]
    fn partition_is_reported_with_isolation() {
        // Path 0-1-2-3; killing link (1,2) splits it 2/2.
        let t = Topology::new(4, 4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let err = t
            .degrade(&FaultPlan::scripted([link(0, 1, 2)]))
            .unwrap_err();
        assert_eq!(
            err,
            FaultError::Partitioned {
                alive: 4,
                reached: 2,
                isolated: 0,
            }
        );
        // Killing both links of node 1 isolates it — and node 0 with it.
        let err = t
            .degrade(&FaultPlan::scripted([link(0, 0, 1), link(0, 1, 2)]))
            .unwrap_err();
        assert_eq!(
            err,
            FaultError::Partitioned {
                alive: 4,
                reached: 1,
                isolated: 2,
            }
        );
    }

    #[test]
    fn unknown_faults_are_rejected() {
        let t = square_with_diagonal();
        assert_eq!(
            t.degrade(&FaultPlan::scripted([link(0, 0, 2)]))
                .unwrap_err(),
            FaultError::UnknownLink { a: 0, b: 2 }
        );
        assert_eq!(
            t.degrade(&FaultPlan::scripted([switch(0, 9)])).unwrap_err(),
            FaultError::UnknownSwitch {
                node: 9,
                num_nodes: 4
            }
        );
    }

    #[test]
    fn duplicate_faults_are_idempotent() {
        let t = square_with_diagonal();
        let d = t
            .degrade_detailed(&FaultPlan::scripted([
                link(1, 1, 3),
                link(2, 3, 1),
                switch(3, 2),
                switch(4, 2),
            ]))
            .unwrap();
        assert_eq!(d.topology.num_nodes(), 3);
        assert_eq!(d.dead_nodes, vec![2]);
    }

    #[test]
    fn up_to_is_cumulative_and_sorted() {
        let plan = FaultPlan::scripted([link(30, 0, 1), link(10, 1, 2), switch(20, 3)]);
        assert_eq!(plan.activation_cycles(), vec![10, 20, 30]);
        assert_eq!(plan.up_to(20).events().len(), 2);
        assert_eq!(plan.up_to(9).events().len(), 0);
        assert_eq!(plan.up_to(u32::MAX), plan);
    }

    #[test]
    fn random_plans_are_deterministic_and_valid() {
        let t = crate::gen::random_irregular(crate::gen::IrregularParams::paper(32, 4), 7).unwrap();
        let a = FaultPlan::random(&t, 3, 1, (100, 500), 11).unwrap();
        let b = FaultPlan::random(&t, 3, 1, (100, 500), 11).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 4);
        for ev in a.events() {
            assert!((100..=500).contains(&ev.cycle));
        }
        // Validity: every event names a real link/switch.
        t.degrade_detailed(&a).ok();
        assert!(FaultPlan::random(&t, 10_000, 0, (0, 1), 1).is_err());
        assert!(FaultPlan::random(&t, 0, 32, (0, 1), 1).is_err());
    }

    #[test]
    fn scenario_json_roundtrip() {
        let plan = FaultPlan::scripted([link(100, 2, 7), switch(300, 5)]);
        assert_eq!(plan.schema_version(), 1);
        let text = plan.to_json();
        // v1 plans serialize without a version key, exactly as before.
        assert!(!text.contains("version"));
        let back = FaultPlan::from_json(&text).unwrap();
        assert_eq!(plan, back);
        assert!(FaultPlan::from_json("{").is_err());
        assert!(FaultPlan::from_json("{\"events\":[{\"cycle\":1}]}").is_err());
        let both = "{\"events\":[{\"cycle\":1,\"link\":[0,1],\"switch\":2}]}";
        assert!(FaultPlan::from_json(both).is_err());
    }

    #[test]
    fn scenario_json_roundtrip_v2() {
        let plan = FaultPlan::scripted([
            FaultEvent::recovering(100, FaultKind::Link { a: 2, b: 7 }, 450).with_flap(900, 3),
            FaultEvent::recovering(300, FaultKind::Switch { node: 5 }, 800),
            link(500, 0, 1),
        ]);
        assert_eq!(plan.schema_version(), 2);
        assert!(plan.has_recovery());
        let text = plan.to_json();
        assert!(text.contains("\"version\": 2"));
        let back = FaultPlan::from_json(&text).unwrap();
        assert_eq!(plan, back);
        // An explicit version: 2 with plain events also parses.
        let explicit = "{\"version\":2,\"events\":[{\"cycle\":1,\"link\":[0,1]}]}";
        assert_eq!(
            FaultPlan::from_json(explicit).unwrap(),
            FaultPlan::scripted([link(1, 0, 1)])
        );
    }

    #[test]
    fn v2_schema_violations_are_rejected() {
        // Recovery fields without the version declaration.
        let undeclared = "{\"events\":[{\"cycle\":1,\"link\":[0,1],\"recovers_at\":9}]}";
        assert!(FaultPlan::from_json(undeclared).is_err());
        // Future schema versions are refused, not silently misread.
        let future = "{\"version\":3,\"events\":[]}";
        assert!(FaultPlan::from_json(future).is_err());
        // recovers_at must lie strictly after the fault cycle.
        let backwards =
            "{\"version\":2,\"events\":[{\"cycle\":10,\"link\":[0,1],\"recovers_at\":10}]}";
        assert!(FaultPlan::from_json(backwards).is_err());
        // A flap schedule needs recovers_at, and its period must exceed the
        // outage so repeats do not overlap.
        let flap_only =
            "{\"version\":2,\"events\":[{\"cycle\":1,\"link\":[0,1],\"flap\":{\"period\":5,\"count\":2}}]}";
        assert!(FaultPlan::from_json(flap_only).is_err());
        let overlap = "{\"version\":2,\"events\":[{\"cycle\":1,\"link\":[0,1],\
                        \"recovers_at\":20,\"flap\":{\"period\":19,\"count\":1}}]}";
        assert!(FaultPlan::from_json(overlap).is_err());
    }

    #[test]
    fn all_switches_dead_is_no_survivors() {
        let t = Topology::new(2, 4, [(0, 1)]).unwrap();
        let err = t
            .degrade(&FaultPlan::scripted([switch(0, 0), switch(0, 1)]))
            .unwrap_err();
        assert_eq!(err, FaultError::NoSurvivors);
    }
}
