#![warn(missing_docs)]
//! Irregular switch-based network topologies and the coordinate machinery of
//! the DOWN/UP routing paper (Sun et al., ICPP 2004).
//!
//! This crate provides the three structures every routing algorithm in the
//! workspace is built on:
//!
//! * [`Topology`] — an undirected multigraph-free graph of switches and
//!   bidirectional links (paper Definition 1), together with generators for
//!   random irregular networks and several regular families.
//! * [`CoordinatedTree`] — a BFS spanning tree whose nodes carry the 2-D
//!   coordinates `X = preorder index`, `Y = BFS level` (Definition 2), with
//!   the three preorder policies `M1`/`M2`/`M3` evaluated in the paper.
//! * [`CommGraph`] — the directed communication graph whose channels are
//!   labelled with the paper's eight directions (Definition 5).
//!
//! ```
//! use irnet_topology::{gen, CoordinatedTree, CommGraph, PreorderPolicy};
//!
//! let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 7).unwrap();
//! let tree = CoordinatedTree::build(&topo, PreorderPolicy::M1, 0).unwrap();
//! let cg = CommGraph::build(&topo, &tree);
//! assert_eq!(cg.num_channels(), 2 * topo.num_links());
//! ```

mod channel;
mod comm_graph;
mod coord_tree;
mod error;
mod fault;
mod graph;
mod io;

pub mod analysis;
pub mod gen;
pub mod recovery;

pub use channel::{ChannelId, ChannelTable};
pub use comm_graph::{CommGraph, Direction, LinkKind, Quadrant};
pub use coord_tree::{CoordinatedTree, PreorderPolicy, RootPolicy};
pub use error::TopologyError;
pub use fault::{DegradedTopology, FaultError, FaultEvent, FaultKind, FaultPlan, FlapSchedule};
pub use graph::{LinkId, NodeId, Topology};
pub use io::{topology_from_json, topology_to_json};
pub use recovery::{
    chaos_plan, chaos_plan_filtered, ChaosParams, DampingPolicy, Element, ElementDamping,
    RecoveryTimeline, TimelineStep,
};
