//! Network-layout rendering: draws a topology using its coordinated-tree
//! coordinates (`x = X(v)` preorder index, `y = Y(v)` level), with tree
//! links solid and cross links dashed, and optionally colors each switch by
//! its measured node utilization.
//!
//! The result is the picture behind the paper's hot-spot story: under
//! up\*/down\*-style routings the top of the tree glows; under DOWN/UP the
//! heat spreads toward the leaves.

use irnet_sim::SimStats;
use irnet_topology::{CommGraph, CoordinatedTree, Topology};
use std::fmt::Write as _;

/// Rendering options.
#[derive(Debug, Clone, Copy)]
pub struct NetPlotOptions {
    /// Pixel width of the drawing area.
    pub width: u32,
    /// Pixel height.
    pub height: u32,
    /// Draw node ids inside the circles.
    pub labels: bool,
}

impl Default for NetPlotOptions {
    fn default() -> Self {
        NetPlotOptions {
            width: 900,
            height: 540,
            labels: true,
        }
    }
}

/// Renders the topology in coordinated-tree layout. If `stats` is given,
/// switches are colored white→red by node utilization (normalized to the
/// maximum observed), making hot spots visible at a glance.
pub fn render_network(
    topo: &Topology,
    tree: &CoordinatedTree,
    cg: &CommGraph,
    stats: Option<&SimStats>,
    opts: NetPlotOptions,
) -> String {
    let n = topo.num_nodes();
    let (w, h) = (opts.width as f64, opts.height as f64);
    let margin = 36.0;
    let levels = tree.max_level().max(1) as f64;
    let xmax = (n - 1).max(1) as f64;
    let px = |v: u32| margin + tree.x(v) as f64 / xmax * (w - 2.0 * margin);
    let py = |v: u32| margin + tree.y(v) as f64 / levels * (h - 2.0 * margin);

    let utils = stats.map(|s| s.node_utilizations(cg));
    let max_util = utils
        .as_ref()
        .map_or(1.0, |u| u.iter().copied().fold(0.0f64, f64::max).max(1e-12));

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">"#
    );
    let _ = writeln!(svg, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
    // Links first (under the nodes).
    for l in 0..topo.num_links() {
        let (a, b) = topo.link(l);
        let dash = if tree.is_tree_link(l) {
            ""
        } else {
            r#" stroke-dasharray="4 3""#
        };
        let color = if tree.is_tree_link(l) { "#444" } else { "#999" };
        let _ = writeln!(
            svg,
            r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="{color}"{dash}/>"#,
            px(a),
            py(a),
            px(b),
            py(b)
        );
    }
    // Nodes.
    let radius = (220.0 / n as f64).clamp(5.0, 14.0);
    for v in 0..n {
        let fill = match &utils {
            Some(u) => heat_color(u[v as usize] / max_util),
            None => "#cfe2f3".to_string(),
        };
        let _ = writeln!(
            svg,
            r##"<circle cx="{:.1}" cy="{:.1}" r="{radius:.1}" fill="{fill}" stroke="#222"/>"##,
            px(v),
            py(v)
        );
        if opts.labels && radius >= 7.0 {
            let _ = writeln!(
                svg,
                r#"<text x="{:.1}" y="{:.1}" text-anchor="middle" font-size="{:.0}">{v}</text>"#,
                px(v),
                py(v) + radius * 0.35,
                radius
            );
        }
    }
    // Legend.
    if utils.is_some() {
        let _ = writeln!(
            svg,
            r#"<text x="{margin}" y="20" font-size="12">node utilization: white = 0, red = {max_util:.4} (max)</text>"#
        );
    }
    svg.push_str("</svg>\n");
    svg
}

/// White→red heat ramp for `t` in `[0, 1]`.
fn heat_color(t: f64) -> String {
    let t = t.clamp(0.0, 1.0);
    let g = (255.0 * (1.0 - 0.85 * t)) as u8;
    let b = (255.0 * (1.0 - 0.95 * t)) as u8;
    format!("#ff{g:02x}{b:02x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algo;
    use irnet_sim::{SimConfig, Simulator};
    use irnet_topology::{gen, PreorderPolicy};

    #[test]
    fn renders_without_stats() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 2).unwrap();
        let inst = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, 0)
            .unwrap();
        let svg = render_network(&topo, &inst.tree, &inst.cg, None, NetPlotOptions::default());
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<circle").count() as u32, topo.num_nodes());
        assert_eq!(svg.matches("<line").count() as u32, topo.num_links());
        assert!(
            svg.contains("stroke-dasharray"),
            "cross links should be dashed"
        );
    }

    #[test]
    fn heatmap_uses_utilization() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 2).unwrap();
        let inst = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, 0)
            .unwrap();
        let cfg = SimConfig {
            packet_len: 8,
            injection_rate: 0.2,
            warmup_cycles: 200,
            measure_cycles: 1_000,
            ..SimConfig::default()
        };
        let stats = Simulator::new(&inst.cg, &inst.tables, cfg, 3).run();
        let svg = render_network(
            &topo,
            &inst.tree,
            &inst.cg,
            Some(&stats),
            NetPlotOptions::default(),
        );
        assert!(svg.contains("node utilization"));
        // At least one node must be at full heat (the max is normalized).
        assert!(
            svg.contains("#ff26"),
            "expected a saturated heat color: {svg}"
        );
    }

    #[test]
    fn heat_ramp_endpoints() {
        assert_eq!(heat_color(0.0), "#ffffff");
        let hot = heat_color(1.0);
        assert!(hot.starts_with("#ff"));
        assert_ne!(hot, "#ffffff");
        assert_eq!(heat_color(1.0), heat_color(2.0));
    }
}
