#![warn(missing_docs)]
//! The paper's evaluation metrics and the machinery to collect them:
//! algorithm dispatch ([`Algo`]), load sweeps ([`sweep`]), saturation
//! search, and the four table metrics ([`paper`]).
//!
//! Everything here operates on [`Instance`] — the uniform bundle of
//! artifacts (coordinated tree, communication graph, turn table, routing
//! tables) every routing constructor in the workspace produces.

pub mod direction;
pub mod fairness;
pub mod levels;
pub mod netplot;
pub mod paper;
pub mod plot;
pub mod report;
pub mod sweep;

use irnet_baselines::{lturn, updown, BaselineError};
use irnet_core::{ConstructError, DownUp, PhaseSpans};
use irnet_telemetry::Telemetry;
use irnet_topology::{CommGraph, CoordinatedTree, PreorderPolicy, Topology};
use irnet_turns::{RoutingTables, TurnTable};

/// A routing algorithm under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// The paper's contribution (optionally without the Phase-3 release —
    /// the A1 ablation).
    DownUp {
        /// Run the Phase-3 release pass.
        release: bool,
    },
    /// The L-turn baseline (reconstruction; optionally without its release
    /// pass).
    LTurn {
        /// Run the per-node release pass.
        release: bool,
    },
    /// Classic BFS up\*/down\*.
    UpDownBfs,
    /// DFS up\*/down\* (Robles et al.).
    UpDownDfs,
}

impl Algo {
    /// The two algorithms the paper compares, in its order.
    pub const PAPER_PAIR: [Algo; 2] = [
        Algo::LTurn { release: true },
        Algo::DownUp { release: true },
    ];

    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            Algo::DownUp { release: true } => "DOWN/UP",
            Algo::DownUp { release: false } => "DOWN/UP (no release)",
            Algo::LTurn { release: true } => "L-turn",
            Algo::LTurn { release: false } => "L-turn (no release)",
            Algo::UpDownBfs => "up*/down* (BFS)",
            Algo::UpDownDfs => "up*/down* (DFS)",
        }
    }

    /// Constructs the routing over `topo` using the coordinated-tree
    /// `policy` (ignored by up\*/down\*, which has no preorder component)
    /// and `seed` (used by the `M2` policy).
    pub fn construct(
        self,
        topo: &Topology,
        policy: PreorderPolicy,
        seed: u64,
    ) -> Result<Instance, AlgoError> {
        self.construct_with(topo, policy, seed, &Telemetry::disabled())
    }

    /// [`Algo::construct`] with telemetry attached: construction time
    /// lands in `tel`'s span tree as `construction` (with the per-phase
    /// children for DOWN/UP, whose constructor reports them).
    pub fn construct_with(
        self,
        topo: &Topology,
        policy: PreorderPolicy,
        seed: u64,
        tel: &Telemetry,
    ) -> Result<Instance, AlgoError> {
        match self {
            Algo::DownUp { release } => {
                let (r, spans) = DownUp::new()
                    .policy(policy)
                    .seed(seed)
                    .release(release)
                    .construct_instrumented(topo, tel)?;
                let (tree, cg, table, tables) = r.into_parts();
                Ok(Instance {
                    tree,
                    cg,
                    table,
                    tables,
                    spans: Some(spans),
                })
            }
            Algo::LTurn { release } => {
                let t0 = std::time::Instant::now();
                let r = lturn::construct_with(
                    topo,
                    lturn::LTurnOptions {
                        policy,
                        seed,
                        release,
                    },
                )?;
                tel.record_span("construction", t0.elapsed().as_secs_f64());
                let (tree, cg, table, tables) = r.into_parts();
                Ok(Instance {
                    tree,
                    cg,
                    table,
                    tables,
                    spans: None,
                })
            }
            Algo::UpDownBfs => {
                let t0 = std::time::Instant::now();
                let (tree, cg, table, tables) = updown::construct_bfs(topo)?.into_parts();
                tel.record_span("construction", t0.elapsed().as_secs_f64());
                Ok(Instance {
                    tree,
                    cg,
                    table,
                    tables,
                    spans: None,
                })
            }
            Algo::UpDownDfs => {
                let t0 = std::time::Instant::now();
                let (tree, cg, table, tables) = updown::construct_dfs(topo)?.into_parts();
                tel.record_span("construction", t0.elapsed().as_secs_f64());
                Ok(Instance {
                    tree,
                    cg,
                    table,
                    tables,
                    spans: None,
                })
            }
        }
    }
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Construction error from any algorithm.
#[derive(Debug)]
pub enum AlgoError {
    /// DOWN/UP construction failed.
    Core(ConstructError),
    /// Baseline construction failed.
    Baseline(BaselineError),
}

impl std::fmt::Display for AlgoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgoError::Core(e) => e.fmt(f),
            AlgoError::Baseline(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for AlgoError {}

impl From<ConstructError> for AlgoError {
    fn from(e: ConstructError) -> Self {
        AlgoError::Core(e)
    }
}

impl From<BaselineError> for AlgoError {
    fn from(e: BaselineError) -> Self {
        AlgoError::Baseline(e)
    }
}

/// The uniform bundle of routing artifacts the harness simulates.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The coordinated tree the routing was built on.
    pub tree: CoordinatedTree,
    /// The communication graph.
    pub cg: CommGraph,
    /// Per-node turn permissions.
    pub table: TurnTable,
    /// Shortest-legal-path routing tables.
    pub tables: RoutingTables,
    /// Per-phase construction wall-clock spans, when the constructor
    /// reports them (currently DOWN/UP only).
    pub spans: Option<PhaseSpans>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use irnet_topology::gen;
    use irnet_turns::verify_routing;

    #[test]
    fn every_algo_constructs_and_verifies() {
        let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), 1).unwrap();
        for algo in [
            Algo::DownUp { release: true },
            Algo::DownUp { release: false },
            Algo::LTurn { release: true },
            Algo::LTurn { release: false },
            Algo::UpDownBfs,
            Algo::UpDownDfs,
        ] {
            let inst = algo.construct(&topo, PreorderPolicy::M1, 0).unwrap();
            assert!(
                verify_routing(&inst.cg, &inst.table).is_ok(),
                "{algo} failed verification"
            );
            assert!(!algo.label().is_empty());
        }
    }
}
