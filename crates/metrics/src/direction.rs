//! Traffic breakdown by channel direction.
//!
//! The DOWN/UP routing's design goal is to push traffic downward (to the
//! leaves) and off the tree-ascent channels. This module measures exactly
//! that: the share of measured flit traffic carried by each of the eight
//! communication-graph directions, and the aggregate up/down/horizontal
//! split.

use irnet_sim::SimStats;
use irnet_topology::{CommGraph, Direction};
use serde::Serialize;

/// Flit-traffic share per direction, plus aggregates. All shares are in
/// `[0, 1]` and the per-direction shares sum to 1 (when any flit moved).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DirectionBreakdown {
    /// `share[d]` — fraction of link-stage flit transfers on channels of
    /// direction `d` (indexed by `Direction::index`).
    pub share: [f64; Direction::COUNT],
    /// Fraction on upward channels (`LU_TREE`, `LU_CROSS`, `RU_CROSS`).
    pub up: f64,
    /// Fraction on downward channels (`RD_TREE`, `LD_CROSS`, `RD_CROSS`).
    pub down: f64,
    /// Fraction on same-level cross channels (`L_CROSS`, `R_CROSS`).
    pub horizontal: f64,
    /// Fraction on tree channels (both directions).
    pub tree: f64,
}

impl DirectionBreakdown {
    /// Computes the breakdown from one run's per-channel flit counters.
    pub fn compute(stats: &SimStats, cg: &CommGraph) -> DirectionBreakdown {
        let mut by_dir = [0u64; Direction::COUNT];
        for c in 0..cg.num_channels() {
            by_dir[cg.direction(c).index()] += stats.channel_flits[c as usize];
        }
        let total: u64 = by_dir.iter().sum();
        let mut share = [0.0; Direction::COUNT];
        if total > 0 {
            for (s, &n) in share.iter_mut().zip(&by_dir) {
                *s = n as f64 / total as f64;
            }
        }
        let pick = |d: Direction| share[d.index()];
        DirectionBreakdown {
            share,
            up: pick(Direction::LuTree) + pick(Direction::LuCross) + pick(Direction::RuCross),
            down: pick(Direction::RdTree) + pick(Direction::LdCross) + pick(Direction::RdCross),
            horizontal: pick(Direction::LCross) + pick(Direction::RCross),
            tree: pick(Direction::LuTree) + pick(Direction::RdTree),
        }
    }

    /// Renders a one-line summary, e.g. for harness output.
    pub fn summary(&self) -> String {
        format!(
            "up {:.1}% / down {:.1}% / horizontal {:.1}% (tree {:.1}%)",
            100.0 * self.up,
            100.0 * self.down,
            100.0 * self.horizontal,
            100.0 * self.tree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algo;
    use irnet_sim::{SimConfig, Simulator};
    use irnet_topology::{gen, PreorderPolicy};

    fn breakdown_for(algo: Algo) -> DirectionBreakdown {
        let topo = gen::random_irregular(gen::IrregularParams::paper(32, 4), 8).unwrap();
        let inst = algo.construct(&topo, PreorderPolicy::M1, 0).unwrap();
        let cfg = SimConfig {
            packet_len: 16,
            injection_rate: 0.2,
            warmup_cycles: 500,
            measure_cycles: 3_000,
            ..SimConfig::default()
        };
        let stats = Simulator::new(&inst.cg, &inst.tables, cfg, 3).run();
        DirectionBreakdown::compute(&stats, &inst.cg)
    }

    #[test]
    fn shares_sum_to_one_and_partition() {
        let b = breakdown_for(Algo::DownUp { release: true });
        let sum: f64 = b.share.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
        assert!((b.up + b.down + b.horizontal - 1.0).abs() < 1e-9);
        assert!(b.tree > 0.0, "tree channels must carry some traffic");
    }

    #[test]
    fn summary_is_readable() {
        let b = breakdown_for(Algo::DownUp { release: true });
        let s = b.summary();
        assert!(s.contains("up") && s.contains("down") && s.contains('%'));
    }

    #[test]
    fn up_and_down_are_roughly_balanced_overall() {
        // Every packet that ascends k levels must descend k levels (and
        // vice versa), so aggregate up and down shares cannot be wildly
        // asymmetric for uniform traffic.
        let b = breakdown_for(Algo::DownUp { release: true });
        assert!(
            b.up > 0.1 && b.down > 0.1,
            "up {:.3} down {:.3}",
            b.up,
            b.down
        );
        let ratio = b.up / b.down;
        assert!((0.4..=2.5).contains(&ratio), "up/down ratio {ratio:.2}");
    }
}
