//! Fairness metrics across nodes.
//!
//! The paper's "traffic load" (stddev of node utilization) measures how
//! evenly *links* are used; these metrics measure how evenly *endpoints*
//! are served, which is what applications observe. Jain's fairness index
//! `(Σx)² / (n·Σx²)` is 1.0 for perfect fairness and `1/n` when a single
//! node receives everything.

use irnet_sim::SimStats;
use serde::Serialize;

/// Endpoint-fairness summary of one run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FairnessReport {
    /// Jain's index of flits delivered per destination node.
    pub delivery_jain: f64,
    /// Jain's index of packets generated (injection opportunity) per node.
    pub generation_jain: f64,
    /// Ratio of the least- to most-served destination (0 when some node
    /// received nothing).
    pub min_max_ratio: f64,
}

/// Jain's fairness index of a sample; 1.0 for an empty or all-zero
/// sample (vacuously fair).
pub fn jain_index(xs: &[u64]) -> f64 {
    let n = xs.len() as f64;
    if n == 0.0 {
        return 1.0;
    }
    let sum: f64 = xs.iter().map(|&x| x as f64).sum();
    let sq: f64 = xs.iter().map(|&x| (x as f64) * (x as f64)).sum();
    if sq == 0.0 {
        1.0
    } else {
        sum * sum / (n * sq)
    }
}

impl FairnessReport {
    /// Computes endpoint fairness from one run's statistics.
    pub fn compute(stats: &SimStats) -> FairnessReport {
        let delivered = &stats.node_flits_delivered;
        let min = delivered.iter().copied().min().unwrap_or(0);
        let max = delivered.iter().copied().max().unwrap_or(0);
        FairnessReport {
            delivery_jain: jain_index(delivered),
            generation_jain: jain_index(&stats.node_packets_generated),
            min_max_ratio: if max == 0 {
                0.0
            } else {
                min as f64 / max as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algo;
    use irnet_sim::{SimConfig, Simulator, TrafficPattern};
    use irnet_topology::{gen, PreorderPolicy};

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0, 0, 0]), 1.0);
        assert!((jain_index(&[5, 5, 5, 5]) - 1.0).abs() < 1e-12);
        // One node takes everything: 1/n.
        assert!((jain_index(&[100, 0, 0, 0]) - 0.25).abs() < 1e-12);
        // Monotone in skew.
        assert!(jain_index(&[3, 1]) > jain_index(&[9, 1]));
    }

    fn run(pattern: TrafficPattern) -> FairnessReport {
        let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), 4).unwrap();
        let inst = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, 0)
            .unwrap();
        let cfg = SimConfig {
            packet_len: 16,
            injection_rate: 0.1,
            warmup_cycles: 400,
            measure_cycles: 3_000,
            traffic: pattern,
            ..SimConfig::default()
        };
        let stats = Simulator::new(&inst.cg, &inst.tables, cfg, 9).run();
        FairnessReport::compute(&stats)
    }

    #[test]
    fn uniform_traffic_is_fair() {
        let f = run(TrafficPattern::Uniform);
        assert!(
            f.delivery_jain > 0.85,
            "uniform delivery Jain {:.3}",
            f.delivery_jain
        );
        assert!(f.generation_jain > 0.85);
    }

    #[test]
    fn hotspot_traffic_is_unfair_by_construction() {
        let uniform = run(TrafficPattern::Uniform);
        let hot = run(TrafficPattern::Hotspot {
            hot_node: 3,
            hot_fraction: 0.7,
        });
        assert!(
            hot.delivery_jain < uniform.delivery_jain,
            "hotspot Jain {:.3} not below uniform {:.3}",
            hot.delivery_jain,
            uniform.delivery_jain
        );
        assert!(hot.min_max_ratio < uniform.min_max_ratio);
    }
}
