//! The four table metrics of §5 of the paper, computed from one
//! simulation's statistics and the coordinated tree.

use irnet_sim::SimStats;
use irnet_topology::{CommGraph, CoordinatedTree};
use serde::Serialize;

/// The paper's per-run evaluation metrics (Tables 1–4 plus the Figure 8
/// pair).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PaperMetrics {
    /// Average node utilization over all switches (Table 1).
    pub node_utilization: f64,
    /// Standard deviation of node utilizations — the paper's
    /// "traffic load" balance metric (Table 2; smaller is better).
    pub traffic_load: f64,
    /// Percentage of total node utilization carried by switches at
    /// coordinated-tree levels 0 and 1 (Table 3; smaller is better).
    pub hot_spot_degree: f64,
    /// Average node utilization of the coordinated tree's leaves
    /// (Table 4; larger is better).
    pub leaf_utilization: f64,
    /// Average message latency in clocks (Figure 8, y-axis left).
    pub avg_latency: f64,
    /// Accepted traffic in flits/clock/node (Figure 8, y-axis right).
    pub accepted_traffic: f64,
}

impl PaperMetrics {
    /// Field-wise mean of several runs (e.g. over the paper's ten random
    /// topologies). `NaN` latencies (no delivered packets) are skipped for
    /// the latency average only. Panics on an empty iterator.
    pub fn mean<'a>(items: impl IntoIterator<Item = &'a PaperMetrics>) -> PaperMetrics {
        let mut acc = PaperMetrics {
            node_utilization: 0.0,
            traffic_load: 0.0,
            hot_spot_degree: 0.0,
            leaf_utilization: 0.0,
            avg_latency: 0.0,
            accepted_traffic: 0.0,
        };
        let mut n = 0usize;
        let mut lat_n = 0usize;
        for m in items {
            acc.node_utilization += m.node_utilization;
            acc.traffic_load += m.traffic_load;
            acc.hot_spot_degree += m.hot_spot_degree;
            acc.leaf_utilization += m.leaf_utilization;
            acc.accepted_traffic += m.accepted_traffic;
            if m.avg_latency.is_finite() {
                acc.avg_latency += m.avg_latency;
                lat_n += 1;
            }
            n += 1;
        }
        assert!(n > 0, "mean of zero runs");
        acc.node_utilization /= n as f64;
        acc.traffic_load /= n as f64;
        acc.hot_spot_degree /= n as f64;
        acc.leaf_utilization /= n as f64;
        acc.accepted_traffic /= n as f64;
        acc.avg_latency = if lat_n > 0 {
            acc.avg_latency / lat_n as f64
        } else {
            f64::NAN
        };
        acc
    }

    /// Computes the metrics from one run's statistics.
    pub fn compute(stats: &SimStats, cg: &CommGraph, tree: &CoordinatedTree) -> PaperMetrics {
        let utils = stats.node_utilizations(cg);
        let n = utils.len() as f64;
        let mean = utils.iter().sum::<f64>() / n;
        let var = utils.iter().map(|u| (u - mean) * (u - mean)).sum::<f64>() / n;
        let total: f64 = utils.iter().sum();
        let top: f64 = (0..utils.len())
            .filter(|&v| tree.y(v as u32) <= 1)
            .map(|v| utils[v])
            .sum();
        let hot = if total > 0.0 {
            100.0 * top / total
        } else {
            0.0
        };
        let leaves = tree.leaves();
        let leaf = if leaves.is_empty() {
            0.0
        } else {
            leaves.iter().map(|&v| utils[v as usize]).sum::<f64>() / leaves.len() as f64
        };
        PaperMetrics {
            node_utilization: mean,
            traffic_load: var.sqrt(),
            hot_spot_degree: hot,
            leaf_utilization: leaf,
            avg_latency: stats.avg_latency(),
            accepted_traffic: stats.accepted_traffic(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algo;
    use irnet_sim::{SimConfig, Simulator};
    use irnet_topology::{gen, PreorderPolicy};

    fn run_one(rate: f64) -> (PaperMetrics, crate::Instance) {
        let topo = gen::random_irregular(gen::IrregularParams::paper(16, 4), 2).unwrap();
        let inst = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, 0)
            .unwrap();
        let cfg = SimConfig {
            packet_len: 8,
            injection_rate: rate,
            warmup_cycles: 300,
            measure_cycles: 2_000,
            ..SimConfig::default()
        };
        let stats = Simulator::new(&inst.cg, &inst.tables, cfg, 5).run();
        (PaperMetrics::compute(&stats, &inst.cg, &inst.tree), inst)
    }

    #[test]
    fn metrics_are_finite_and_consistent() {
        let (m, inst) = run_one(0.05);
        assert!(m.node_utilization > 0.0 && m.node_utilization < 1.0);
        assert!(m.traffic_load >= 0.0);
        assert!((0.0..=100.0).contains(&m.hot_spot_degree));
        assert!(m.leaf_utilization >= 0.0);
        assert!(m.avg_latency.is_finite());
        assert!(m.accepted_traffic > 0.0);
        // Hot-spot share must cover at least the levels' fair share of
        // *some* traffic; with a root bottleneck it is typically above the
        // node-count share. Just sanity-check the partition.
        let top_nodes = (0..inst.cg.num_nodes())
            .filter(|&v| inst.tree.y(v) <= 1)
            .count();
        assert!(top_nodes >= 1);
    }

    #[test]
    fn utilization_grows_with_load() {
        let (low, _) = run_one(0.01);
        let (high, _) = run_one(0.2);
        assert!(high.node_utilization > low.node_utilization);
        assert!(high.accepted_traffic > low.accepted_traffic);
    }
}
