//! Offered-load sweeps and saturation search — the mechanics behind
//! Figure 8 and the at-saturation measurements of Tables 1–4.

use crate::paper::PaperMetrics;
use crate::Instance;
use irnet_sim::{SimConfig, Simulator};
use serde::Serialize;

/// One measured operating point.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Offered load (flits/node/clock).
    pub offered: f64,
    /// The paper metrics at this load.
    pub metrics: PaperMetrics,
    /// Whether the deadlock watchdog aborted this operating point. A
    /// deadlocked point's metrics cover only the cycles before the stall —
    /// callers must not fold them into averages silently.
    pub deadlocked: bool,
    /// Last cycle at which any flit advanced (the stall point when
    /// `deadlocked`, otherwise just the final progress cycle).
    pub stall_cycle: u32,
}

/// A full latency/throughput curve for one routing instance.
#[derive(Debug, Clone, Serialize)]
pub struct SweepCurve {
    /// One point per offered load, in sweep order.
    pub points: Vec<SweepPoint>,
}

impl SweepCurve {
    /// The point with the highest accepted traffic — the paper's
    /// "maximal throughput" operating point used for Tables 1–4.
    pub fn saturation(&self) -> &SweepPoint {
        self.points
            .iter()
            .max_by(|a, b| {
                a.metrics
                    .accepted_traffic
                    .partial_cmp(&b.metrics.accepted_traffic)
                    .expect("accepted traffic is never NaN")
            })
            .expect("sweep has at least one point")
    }

    /// Maximum accepted traffic (throughput) over the sweep.
    pub fn max_throughput(&self) -> f64 {
        self.saturation().metrics.accepted_traffic
    }
}

/// Runs `inst` at each offered load in `rates` and collects the curve.
///
/// Each point uses a distinct derived seed so the Bernoulli processes are
/// independent but reproducible.
pub fn sweep(inst: &Instance, base: &SimConfig, rates: &[f64], seed: u64) -> SweepCurve {
    let points = rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| run_point(inst, base, rate, point_seed(seed, i)))
        .collect();
    SweepCurve { points }
}

/// The simulation seed [`sweep`] derives for the `rate_index`-th point of a
/// curve whose base seed is `seed`.
///
/// Exposed so a single load point is runnable as an independent task: the
/// grid runner shards work at `(cell, sample, load point)` granularity and
/// must reproduce `sweep`'s per-point RNG streams bit-exactly regardless of
/// which shard executes the point.
#[inline]
pub fn point_seed(seed: u64, rate_index: usize) -> u64 {
    seed.wrapping_add(rate_index as u64)
}

/// Runs one operating point.
pub fn run_point(inst: &Instance, base: &SimConfig, rate: f64, seed: u64) -> SweepPoint {
    run_point_with(
        inst,
        base,
        rate,
        seed,
        &irnet_telemetry::Telemetry::disabled(),
    )
}

/// [`run_point`] with telemetry attached: the run's wall time lands in the
/// `sim/run` span and its throughput counters in `sim/*` (see
/// [`irnet_sim::record_run_telemetry`]). Strictly observational — the
/// registry is written once, after the simulation finishes, so the point's
/// result is bit-identical with or without telemetry.
pub fn run_point_with(
    inst: &Instance,
    base: &SimConfig,
    rate: f64,
    seed: u64,
    tel: &irnet_telemetry::Telemetry,
) -> SweepPoint {
    let cfg = SimConfig {
        injection_rate: rate,
        ..*base
    };
    let t0 = std::time::Instant::now();
    let stats = Simulator::new(&inst.cg, &inst.tables, cfg, seed).run();
    irnet_sim::record_run_telemetry(tel, &stats, t0.elapsed().as_secs_f64());
    SweepPoint {
        offered: rate,
        deadlocked: stats.deadlocked,
        stall_cycle: stats.last_progress,
        metrics: PaperMetrics::compute(&stats, &inst.cg, &inst.tree),
    }
}

/// The default offered-load ladder used by the reproduction harness: a
/// geometric ramp that comfortably brackets saturation for 4- and 8-port
/// 128-switch networks.
pub fn default_rates(steps: usize) -> Vec<f64> {
    // From 1% to 60% of a flit per node per clock.
    let lo = 0.01f64;
    let hi = 0.6f64;
    let steps = steps.max(2);
    (0..steps)
        .map(|i| lo * (hi / lo).powf(i as f64 / (steps - 1) as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Algo;
    use irnet_topology::{gen, PreorderPolicy};

    fn small_instance() -> Instance {
        let topo = gen::random_irregular(gen::IrregularParams::paper(12, 4), 4).unwrap();
        Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, 0)
            .unwrap()
    }

    fn quick_base() -> SimConfig {
        SimConfig {
            packet_len: 8,
            warmup_cycles: 200,
            measure_cycles: 1_200,
            ..SimConfig::default()
        }
    }

    #[test]
    fn sweep_produces_one_point_per_rate() {
        let inst = small_instance();
        let curve = sweep(&inst, &quick_base(), &[0.01, 0.05, 0.2], 1);
        assert_eq!(curve.points.len(), 3);
        assert!((curve.points[0].offered - 0.01).abs() < 1e-12);
        // Saturation point is the max-throughput one.
        let sat = curve.saturation();
        for p in &curve.points {
            assert!(p.metrics.accepted_traffic <= sat.metrics.accepted_traffic + 1e-12);
        }
    }

    #[test]
    fn throughput_saturates_as_load_grows() {
        let inst = small_instance();
        let curve = sweep(&inst, &quick_base(), &[0.01, 0.1, 0.4, 0.9], 2);
        let acc: Vec<f64> = curve
            .points
            .iter()
            .map(|p| p.metrics.accepted_traffic)
            .collect();
        // Accepted traffic at the lowest load roughly equals offered, and
        // the curve cannot exceed the physical ejection bound of 1.
        assert!(
            (acc[0] - 0.01).abs() < 0.006,
            "accepted {} at offered 0.01",
            acc[0]
        );
        for &a in &acc {
            assert!(a <= 1.0);
        }
        assert!(curve.max_throughput() >= acc[0]);
    }

    #[test]
    fn pointwise_runs_reassemble_the_sweep_bit_exactly() {
        // The contract the sharded grid runner relies on: running each load
        // point independently with `point_seed` reproduces `sweep` exactly.
        let inst = small_instance();
        let base = quick_base();
        let rates = [0.01, 0.05, 0.2];
        let seed = 77u64;
        let curve = sweep(&inst, &base, &rates, seed);
        for (i, &rate) in rates.iter().enumerate() {
            let solo = run_point(&inst, &base, rate, point_seed(seed, i));
            let joint = &curve.points[i];
            assert_eq!(
                solo.metrics.avg_latency.to_bits(),
                joint.metrics.avg_latency.to_bits()
            );
            assert_eq!(
                solo.metrics.accepted_traffic.to_bits(),
                joint.metrics.accepted_traffic.to_bits()
            );
            assert_eq!(solo.deadlocked, joint.deadlocked);
            assert_eq!(solo.stall_cycle, joint.stall_cycle);
        }
    }

    #[test]
    fn default_rates_are_increasing_and_bracketing() {
        let r = default_rates(10);
        assert_eq!(r.len(), 10);
        assert!(r.windows(2).all(|w| w[0] < w[1]));
        assert!(r[0] <= 0.011 && r[9] >= 0.59);
    }
}
