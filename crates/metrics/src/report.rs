//! Plain-text table rendering and CSV output for the reproduction harness.

use std::fmt::Write as _;

/// A simple aligned text table with a title row.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:<w$}", c, w = width[i] + 2);
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = width.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|s| esc(s))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|s| esc(s)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 6 significant decimals, the paper's table style.
pub fn fmt6(x: f64) -> String {
    format!("{x:.6}")
}

/// Formats a percentage with two decimals, the paper's Table 3 style.
pub fn fmt_pct(x: f64) -> String {
    format!("{x:.2} %")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new(&["tree", "L-turn", "DOWN/UP"]);
        t.row(vec!["M1".into(), fmt6(0.115772), fmt6(0.123295)]);
        t.row(vec!["M3".into(), fmt6(0.095841), fmt6(0.120955)]);
        let s = t.render();
        assert!(s.contains("DOWN/UP"));
        assert!(s.contains("0.123295"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["x,y".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_wrong_arity() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt6(0.1), "0.100000");
        assert_eq!(fmt_pct(12.846), "12.85 %");
    }
}
