//! Minimal self-contained SVG line charts — used by the harness to render
//! Figure 8-style latency and throughput curves without external plotting
//! dependencies.
//!
//! The output is deliberately simple: one chart, linear axes with rounded
//! tick labels, one polyline + legend entry per series.

use std::fmt::Write as _;

/// One named series of `(x, y)` points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

/// Chart description.
#[derive(Debug, Clone)]
pub struct LineChart {
    /// Chart title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The plotted series.
    pub series: Vec<Series>,
    /// Pixel width (default 720).
    pub width: u32,
    /// Pixel height (default 480).
    pub height: u32,
}

/// A qualitative 6-color palette (colorblind-safe Okabe–Ito subset).
const COLORS: [&str; 6] = [
    "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9",
];

impl LineChart {
    /// A chart with default size.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> LineChart {
        LineChart {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            series: Vec::new(),
            width: 720,
            height: 480,
        }
    }

    /// Adds a series; non-finite points are dropped.
    pub fn add_series(&mut self, label: &str, points: impl IntoIterator<Item = (f64, f64)>) {
        let points: Vec<(f64, f64)> = points
            .into_iter()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        self.series.push(Series {
            label: label.to_string(),
            points,
        });
    }

    /// Renders the chart to an SVG document. Panics if every series is
    /// empty.
    pub fn to_svg(&self) -> String {
        let (w, h) = (self.width as f64, self.height as f64);
        let (ml, mr, mt, mb) = (70.0, 20.0, 40.0, 55.0); // margins
        let pw = w - ml - mr;
        let ph = h - mt - mb;

        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        assert!(!all.is_empty(), "cannot plot an empty chart");
        let (mut x0, mut x1) = all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(x, _)| {
            (lo.min(x), hi.max(x))
        });
        let (mut y0, mut y1) = all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &(_, y)| {
            (lo.min(y), hi.max(y))
        });
        if (x1 - x0).abs() < 1e-12 {
            x0 -= 0.5;
            x1 += 0.5;
        }
        if (y1 - y0).abs() < 1e-12 {
            y0 -= 0.5;
            y1 += 0.5;
        }
        // Pad the y range a little; anchor at zero when close.
        if y0 > 0.0 && y0 < 0.25 * y1 {
            y0 = 0.0;
        }
        let ypad = 0.05 * (y1 - y0);
        y1 += ypad;

        let sx = move |x: f64| ml + (x - x0) / (x1 - x0) * pw;
        let sy = move |y: f64| mt + ph - (y - y0) / (y1 - y0) * ph;

        let mut svg = String::new();
        let _ = writeln!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif">"#
        );
        let _ = writeln!(svg, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
        // Title and axis labels.
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="24" text-anchor="middle" font-size="16">{}</text>"#,
            w / 2.0,
            xml_escape(&self.title)
        );
        let _ = writeln!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle" font-size="13">{}</text>"#,
            ml + pw / 2.0,
            h - 12.0,
            xml_escape(&self.x_label)
        );
        let _ = writeln!(
            svg,
            r#"<text x="16" y="{}" text-anchor="middle" font-size="13" transform="rotate(-90 16 {})">{}</text>"#,
            mt + ph / 2.0,
            mt + ph / 2.0,
            xml_escape(&self.y_label)
        );
        // Axes and ticks.
        let _ = writeln!(
            svg,
            r##"<rect x="{ml}" y="{mt}" width="{pw}" height="{ph}" fill="none" stroke="#333"/>"##
        );
        for i in 0..=5 {
            let fx = x0 + (x1 - x0) * i as f64 / 5.0;
            let fy = y0 + (y1 - y0) * i as f64 / 5.0;
            let px = sx(fx);
            let py = sy(fy);
            let _ = writeln!(
                svg,
                r##"<line x1="{px}" y1="{}" x2="{px}" y2="{}" stroke="#ccc"/>"##,
                mt,
                mt + ph
            );
            let _ = writeln!(
                svg,
                r##"<line x1="{ml}" y1="{py}" x2="{}" y2="{py}" stroke="#ccc"/>"##,
                ml + pw
            );
            let _ = writeln!(
                svg,
                r#"<text x="{px}" y="{}" text-anchor="middle" font-size="11">{}</text>"#,
                mt + ph + 16.0,
                fmt_tick(fx)
            );
            let _ = writeln!(
                svg,
                r#"<text x="{}" y="{}" text-anchor="end" font-size="11">{}</text>"#,
                ml - 6.0,
                py + 4.0,
                fmt_tick(fy)
            );
        }
        // Series.
        for (i, s) in self.series.iter().enumerate() {
            if s.points.is_empty() {
                continue;
            }
            let color = COLORS[i % COLORS.len()];
            let mut d = String::new();
            for &(x, y) in &s.points {
                let _ = write!(d, "{:.2},{:.2} ", sx(x), sy(y));
            }
            let _ = writeln!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                d.trim_end()
            );
            for &(x, y) in &s.points {
                let _ = writeln!(
                    svg,
                    r#"<circle cx="{:.2}" cy="{:.2}" r="3" fill="{color}"/>"#,
                    sx(x),
                    sy(y)
                );
            }
            // Legend.
            let ly = mt + 16.0 + 18.0 * i as f64;
            let _ = writeln!(
                svg,
                r#"<line x1="{}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="3"/>"#,
                ml + 10.0,
                ml + 34.0
            );
            let _ = writeln!(
                svg,
                r#"<text x="{}" y="{}" font-size="12">{}</text>"#,
                ml + 40.0,
                ly + 4.0,
                xml_escape(&s.label)
            );
        }
        svg.push_str("</svg>\n");
        svg
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> LineChart {
        let mut c = LineChart::new("Latency vs load", "offered", "latency");
        c.add_series("L-turn", vec![(0.01, 140.0), (0.1, 600.0), (0.3, 2500.0)]);
        c.add_series("DOWN/UP", vec![(0.01, 140.0), (0.1, 300.0), (0.3, 1500.0)]);
        c
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = chart().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("DOWN/UP"));
        assert!(svg.contains("L-turn"));
        // Every circle marker is inside the canvas.
        for cap in svg.split("<circle ").skip(1) {
            let cx: f64 = cap
                .split("cx=\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!((0.0..=720.0).contains(&cx));
        }
    }

    #[test]
    fn drops_non_finite_points() {
        let mut c = LineChart::new("t", "x", "y");
        c.add_series("s", vec![(0.0, 1.0), (1.0, f64::NAN), (2.0, 3.0)]);
        assert_eq!(c.series[0].points.len(), 2);
        let svg = c.to_svg();
        assert_eq!(svg.matches("<circle").count(), 2);
    }

    #[test]
    fn escapes_labels() {
        let mut c = LineChart::new("a < b & c", "x", "y");
        c.add_series("s<1>", vec![(0.0, 0.0), (1.0, 1.0)]);
        let svg = c.to_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(svg.contains("s&lt;1&gt;"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    #[should_panic(expected = "empty chart")]
    fn empty_chart_panics() {
        LineChart::new("t", "x", "y").to_svg();
    }

    #[test]
    fn degenerate_ranges_are_widened() {
        let mut c = LineChart::new("t", "x", "y");
        c.add_series("s", vec![(1.0, 2.0), (1.0, 2.0)]);
        let svg = c.to_svg();
        assert!(svg.contains("<polyline"));
    }
}
