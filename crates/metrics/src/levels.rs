//! Per-level utilization profiles — a finer-grained view of the paper's
//! "degree of hot spots" (Table 3), which only aggregates levels 0–1.
//!
//! The profile shows the whole vertical distribution of traffic across the
//! coordinated tree: tree-based routings concentrate load near the root;
//! the DOWN/UP design goal is a flatter profile with more weight at the
//! leaves.

use irnet_sim::SimStats;
use irnet_topology::{CommGraph, CoordinatedTree};
use serde::Serialize;

/// Average node utilization per coordinated-tree level, plus each level's
/// share of the total.
#[derive(Debug, Clone, Serialize)]
pub struct LevelProfile {
    /// `avg_util[y]` — mean node utilization of switches at level `y`.
    pub avg_util: Vec<f64>,
    /// `share[y]` — fraction of total node utilization carried at level
    /// `y` (sums to 1 when any traffic moved).
    pub share: Vec<f64>,
    /// Switches per level.
    pub population: Vec<u32>,
}

impl LevelProfile {
    /// Computes the profile from one run.
    pub fn compute(stats: &SimStats, cg: &CommGraph, tree: &CoordinatedTree) -> LevelProfile {
        let levels = tree.max_level() as usize + 1;
        let utils = stats.node_utilizations(cg);
        let mut sum = vec![0.0f64; levels];
        let mut population = vec![0u32; levels];
        for v in 0..cg.num_nodes() {
            sum[tree.y(v) as usize] += utils[v as usize];
            population[tree.y(v) as usize] += 1;
        }
        let total: f64 = sum.iter().sum();
        let avg_util = sum
            .iter()
            .zip(&population)
            .map(|(s, &p)| if p > 0 { s / p as f64 } else { 0.0 })
            .collect();
        let share = sum
            .iter()
            .map(|s| if total > 0.0 { s / total } else { 0.0 })
            .collect();
        LevelProfile {
            avg_util,
            share,
            population,
        }
    }

    /// The paper's Table 3 metric recovered from the profile: the
    /// percentage of utilization at levels 0 and 1.
    pub fn hot_spot_degree(&self) -> f64 {
        100.0 * self.share.iter().take(2).sum::<f64>()
    }

    /// One-line rendering, e.g. `L0 9.1% | L1 22.4% | L2 31.0% | ...`.
    pub fn summary(&self) -> String {
        self.share
            .iter()
            .enumerate()
            .map(|(y, s)| format!("L{y} {:.1}%", 100.0 * s))
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper::PaperMetrics;
    use crate::Algo;
    use irnet_sim::{SimConfig, Simulator};
    use irnet_topology::{gen, PreorderPolicy};

    fn profile() -> (LevelProfile, PaperMetrics) {
        let topo = gen::random_irregular(gen::IrregularParams::paper(24, 4), 5).unwrap();
        let inst = Algo::DownUp { release: true }
            .construct(&topo, PreorderPolicy::M1, 0)
            .unwrap();
        let cfg = SimConfig {
            packet_len: 16,
            injection_rate: 0.15,
            warmup_cycles: 400,
            measure_cycles: 2_000,
            ..SimConfig::default()
        };
        let stats = Simulator::new(&inst.cg, &inst.tables, cfg, 8).run();
        (
            LevelProfile::compute(&stats, &inst.cg, &inst.tree),
            PaperMetrics::compute(&stats, &inst.cg, &inst.tree),
        )
    }

    #[test]
    fn shares_sum_to_one_and_population_is_complete() {
        let (p, _) = profile();
        assert!((p.share.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(p.population.iter().sum::<u32>(), 24);
        assert_eq!(p.population[0], 1, "exactly one root");
    }

    #[test]
    fn agrees_with_the_table3_metric() {
        let (p, m) = profile();
        assert!(
            (p.hot_spot_degree() - m.hot_spot_degree).abs() < 1e-9,
            "profile {:.4} vs paper metric {:.4}",
            p.hot_spot_degree(),
            m.hot_spot_degree
        );
    }

    #[test]
    fn summary_lists_every_level() {
        let (p, _) = profile();
        let s = p.summary();
        assert_eq!(s.matches('L').count(), p.share.len());
        assert!(s.contains("L0"));
    }
}
