//! Point-in-time registry snapshots and their renderings: byte-stable
//! JSON (`irnet-telemetry-v1`), Prometheus-style text exposition, a human
//! summary with the span hierarchy indented, and a two-snapshot diff.

use serde::Value;
use std::collections::BTreeMap;

/// Schema tag carried by every JSON snapshot.
pub const SCHEMA: &str = "irnet-telemetry-v1";

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanStat {
    /// How many times the span was entered.
    pub count: u64,
    /// Total wall-clock seconds across all entries.
    pub seconds: f64,
}

/// Snapshot of one log2-bucketed histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Non-empty buckets as `(upper_bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

/// A point-in-time copy of a telemetry registry.
///
/// All sections are `BTreeMap`s, so every rendering below is byte-stable
/// for identical recorded values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
    /// Span statistics by slash-separated path.
    pub spans: BTreeMap<String, SpanStat>,
}

/// Formats an `f64` so the token always reads back as a float (the same
/// convention the vendored `serde_json` writer uses).
fn fmt_f64(x: f64) -> String {
    let s = x.to_string();
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

/// Prometheus metric-name sanitization: `[a-zA-Z0-9_]`, everything else
/// becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

impl Snapshot {
    /// The value of counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The statistics of span path `path`, if present.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.get(path)
    }

    /// Total seconds recorded under span path `path`, if present.
    pub fn span_seconds(&self, path: &str) -> Option<f64> {
        self.spans.get(path).map(|s| s.seconds)
    }

    /// Renders the snapshot as pretty-printed JSON under the
    /// `irnet-telemetry-v1` schema. Byte-stable: identical recorded
    /// values produce identical bytes.
    pub fn to_json(&self) -> String {
        let counters = Value::Map(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::U64(*v)))
                .collect(),
        );
        let gauges = Value::Map(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Value::F64(*v)))
                .collect(),
        );
        let histograms = Value::Map(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = Value::Seq(
                        h.buckets
                            .iter()
                            .map(|&(le, n)| Value::Seq(vec![Value::U64(le), Value::U64(n)]))
                            .collect(),
                    );
                    (
                        k.clone(),
                        Value::Map(vec![
                            ("count".to_string(), Value::U64(h.count)),
                            ("sum".to_string(), Value::U64(h.sum)),
                            ("buckets".to_string(), buckets),
                        ]),
                    )
                })
                .collect(),
        );
        let spans = Value::Map(
            self.spans
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        Value::Map(vec![
                            ("count".to_string(), Value::U64(s.count)),
                            ("seconds".to_string(), Value::F64(s.seconds)),
                        ]),
                    )
                })
                .collect(),
        );
        let root = Value::Map(vec![
            ("schema".to_string(), Value::Str(SCHEMA.to_string())),
            ("counters".to_string(), counters),
            ("gauges".to_string(), gauges),
            ("histograms".to_string(), histograms),
            ("spans".to_string(), spans),
        ]);
        let mut out = serde_json::to_string_pretty(&root).expect("value tree always serializes");
        out.push('\n');
        out
    }

    /// Parses a snapshot previously written by [`Snapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let root: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let schema = match root.get("schema") {
            Some(Value::Str(s)) => s.as_str(),
            _ => return Err("missing schema tag".to_string()),
        };
        if schema != SCHEMA {
            return Err(format!("unsupported schema {schema:?} (expected {SCHEMA})"));
        }
        let mut snap = Snapshot::default();
        if let Some(map) = root.get("counters").and_then(Value::as_map) {
            for (k, v) in map {
                snap.counters
                    .insert(k.clone(), as_u64(v).ok_or_else(|| bad("counter", k))?);
            }
        }
        if let Some(map) = root.get("gauges").and_then(Value::as_map) {
            for (k, v) in map {
                snap.gauges
                    .insert(k.clone(), as_f64(v).ok_or_else(|| bad("gauge", k))?);
            }
        }
        if let Some(map) = root.get("histograms").and_then(Value::as_map) {
            for (k, v) in map {
                let count = v
                    .get("count")
                    .and_then(as_u64)
                    .ok_or_else(|| bad("histogram", k))?;
                let sum = v
                    .get("sum")
                    .and_then(as_u64)
                    .ok_or_else(|| bad("histogram", k))?;
                let mut buckets = Vec::new();
                for pair in v
                    .get("buckets")
                    .and_then(Value::as_seq)
                    .ok_or_else(|| bad("histogram", k))?
                {
                    let pair = pair.as_seq().ok_or_else(|| bad("histogram", k))?;
                    if pair.len() != 2 {
                        return Err(bad("histogram", k));
                    }
                    buckets.push((
                        as_u64(&pair[0]).ok_or_else(|| bad("histogram", k))?,
                        as_u64(&pair[1]).ok_or_else(|| bad("histogram", k))?,
                    ));
                }
                snap.histograms.insert(
                    k.clone(),
                    HistSnapshot {
                        count,
                        sum,
                        buckets,
                    },
                );
            }
        }
        if let Some(map) = root.get("spans").and_then(Value::as_map) {
            for (k, v) in map {
                let count = v
                    .get("count")
                    .and_then(as_u64)
                    .ok_or_else(|| bad("span", k))?;
                let seconds = v
                    .get("seconds")
                    .and_then(as_f64)
                    .ok_or_else(|| bad("span", k))?;
                snap.spans.insert(k.clone(), SpanStat { count, seconds });
            }
        }
        Ok(snap)
    }

    /// Renders the snapshot as Prometheus-style text exposition.
    /// Counters become `irnet_<name>_total`, gauges `irnet_<name>`,
    /// histograms the standard cumulative `_bucket{le=…}/_sum/_count`
    /// triple, and spans the pair `irnet_span_seconds_total{path=…}` /
    /// `irnet_span_calls_total{path=…}`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let m = sanitize(name);
            out.push_str(&format!("# TYPE irnet_{m} counter\n"));
            out.push_str(&format!("irnet_{m}_total {v}\n"));
        }
        for (name, v) in &self.gauges {
            let m = sanitize(name);
            out.push_str(&format!("# TYPE irnet_{m} gauge\n"));
            out.push_str(&format!("irnet_{m} {}\n", fmt_f64(*v)));
        }
        for (name, h) in &self.histograms {
            let m = sanitize(name);
            out.push_str(&format!("# TYPE irnet_{m} histogram\n"));
            let mut cumulative = 0u64;
            for &(le, n) in &h.buckets {
                cumulative += n;
                out.push_str(&format!("irnet_{m}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("irnet_{m}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("irnet_{m}_sum {}\n", h.sum));
            out.push_str(&format!("irnet_{m}_count {}\n", h.count));
        }
        if !self.spans.is_empty() {
            out.push_str("# TYPE irnet_span_seconds counter\n");
            for (path, s) in &self.spans {
                out.push_str(&format!(
                    "irnet_span_seconds_total{{path=\"{path}\"}} {}\n",
                    fmt_f64(s.seconds)
                ));
            }
            out.push_str("# TYPE irnet_span_calls counter\n");
            for (path, s) in &self.spans {
                out.push_str(&format!(
                    "irnet_span_calls_total{{path=\"{path}\"}} {}\n",
                    s.count
                ));
            }
        }
        out
    }

    /// Renders a human-readable summary (the `irnet stats` view): the
    /// span tree indented by path depth, then counters, gauges, and
    /// histograms.
    pub fn render(&self) -> String {
        let mut out = format!("telemetry snapshot ({SCHEMA})\n");
        if !self.spans.is_empty() {
            out.push_str("\nspans (calls, total seconds):\n");
            for (path, s) in &self.spans {
                // Indent under ancestors that are themselves recorded spans;
                // a path whose parent was never recorded (e.g. `sim/run`
                // without a `sim` span) keeps its full name at top level
                // instead of masquerading as a child of the previous root.
                let mut depth = 0;
                let mut name = path.as_str();
                let mut cut = 0;
                while let Some(pos) = path[cut..].find('/') {
                    let parent = &path[..cut + pos];
                    if self.spans.contains_key(parent) {
                        depth += 1;
                        name = &path[cut + pos + 1..];
                    }
                    cut += pos + 1;
                }
                out.push_str(&format!(
                    "  {:indent$}{name:<width$} {:>6}x  {:>12.6} s\n",
                    "",
                    s.count,
                    s.seconds,
                    indent = depth * 2,
                    width = 30usize.saturating_sub(depth * 2),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("\ncounters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<34} {v:>14}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("\ngauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<34} {:>14}\n", fmt_f64(*v)));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("\nhistograms:\n");
            for (name, h) in &self.histograms {
                let max_le = h.buckets.last().map_or(0, |&(le, _)| le);
                out.push_str(&format!(
                    "  {name:<34} count {:<8} sum {:<12} max-bucket le<={max_le}\n",
                    h.count, h.sum
                ));
            }
        }
        out
    }

    /// Renders the differences from `self` (the older snapshot) to
    /// `newer`: changed and newly appearing entries only.
    pub fn diff(&self, newer: &Snapshot) -> String {
        let mut out = String::new();
        let mut counter_lines = String::new();
        for (name, new) in &newer.counters {
            let old = self.counter(name).unwrap_or(0);
            if *new != old {
                let delta = *new as i128 - i128::from(old);
                counter_lines.push_str(&format!("  {name}: {old} -> {new} ({delta:+})\n"));
            }
        }
        if !counter_lines.is_empty() {
            out.push_str("counters:\n");
            out.push_str(&counter_lines);
        }
        let mut gauge_lines = String::new();
        for (name, new) in &newer.gauges {
            let old = self.gauges.get(name).copied();
            if old != Some(*new) {
                let old = old.map_or_else(|| "-".to_string(), fmt_f64);
                gauge_lines.push_str(&format!("  {name}: {old} -> {}\n", fmt_f64(*new)));
            }
        }
        if !gauge_lines.is_empty() {
            out.push_str("gauges:\n");
            out.push_str(&gauge_lines);
        }
        let mut hist_lines = String::new();
        for (name, new) in &newer.histograms {
            let old = self.histograms.get(name);
            if old != Some(new) {
                let (oc, os) = old.map_or((0, 0), |h| (h.count, h.sum));
                hist_lines.push_str(&format!(
                    "  {name}: count {oc} -> {}, sum {os} -> {}\n",
                    new.count, new.sum
                ));
            }
        }
        if !hist_lines.is_empty() {
            out.push_str("histograms:\n");
            out.push_str(&hist_lines);
        }
        let mut span_lines = String::new();
        for (path, new) in &newer.spans {
            let old = self.spans.get(path);
            if old != Some(new) {
                let (oc, os) = old.map_or((0, 0.0), |s| (s.count, s.seconds));
                span_lines.push_str(&format!(
                    "  {path}: {oc}x {}s -> {}x {}s\n",
                    fmt_f64(os),
                    new.count,
                    fmt_f64(new.seconds)
                ));
            }
        }
        if !span_lines.is_empty() {
            out.push_str("spans:\n");
            out.push_str(&span_lines);
        }
        if out.is_empty() {
            out.push_str("no differences\n");
        }
        out
    }
}

fn bad(section: &str, key: &str) -> String {
    format!("malformed {section} entry {key:?}")
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::U64(n) => Some(*n),
        Value::I64(n) if *n >= 0 => Some(*n as u64),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(x) => Some(*x),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn sample() -> Snapshot {
        let tel = Telemetry::enabled();
        tel.counter("grid/points_run").add(10);
        tel.counter("flow/route_cache_hits").add(3);
        tel.gauge("sim/cycles_per_sec").set(1.5e6);
        let h = tel.histogram("sim/run_cycles");
        h.record(1000);
        h.record(3000);
        tel.record_span("construction", 0.012);
        tel.record_span("construction/phase1", 0.004);
        tel.snapshot()
    }

    #[test]
    fn json_roundtrips_bit_exactly() {
        let snap = sample();
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).unwrap();
        assert_eq!(snap, back);
        assert_eq!(json, back.to_json());
    }

    #[test]
    fn from_json_rejects_garbage_and_wrong_schema() {
        assert!(Snapshot::from_json("{").is_err());
        assert!(Snapshot::from_json("{\"schema\": \"other-v9\"}").is_err());
        assert!(Snapshot::from_json("{\"no\": 1}").is_err());
    }

    #[test]
    fn prometheus_exposition_has_cumulative_buckets() {
        let text = sample().to_prometheus();
        assert!(text.contains("irnet_grid_points_run_total 10"));
        assert!(text.contains("irnet_sim_cycles_per_sec 1500000.0"));
        assert!(text.contains("irnet_sim_run_cycles_bucket{le=\"1023\"} 1\n"));
        assert!(text.contains("irnet_sim_run_cycles_bucket{le=\"4095\"} 2\n"));
        assert!(text.contains("irnet_sim_run_cycles_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("irnet_span_seconds_total{path=\"construction/phase1\"} 0.004"));
    }

    #[test]
    fn render_indents_span_children() {
        let text = sample().render();
        assert!(text.contains("telemetry snapshot (irnet-telemetry-v1)"));
        let root_line = text.lines().find(|l| l.contains("construction ")).unwrap();
        let child_line = text.lines().find(|l| l.contains("phase1")).unwrap();
        let indent = |l: &str| l.chars().take_while(|c| *c == ' ').count();
        assert!(indent(child_line) > indent(root_line));
    }

    #[test]
    fn diff_reports_changed_entries_only() {
        let old = sample();
        let mut new = old.clone();
        new.counters.insert("grid/points_run".to_string(), 16);
        let text = old.diff(&new);
        assert!(text.contains("grid/points_run: 10 -> 16 (+6)"));
        assert!(!text.contains("route_cache_hits"));
        assert_eq!(old.diff(&old), "no differences\n");
    }
}
